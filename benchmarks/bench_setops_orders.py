"""A6: multiple alternative input property vectors for intersection.

"Although the same consideration applies to location and partitioning in
parallel and distributed relational query processing, no earlier query
optimizer has provided this feature."  (paper, Section 6)
"""

import pytest

from repro.algebra.properties import sorted_on
from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics
from repro.models.relational import get
from repro.models.setops import SetOpsModelOptions, intersect, setops_model
from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once


def make_catalog(rows):
    catalog = Catalog()
    for name in ("r", "s"):
        catalog.add_table(
            name,
            Schema.of(f"{name}.k", f"{name}.v"),
            TableStatistics(
                rows,
                100,
                columns={
                    f"{name}.k": ColumnStatistics(rows, 0, rows - 1),
                    f"{name}.v": ColumnStatistics(rows, 0, rows - 1),
                },
            ),
        )
    return catalog


def merge_only_spec(permutations):
    spec = setops_model(SetOpsModelOptions(max_order_permutations=permutations))
    spec.implementations = [
        rule for rule in spec.implementations if rule.name != "intersect_to_hash"
    ]
    return spec


@pytest.mark.parametrize("permutations", [1, 3], ids=["canonical", "alternatives"])
def test_intersection_order_alternatives(benchmark, permutations):
    catalog = make_catalog(4800)
    spec = merge_only_spec(permutations)
    query = intersect(get("r"), get("s"))
    required = sorted_on("r.v")

    def optimize():
        return VolcanoOptimizer(
            spec, catalog, SearchOptions(check_consistency=False)
        ).optimize(query, required=required)

    result = run_once(benchmark, optimize)
    benchmark.extra_info["cost"] = result.cost.total()
    assert result.plan.properties.covers(required)


def test_alternatives_strictly_cheaper(benchmark):
    catalog = make_catalog(4800)
    query = intersect(get("r"), get("s"))
    required = sorted_on("r.v")

    def both():
        canonical = VolcanoOptimizer(
            merge_only_spec(1), catalog, SearchOptions(check_consistency=False)
        ).optimize(query, required=required)
        alternatives = VolcanoOptimizer(
            merge_only_spec(3), catalog, SearchOptions(check_consistency=False)
        ).optimize(query, required=required)
        return canonical.cost.total(), alternatives.cost.total()

    canonical, alternatives = run_once(benchmark, both)
    assert alternatives < canonical
