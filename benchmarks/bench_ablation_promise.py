"""A7: promise-guided move selection.

"Pursuing all moves or only a selected few is a major heuristic placed
into the hands of the optimizer implementor."  A promise threshold that
skips the associativity rule turns exhaustive search into a
commutations-only heuristic: faster, possibly worse plans.
"""

import pytest

from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once


@pytest.mark.parametrize(
    "min_promise", [None, 0.9], ids=["exhaustive", "heuristic"]
)
def test_promise_threshold_time(benchmark, spec, generator, min_promise):
    query = generator.generate(6, seed=51)
    options = SearchOptions(min_promise=min_promise, check_consistency=False)

    def optimize():
        return VolcanoOptimizer(spec, query.catalog, options).optimize(query.query)

    result = run_once(benchmark, optimize)
    benchmark.extra_info["cost"] = result.cost.total()
    benchmark.extra_info["groups"] = result.stats.groups_created


def test_heuristic_never_beats_exhaustive(benchmark, spec, generator):
    query = generator.generate(5, seed=52)

    def both():
        full = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query)
        fast = VolcanoOptimizer(
            spec,
            query.catalog,
            SearchOptions(min_promise=0.9, check_consistency=False),
        ).optimize(query.query)
        return full, fast

    full, fast = run_once(benchmark, both)
    assert fast.cost.total() >= full.cost.total() * 0.999
    assert fast.stats.groups_created <= full.stats.groups_created
