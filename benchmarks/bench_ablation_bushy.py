"""A4: bushy vs. left-deep search space (Section 5's Starburst discussion).

"it is possible to restrict the search space to left-deep trees (no
composite inner), to include all bushy trees" — we measure what each
space costs to search and what plan quality it buys.
"""

import pytest

from repro.systemr import SystemROptimizer, SystemROptions

from conftest import run_once


@pytest.mark.parametrize("bushy", [True, False], ids=["bushy", "left_deep"])
def test_enumeration_time(benchmark, spec, generator, bushy):
    query = generator.generate(6, seed=47)
    options = SystemROptions(bushy=bushy)

    def optimize():
        return SystemROptimizer(spec, query.catalog, options).optimize(query.query)

    result = run_once(benchmark, optimize)
    benchmark.extra_info["joins_costed"] = result.stats.joins_costed


def test_left_deep_cost_never_below_bushy(benchmark, spec, generator):
    query = generator.generate(5, seed=48)

    def both():
        bushy = SystemROptimizer(
            spec, query.catalog, SystemROptions(bushy=True)
        ).optimize(query.query)
        left_deep = SystemROptimizer(
            spec, query.catalog, SystemROptions(bushy=False)
        ).optimize(query.query)
        return bushy.cost.total(), left_deep.cost.total()

    bushy, left_deep = run_once(benchmark, both)
    assert left_deep >= bushy * 0.999
