"""A2: failure memoization — 'interesting facts' include failures."""

import pytest

from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once


@pytest.mark.parametrize("cache_failures", [True, False], ids=["cached", "uncached"])
def test_failure_caching_time(benchmark, spec, ordered_generator, cache_failures):
    query = ordered_generator.generate(6, seed=43)
    options = SearchOptions(cache_failures=cache_failures, check_consistency=False)

    def optimize():
        return VolcanoOptimizer(spec, query.catalog, options).optimize(
            query.query, required=query.required
        )

    result = run_once(benchmark, optimize)
    benchmark.extra_info["failure_hits"] = result.stats.failure_hits


def test_failure_caching_is_lossless_and_hits(benchmark, spec, ordered_generator):
    query = ordered_generator.generate(5, seed=44)

    def both():
        cached = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query, required=query.required)
        uncached = VolcanoOptimizer(
            spec,
            query.catalog,
            SearchOptions(cache_failures=False, check_consistency=False),
        ).optimize(query.query, required=query.required)
        return cached, uncached

    cached, uncached = run_once(benchmark, both)
    assert cached.cost == uncached.cost
    assert uncached.stats.failure_hits == 0
