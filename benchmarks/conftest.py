"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one exhibit from DESIGN.md's experiment
index.  Benchmarks run single-shot per round (optimizations are not
micro-operations), with enough rounds for a stable median.

Full-scale reproduction (the paper's 50 queries per size, sizes 2–8) is
the CLI harness: ``python -m repro.bench figure4``.
"""

import cProfile
import io
import pstats

import pytest

from repro.models.relational import relational_model
from repro.workloads import QueryGenerator, WorkloadOptions


def pytest_addoption(parser):
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="print cProfile top-20 cumulative hotspots for each "
        "benchmark point (figure-4 time benchmarks)",
    )


@pytest.fixture
def profiled(request):
    """Wrap a benchmark callable with cProfile when --profile is on.

    Returns a decorator: ``function = profiled(function, label)``.  The
    profile covers every round the benchmark runs and prints the top 20
    cumulative-time entries once per point, so speedups (e.g. kernel
    tiers) are attributable to specific frames.  Without --profile the
    callable is returned unwrapped — zero overhead on normal runs.
    """
    if not request.config.getoption("--profile"):
        return lambda function, label=None: function

    def wrap(function, label=None):
        profile = cProfile.Profile()
        tag = label or request.node.name

        def wrapped(*args, **kwargs):
            return profile.runcall(function, *args, **kwargs)

        def report():
            stream = io.StringIO()
            stats = pstats.Stats(profile, stream=stream)
            stats.sort_stats("cumulative").print_stats(20)
            print(f"\n=== cProfile [{tag}] (top 20 cumulative) ===")
            print(stream.getvalue())

        request.addfinalizer(report)
        return wrapped

    return wrap


@pytest.fixture(scope="session")
def spec():
    return relational_model()


@pytest.fixture(scope="session")
def generator():
    return QueryGenerator(WorkloadOptions())


@pytest.fixture(scope="session")
def ordered_generator():
    return QueryGenerator(
        WorkloadOptions(
            order_by_probability=1.0,
            selectivity_range=(0.5, 1.0),
            key_fraction_range=(0.2, 0.6),
        )
    )


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a non-trivial operation: one iteration, few rounds."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=3, iterations=1)
