"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one exhibit from DESIGN.md's experiment
index.  Benchmarks run single-shot per round (optimizations are not
micro-operations), with enough rounds for a stable median.

Full-scale reproduction (the paper's 50 queries per size, sizes 2–8) is
the CLI harness: ``python -m repro.bench figure4``.
"""

import pytest

from repro.models.relational import relational_model
from repro.workloads import QueryGenerator, WorkloadOptions


@pytest.fixture(scope="session")
def spec():
    return relational_model()


@pytest.fixture(scope="session")
def generator():
    return QueryGenerator(WorkloadOptions())


@pytest.fixture(scope="session")
def ordered_generator():
    return QueryGenerator(
        WorkloadOptions(
            order_by_probability=1.0,
            selectivity_range=(0.5, 1.0),
            key_fraction_range=(0.2, 0.6),
        )
    )


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a non-trivial operation: one iteration, few rounds."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=3, iterations=1)
