"""A3: goal-directed physical properties vs. Starburst-style glue.

"Rather than optimizing an expression first and then adding 'glue'
operators and their cost to a plan (the Starburst approach), the Volcano
optimizer generator's search algorithm immediately considers which
physical properties are to be enforced…"  (paper, Section 6)
"""

import pytest

from repro.bench.ablations import glue_optimize
from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once


@pytest.mark.parametrize("size", [4, 6])
def test_directed_vs_glue_cost(benchmark, spec, ordered_generator, size):
    query = ordered_generator.generate(size, seed=45)

    def both():
        directed = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query, required=query.required)
        _, glued_cost = glue_optimize(
            spec, query.catalog, query.query, query.required
        )
        return directed.cost.total(), glued_cost.total()

    directed, glued = run_once(benchmark, both)
    benchmark.extra_info["glue_penalty"] = glued / directed
    # Glue can never beat directed search (it is one of directed
    # search's candidate plans).
    assert glued >= directed * 0.999
