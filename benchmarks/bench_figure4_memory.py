"""F4-footprint: the memory discussion around Figure 4.

"The Volcano-generated optimizer performed exhaustive search for all
queries with less than 1 MB of work space" while MESH's duplicated
logical+physical nodes made EXODUS run out of memory.  We compare the
machine-independent footprints (memo groups+expressions vs. MESH
logical+physical nodes) and demonstrate the abort behaviour.
"""

import pytest

from repro.exodus import ExodusOptimizer, ExodusOptions
from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once


@pytest.mark.parametrize("size", [3, 5])
def test_memo_vs_mesh_footprint(benchmark, spec, generator, size):
    query = generator.generate(size, seed=77)

    def measure():
        volcano = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query)
        exodus = ExodusOptimizer(
            spec, query.catalog, ExodusOptions(node_budget=5000)
        ).optimize(query.query)
        return volcano.stats.memo_footprint(), exodus.stats.mesh_size()

    memo, mesh = run_once(benchmark, measure)
    benchmark.extra_info["memo"] = memo
    benchmark.extra_info["mesh"] = mesh
    assert mesh > memo


def test_exodus_aborts_on_memory_budget(benchmark, spec, generator):
    """'the EXODUS optimizer generator aborted due to lack of memory'."""
    query = generator.generate(7, seed=77)
    options = ExodusOptions(node_budget=400, best_effort=True)

    def optimize():
        return ExodusOptimizer(spec, query.catalog, options).optimize(query.query)

    result = run_once(benchmark, optimize)
    assert result.aborted
    assert result.abort_reason == "memory"


def test_volcano_completes_where_exodus_aborts(benchmark, spec, generator):
    query = generator.generate(8, seed=78)

    def optimize():
        return VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query)

    result = run_once(benchmark, optimize)
    assert result.cost.total() > 0
