"""A1: branch-and-bound pruning — lossless, saves cost-function calls."""

import pytest

from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once


@pytest.mark.parametrize("branch_and_bound", [True, False], ids=["pruned", "unpruned"])
def test_pruning_time(benchmark, spec, ordered_generator, branch_and_bound):
    query = ordered_generator.generate(6, seed=41)
    options = SearchOptions(
        branch_and_bound=branch_and_bound, check_consistency=False
    )

    def optimize():
        return VolcanoOptimizer(spec, query.catalog, options).optimize(
            query.query, required=query.required
        )

    result = run_once(benchmark, optimize)
    benchmark.extra_info["costings"] = (
        result.stats.algorithm_costings + result.stats.enforcer_costings
    )
    benchmark.extra_info["pruned_moves"] = result.stats.moves_pruned


def test_pruning_is_lossless(benchmark, spec, ordered_generator):
    query = ordered_generator.generate(5, seed=42)

    def both():
        with_bb = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query, required=query.required)
        without_bb = VolcanoOptimizer(
            spec,
            query.catalog,
            SearchOptions(branch_and_bound=False, check_consistency=False),
        ).optimize(query.query, required=query.required)
        return with_bb, without_bb

    with_bb, without_bb = run_once(benchmark, both)
    assert with_bb.cost == without_bb.cost
    saved = (
        without_bb.stats.algorithm_costings - with_bb.stats.algorithm_costings
    ) + (with_bb.stats.moves_pruned + with_bb.stats.inputs_abandoned)
    assert saved > 0
