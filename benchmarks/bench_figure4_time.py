"""F4-time: Figure 4's solid lines — optimization time per query.

Measures Volcano and EXODUS optimization of the same random select–join
queries at increasing complexity.  The paper's claims, asserted here:

* both engines' effort grows steeply with query size;
* EXODUS falls behind by roughly an order of magnitude for complex
  queries ("for more complex queries, the EXODUS' and Volcano's
  optimization times differ by about an order of magnitude").

The Volcano line is measured twice: interpreted (the baseline) and with
the generated specialized search kernel (``SearchOptions(kernel=...)``,
see ``repro.generator.kernel``) — same plans, fewer interpreted frames.

Pass ``--profile`` to print cProfile's top-20 cumulative hotspots per
point, so a speedup (or regression) is attributable to specific frames.
"""

import pytest

from repro.exodus import ExodusOptimizer, ExodusOptions
from repro.search import SearchOptions, VolcanoOptimizer

from conftest import run_once

SIZES = [2, 4, 6, 8]
EXODUS_SIZES = [2, 4, 5]  # beyond this the prototype "ran much longer"


@pytest.mark.parametrize("size", SIZES)
def test_volcano_optimization_time(benchmark, spec, generator, profiled, size):
    query = generator.generate(size, seed=101)
    options = SearchOptions(check_consistency=False)

    def optimize():
        return VolcanoOptimizer(spec, query.catalog, options).optimize(query.query)

    result = run_once(benchmark, profiled(optimize, f"volcano-{size}"))
    assert result.cost.total() > 0
    benchmark.extra_info["memo_footprint"] = result.stats.memo_footprint()


@pytest.mark.parametrize("size", SIZES)
def test_volcano_kernelized_optimization_time(
    benchmark, spec, generator, profiled, size
):
    """The same line with the generated specialized search kernel."""
    query = generator.generate(size, seed=101)
    options = SearchOptions(check_consistency=False, kernel="specialized")

    def optimize():
        return VolcanoOptimizer(spec, query.catalog, options).optimize(query.query)

    result = run_once(benchmark, profiled(optimize, f"volcano-kernel-{size}"))
    assert result.cost.total() > 0
    benchmark.extra_info["memo_footprint"] = result.stats.memo_footprint()


@pytest.mark.parametrize("size", EXODUS_SIZES)
def test_exodus_optimization_time(benchmark, spec, generator, profiled, size):
    query = generator.generate(size, seed=101)
    options = ExodusOptions(node_budget=1500, transformation_budget=1500)

    def optimize():
        return ExodusOptimizer(spec, query.catalog, options).optimize(query.query)

    result = run_once(benchmark, profiled(optimize, f"exodus-{size}"))
    assert result.cost.total() > 0
    benchmark.extra_info["mesh_size"] = result.stats.mesh_size()
    benchmark.extra_info["aborted"] = result.aborted


def test_exodus_order_of_magnitude_slower(benchmark, spec, generator):
    """The headline gap, measured directly on one 5-relation query."""
    import time

    query = generator.generate(5, seed=202)

    def both():
        started = time.perf_counter()
        VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query)
        volcano = time.perf_counter() - started
        started = time.perf_counter()
        ExodusOptimizer(spec, query.catalog, ExodusOptions()).optimize(query.query)
        exodus = time.perf_counter() - started
        return volcano, exodus

    volcano, exodus = run_once(benchmark, both)
    assert exodus > 3 * volcano
