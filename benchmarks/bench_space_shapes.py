"""A8: join-graph shape vs. search complexity (the paper's reference [13]).

"The increase of Volcano's optimization costs is about exponential […]
which mirrors exactly the increase in the number of equivalent logical
algebra expressions [13]" — Ono & Lohman's point that the join graph's
shape determines that number.  Stars have exponentially more connected
sub-plans than chains of the same size.
"""

import pytest

from repro.search import SearchOptions, VolcanoOptimizer
from repro.search.extract import count_logical_expressions
from repro.workloads import QueryGenerator, WorkloadOptions

from conftest import run_once


def optimize_shaped(spec, shape, size, seed=71):
    generator = QueryGenerator(WorkloadOptions(shape=shape))
    query = generator.generate(size, seed=seed)
    optimizer = VolcanoOptimizer(
        spec, query.catalog, SearchOptions(check_consistency=False)
    )
    return optimizer.optimize(query.query)


@pytest.mark.parametrize("shape", ["chain", "star"])
@pytest.mark.parametrize("size", [5, 7])
def test_shape_optimization_time(benchmark, spec, shape, size):
    result = run_once(benchmark, optimize_shaped, spec, shape, size)
    root = max(
        result.memo.groups(), key=lambda group: len(group.logical_props.tables)
    ).id
    benchmark.extra_info["logical_expressions"] = count_logical_expressions(
        result.memo, root
    )


def test_star_space_exceeds_chain_space(benchmark, spec):
    def both():
        chain = optimize_shaped(spec, "chain", 6)
        star = optimize_shaped(spec, "star", 6)
        counts = []
        for result in (chain, star):
            root = max(
                result.memo.groups(),
                key=lambda group: len(group.logical_props.tables),
            ).id
            counts.append(count_logical_expressions(result.memo, root))
        return counts

    chain_count, star_count = run_once(benchmark, both)
    assert star_count > chain_count
