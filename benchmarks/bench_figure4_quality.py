"""F4-quality: Figure 4's dashed lines — estimated plan execution cost.

Runs the full Figure 4 harness at reduced scale and asserts the paper's
quality claims:

* "The plan quality […] is equal for moderately complex queries (up to
  4 input relations)."
* "For more complex queries, however, the cost is significantly higher
  for EXODUS-optimized plans, because the EXODUS-generated optimizer and
  its search engine do not systematically explore and exploit physical
  properties and interesting orderings."  (Sharpest when queries request
  sort order, the paper's own example of a physical property.)
"""

import pytest

from repro.bench.figure4 import Figure4Config, run_figure4
from repro.workloads import WorkloadOptions

from conftest import run_once


def test_quality_equal_up_to_four_relations(benchmark):
    config = Figure4Config(sizes=(2, 3, 4), queries_per_size=4, seed=31)
    result = run_once(benchmark, run_figure4, config)
    for row in result.rows:
        assert row.quality_ratio is not None
        assert row.quality_ratio == pytest.approx(1.0, abs=0.12)


def test_quality_gap_beyond_four_relations_with_order_goals(benchmark):
    config = Figure4Config(
        sizes=(5, 6),
        queries_per_size=4,
        seed=31,
        workload=WorkloadOptions(
            order_by_probability=1.0,
            selectivity_range=(0.5, 1.0),
            key_fraction_range=(0.2, 0.6),
        ),
    )
    result = run_once(benchmark, run_figure4, config)
    gaps = [row.quality_ratio for row in result.rows if row.quality_ratio]
    assert gaps, "every EXODUS run aborted; loosen the budgets"
    assert max(gaps) > 1.10
