"""A5: Volcano's top-down directed DP vs. System R's bottom-up DP.

Same cost model, same (bushy) search space: the optimal costs must agree
(DESIGN.md invariant 6); the interesting measurement is the work each
strategy performs.
"""

import pytest

from repro.search import SearchOptions, VolcanoOptimizer
from repro.systemr import SystemROptimizer, SystemROptions

from conftest import run_once

SIZES = [4, 6]


@pytest.mark.parametrize("size", SIZES)
def test_volcano_time(benchmark, spec, generator, size):
    query = generator.generate(size, seed=49)
    options = SearchOptions(check_consistency=False)

    def optimize():
        return VolcanoOptimizer(spec, query.catalog, options).optimize(query.query)

    run_once(benchmark, optimize)


@pytest.mark.parametrize("size", SIZES)
def test_systemr_time(benchmark, spec, generator, size):
    query = generator.generate(size, seed=49)
    options = SystemROptions(bushy=True)

    def optimize():
        return SystemROptimizer(spec, query.catalog, options).optimize(query.query)

    run_once(benchmark, optimize)


def test_costs_agree(benchmark, spec, generator):
    query = generator.generate(5, seed=50)

    def both():
        volcano = VolcanoOptimizer(
            spec, query.catalog, SearchOptions(check_consistency=False)
        ).optimize(query.query)
        systemr = SystemROptimizer(
            spec, query.catalog, SystemROptions(bushy=True)
        ).optimize(query.query)
        return volcano.cost.total(), systemr.cost.total()

    volcano, systemr = run_once(benchmark, both)
    assert volcano == pytest.approx(systemr)
