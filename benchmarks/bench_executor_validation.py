"""V1: cost-model validation — optimized plans run on the iterator engine.

Not a figure in the paper, but the substrate check DESIGN.md calls for:
scan I/O counts are exact; cardinality estimates are within estimation
error of actual row counts; different optimizers' plans return the same
rows.
"""

import pytest

from repro.bench.ablations import _rows_for
from repro.executor import ExecutionStats, execute_plan
from repro.search import SearchOptions, VolcanoOptimizer
from repro.workloads import QueryGenerator, WorkloadOptions

from conftest import run_once


@pytest.fixture(scope="module")
def small_query():
    generator = QueryGenerator(
        WorkloadOptions(min_rows=600, max_rows=1500, selectivity_range=(0.3, 0.8))
    )
    query = generator.generate(3, seed=61)
    for name in query.table_names:
        entry = query.catalog.table(name)
        entry.rows = _rows_for(name, entry.statistics, 61)
    return query


def test_optimize_and_execute(benchmark, spec, small_query):
    plan = (
        VolcanoOptimizer(
            spec, small_query.catalog, SearchOptions(check_consistency=False)
        )
        .optimize(small_query.query)
        .plan
    )

    def execute():
        stats = ExecutionStats()
        rows = execute_plan(plan, small_query.catalog, stats)
        return rows, stats

    rows, stats = run_once(benchmark, execute)
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["pages_read"] = stats.pages_read
    assert stats.pages_read > 0


def test_estimates_track_actuals(benchmark, spec, small_query):
    from repro.model.context import OptimizerContext

    def measure():
        result = VolcanoOptimizer(
            spec, small_query.catalog, SearchOptions(check_consistency=False)
        ).optimize(small_query.query)
        rows = execute_plan(result.plan, small_query.catalog)
        context = OptimizerContext(spec, small_query.catalog)
        estimate = context.logical_props(small_query.query).cardinality
        return estimate, len(rows)

    estimate, actual = run_once(benchmark, measure)
    assert actual > 0
    assert 0.2 <= estimate / actual <= 5.0
