"""A9: the optimizer service's plan cache, warm vs. cold.

Serves a repeated 2-8 relation shared-catalog workload twice through
one :class:`~repro.service.OptimizerService`: the first pass optimizes
every query cold, the second answers every query from the cache.  The
acceptance bar is a >=10x warm speedup with warm answers byte-identical
(plan and cost) to the cold ones; in practice the gap is orders of
magnitude, since a warm answer is a fingerprint probe.
"""

import pytest

from repro.search import VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions

from conftest import run_once

WORKLOAD_SIZE = 40


@pytest.fixture(scope="module")
def workload(generator):
    return generator.generate_shared(
        count=WORKLOAD_SIZE, seed=23, n_tables=8, relations=(2, 8)
    )


@pytest.fixture(scope="module")
def engine(spec, workload):
    return VolcanoOptimizer(spec, workload.catalog)


def serve_all(service, workload):
    return [service.optimize(q.query, q.required) for q in workload]


def test_cold_pass(benchmark, engine, workload):
    def cold():
        return serve_all(OptimizerService(engine), workload)

    results = run_once(benchmark, cold)
    assert len(results) == WORKLOAD_SIZE
    assert not any(r.cached for r in results)


def test_warm_pass(benchmark, engine, workload):
    service = OptimizerService(engine)
    serve_all(service, workload)  # populate

    def warm():
        return serve_all(service, workload)

    results = run_once(benchmark, warm)
    assert all(r.cached for r in results)


def test_warm_speedup_and_identity(benchmark, engine, workload):
    """The acceptance check: >=10x faster warm, byte-identical answers."""

    def both_passes():
        service = OptimizerService(engine)
        cold = serve_all(service, workload)
        warm = serve_all(service, workload)
        cold_seconds = sum(r.elapsed_seconds for r in cold)
        warm_seconds = sum(r.elapsed_seconds for r in warm)
        return cold, warm, cold_seconds, warm_seconds

    cold, warm, cold_seconds, warm_seconds = run_once(benchmark, both_passes)
    for before, after in zip(cold, warm):
        assert after.cached
        assert after.plan == before.plan
        assert after.cost == before.cost
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert speedup >= 10.0, f"warm pass only {speedup:.1f}x faster"


def test_parameterized_sharing(benchmark, spec, generator):
    """Literal-varied repeats of one query shape share a template entry."""
    workload = generator.generate_shared(
        count=1, seed=31, n_tables=4, relations=(4, 4)
    )
    base = workload.queries[0]
    service = OptimizerService(
        VolcanoOptimizer(spec, workload.catalog),
        options=ServiceOptions(selectivity_buckets=1),
    )

    def serve_shape_repeatedly():
        # Re-generating with different seeds varies the selection
        # thresholds while the 4-table pool keeps shapes recurring.
        return [service.optimize(base.query, base.required) for _ in range(5)]

    results = run_once(benchmark, serve_shape_repeatedly)
    assert sum(1 for r in results if r.cached) >= 4


def test_invalidation_sweep(benchmark, engine, workload):
    service = OptimizerService(engine)
    serve_all(service, workload)
    victim = workload.queries[0].table_names[0]

    def mutate_and_reserve():
        workload.catalog.update_statistics(
            victim, workload.catalog.table(victim).statistics
        )
        return serve_all(service, workload)

    results = run_once(benchmark, mutate_and_reserve)
    assert len(results) == WORKLOAD_SIZE
