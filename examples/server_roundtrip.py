#!/usr/bin/env python3
"""The optimizer as a long-lived service: one full client round trip.

The Volcano optimizer generator produces *code you link into a system*;
``repro.server`` is the operational face of that idea — the generated
optimizer running as a process, speaking HTTP/JSON, with the plan cache,
provenance verification, pinning, and the regression guard in front of
it.  This example drives every endpoint once, in-process (the server on
a background thread, the client over a real socket):

1. health check, cold optimize, warm (cached) optimize;
2. prepare a parameterized statement and bind it twice;
3. pin the chain-join plan, bump statistics, show the pin holding;
4. unpin, re-optimize, read the counters back from ``/stats``.

Run:  python examples/server_roundtrip.py
"""

from repro.feedback import drifted_workload
from repro.generator.generate import generate_optimizer
from repro.models.relational import relational_model
from repro.options import ServerOptions
from repro.server import OptimizerServer, ServerClient, ServerThread
from repro.service import OptimizerService, ServiceOptions

CHAIN = "SELECT * FROM r, s, t WHERE r.k = s.k AND s.k = t.k"
POINT = "SELECT * FROM r WHERE r.k = 7"


def main() -> None:
    scenario = drifted_workload()
    service = OptimizerService(
        generate_optimizer(relational_model(), scenario.catalog),
        options=ServiceOptions(verify_plans=True),
    )
    server = OptimizerServer(
        service, options=ServerOptions(max_concurrent=4, verify_pins=True)
    )

    with ServerThread(server) as harness:
        print(f"server listening on {harness.address}")
        with ServerClient(harness.address) as client:
            health = client.health()
            assert health["ok"]
            print(f"health: engines={health['engines']}")

            # -- cold, then warm -------------------------------------
            cold = client.optimize(CHAIN)
            assert not cold["cached"] and cold["verified"]
            print(f"cold optimize: cost={cold['cost_total']:.0f} "
                  f"verified={cold['verified']}")
            warm = client.optimize(CHAIN)
            assert warm["cached"] and warm["sexpr"] == cold["sexpr"]
            print(f"warm optimize: cached={warm['cached']}")

            # -- prepared statement ----------------------------------
            prepared = client.prepare(POINT)
            print(f"prepared {prepared['statement']} "
                  f"parameters={prepared['parameters']}")
            first = client.bind(prepared["statement"], {"p0": 9})
            second = client.bind(prepared["statement"], {"p0": 11})
            assert second["cached"] and second["parameterized"]
            print("bind p0=9 → engine run; "
                  "bind p0=11 → parameterized template hit")

            # -- pin across a statistics bump ------------------------
            pin = client.pin(CHAIN, reason="demo SLO")
            assert pin["verified"]
            before = client.health()["statistics_version"]
            client.update_statistics(
                "t", {"columns": {"t.v": {"distinct_values": 123.0}}}
            )
            after = client.health()["statistics_version"]
            served = client.optimize(CHAIN)
            assert served["pinned"] and served["sexpr"] == cold["sexpr"]
            print(f"statistics v{before}→v{after}: pinned plan held")

            client.unpin(sql=CHAIN)
            fresh = client.optimize(CHAIN)
            assert not fresh["pinned"]
            print("unpinned: fresh optimization served")

            # -- the counters tell the story -------------------------
            stats = client.stats()
            cache = stats["cache"]
            assert cache["verify_violations"] == 0
            print(f"stats: hits={cache['hits']} misses={cache['misses']} "
                  f"pinned_hits={stats['registry']['counters']['pinned_hits']} "
                  f"verify_violations={cache['verify_violations']}")

    print("server stopped cleanly")


if __name__ == "__main__":
    main()
