#!/usr/bin/env python3
"""Quickstart: generate an optimizer, optimize a query, run the plan.

The full Figure 1 pipeline on a three-table join:

    model specification ──generator──► optimizer ──FindBestPlan──► plan

Run:  python examples/quickstart.py
"""

from repro import (
    Catalog,
    eq,
    execute_plan,
    generate_optimizer,
    get,
    join,
    relational_model,
    select,
    sorted_on,
)
from repro.executor import TableSpec, populate_catalog


def main() -> None:
    # 1. A catalog with synthetic data in the paper's range
    #    (1,200–7,200 records of 100 bytes).
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("customer", rows=1200, key_distinct=100),
            TableSpec("orders", rows=7200, key_distinct=100),
            TableSpec("lineitem", rows=4800, key_distinct=100),
        ],
        seed=42,
    )

    # 2. The generator paradigm: model specification → optimizer.
    spec = relational_model()
    optimizer = generate_optimizer(spec, catalog)

    # 3. A logical query: who ordered what, for one customer segment.
    query = join(
        join(
            select(get("customer"), eq("customer.v", 3)),
            get("orders"),
            eq("customer.k", "orders.k"),
        ),
        get("lineitem"),
        eq("orders.k", "lineitem.k"),
    )
    print("Logical query:")
    print(query.pretty())
    print()

    # 4. Optimize — unordered, then with the ORDER BY physical property.
    result = optimizer.optimize(query)
    print(f"Best plan (cost {result.cost}):")
    print(result.plan.pretty())
    print()
    print(f"Search effort: {result.stats}")
    print()

    ordered = optimizer.optimize(query, required=sorted_on("customer.k"))
    print(f"Best plan sorted on customer.k (cost {ordered.cost}):")
    print(ordered.plan.pretty())
    print()

    # 5. Execute both plans on the Volcano iterator engine: same rows.
    rows = execute_plan(result.plan, catalog)
    ordered_rows = execute_plan(ordered.plan, catalog)
    assert len(rows) == len(ordered_rows)
    keys = [row["customer.k"] for row in ordered_rows]
    assert keys == sorted(keys)
    print(f"Executed: {len(rows)} result rows; ordered plan delivers sorted keys.")


if __name__ == "__main__":
    main()
