#!/usr/bin/env python3
"""Set operations with multiple alternative sort orders (paper Section 3).

"For the intersection of two inputs R and S with attributes A, B, and C
where R is sorted on (A,B,C) and S is sorted on (B,A,C), both these sort
orders can be specified by the optimizer implementor and will be
optimized by the generated optimizer."

Run:  python examples/setops_orders.py
"""

from repro import (
    Catalog,
    ColumnStatistics,
    Schema,
    TableStatistics,
    generate_optimizer,
    get,
    sorted_on,
)
from repro.models.setops import SetOpsModelOptions, intersect, setops_model


def build_catalog() -> Catalog:
    catalog = Catalog()
    for name in ("r", "s"):
        catalog.add_table(
            name,
            Schema.of(f"{name}.k", f"{name}.v"),
            TableStatistics(
                4800,
                100,
                columns={
                    f"{name}.k": ColumnStatistics(4800, 0, 4799),
                    f"{name}.v": ColumnStatistics(4800, 0, 4799),
                },
            ),
        )
    return catalog


def merge_only(spec):
    """Drop the hash fallback so the merge implementation must carry."""
    spec.implementations = [
        rule for rule in spec.implementations if rule.name != "intersect_to_hash"
    ]
    return spec


def main() -> None:
    catalog = build_catalog()
    query = intersect(get("r"), get("s"))
    # The result must arrive sorted on the SECOND column.
    required = sorted_on("r.v")

    print("=== Canonical order only (no alternatives) ===")
    spec = merge_only(setops_model(SetOpsModelOptions(max_order_permutations=1)))
    result = generate_optimizer(spec, catalog).optimize(query, required=required)
    print(f"cost {result.cost}")
    print(result.plan.pretty())
    print()

    print("=== Alternative orders enabled ===")
    spec = merge_only(setops_model(SetOpsModelOptions(max_order_permutations=3)))
    result = generate_optimizer(spec, catalog).optimize(query, required=required)
    print(f"cost {result.cost}")
    print(result.plan.pretty())
    print()
    print(
        "With alternatives, the inputs are sorted (v, k) directly and the\n"
        "result needs no extra sort — the feature 'no earlier query\n"
        "optimizer has provided' (Section 6)."
    )


if __name__ == "__main__":
    main()
