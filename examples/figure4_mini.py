#!/usr/bin/env python3
"""A miniature Figure 4: Volcano vs. EXODUS at reduced scale.

The full experiment (50 queries per size, 2–8 relations) is
``python -m repro.bench figure4``; this example runs a small slice so
the characteristic shape appears in seconds:

* both curves grow steeply (exponential search spaces);
* EXODUS's forward chaining falls behind by an order of magnitude;
* beyond ~5 relations the EXODUS prototype aborts on its budgets.

Run:  python examples/figure4_mini.py
"""

from repro.bench.figure4 import Figure4Config, render_figure4, run_figure4


def main() -> None:
    config = Figure4Config(sizes=(2, 3, 4, 5, 6), queries_per_size=5, seed=1993)
    result = run_figure4(config, progress=lambda line: print("  " + line))
    print()
    print(render_figure4(result))


if __name__ == "__main__":
    main()
