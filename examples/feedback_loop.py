#!/usr/bin/env python3
"""Closing the loop: observe execution, detect drift, refresh, re-optimize.

The paper's optimizer trusts the catalog: "the cost of each plan is
estimated" from whatever statistics the catalog holds.  When the data
moves underneath those statistics, the optimizer keeps producing plans
for a world that no longer exists.  This walkthrough wires the full
corrective loop:

1. optimize + execute a three-way join with accurate statistics;
2. grow one base table 4x behind the catalog's back;
3. run the now-stale cached plan -- instrumented iterators report
   observed cardinalities, and the per-operator q-error blows past the
   drift policy, so statistics refresh through the versioned catalog
   API (invalidating exactly the affected cache entries);
4. run again: the query re-optimizes against true cardinalities and the
   measured execution work drops.

Run:  python examples/feedback_loop.py
"""

from repro.explain import explain_plan
from repro.feedback import FeedbackPolicy, drifted_workload
from repro.models.relational import relational_model
from repro.search import SearchOptions, VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions


def main() -> None:
    scenario = drifted_workload(seed=7, growth=4)
    optimizer = VolcanoOptimizer(
        relational_model(),
        scenario.catalog,
        SearchOptions(check_consistency=False),
    )
    service = OptimizerService(
        optimizer,
        options=ServiceOptions(feedback_policy=FeedbackPolicy(max_q_error=2.0)),
    )

    print("== 1. accurate statistics ==")
    warm = service.execute(scenario.query)
    print(explain_plan(warm.plan, warm.report))
    print(f"plan q-error {warm.max_q_error:.2f}, refresh fired: {warm.refreshed}")
    assert warm.max_q_error < 2.0 and not warm.refreshed

    print(f"\n== 2. table '{scenario.drifting_table}' grows 4x ==")
    added = scenario.grow()
    print(f"appended {added} rows behind the catalog's back")

    print("\n== 3. stale plan detects drift and refreshes ==")
    stale = service.execute(scenario.query)
    print(explain_plan(stale.plan, stale.report))
    print(f"served from cache: {stale.served.cached}")
    print(f"plan q-error {stale.max_q_error:.2f} -> {stale.refresh}")
    assert stale.served.cached and stale.refreshed

    print("\n== 4. re-optimized against true cardinalities ==")
    fresh = service.execute(scenario.query)
    print(explain_plan(fresh.plan, fresh.report))
    print(f"served from cache: {fresh.served.cached}")
    print(
        f"measured work: stale {stale.stats.work()} "
        f"-> fresh {fresh.stats.work()}"
    )
    assert not fresh.served.cached
    assert fresh.max_q_error < 2.0
    assert fresh.stats.work() < stale.stats.work()
    assert len(fresh.rows) == len(stale.rows)

    print("\n== accumulated telemetry ==")
    print(service.feedback.render())


if __name__ == "__main__":
    main()
