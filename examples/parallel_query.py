#!/usr/bin/env python3
"""Parallel optimization: partitioning as a physical property.

"Location and partitioning in parallel and distributed systems can be
enforced with a network and parallelism operator such as Volcano's
exchange operator."  (paper, Section 4.1)

The optimizer weighs exchanges (every row crosses the interconnect)
against dividing the join work across nodes — a purely cost-based
decision over a model-defined property.

Run:  python examples/parallel_query.py
"""

from repro import Catalog, eq, generate_optimizer, get, join
from repro.executor import TableSpec, populate_catalog
from repro.models.parallel import (
    ParallelModelOptions,
    parallel_relational_model,
    partitioned_on,
)


def main() -> None:
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("fact", rows=7200, key_distinct=3600),
            TableSpec("dim", rows=7200, key_distinct=3600),
        ],
        seed=3,
    )
    query = join(get("fact"), get("dim"), eq("fact.k", "dim.k"))

    print("=== Cheap interconnect, 8 nodes: go parallel ===")
    fast_network = ParallelModelOptions(degree=8, cpu_transfer=0.1, startup=10.0)
    optimizer = generate_optimizer(parallel_relational_model(fast_network), catalog)
    result = optimizer.optimize(query)
    print(result.plan.pretty())
    print()

    print("=== Expensive interconnect: stay serial ===")
    slow_network = ParallelModelOptions(degree=8, cpu_transfer=50.0, startup=1e6)
    optimizer = generate_optimizer(parallel_relational_model(slow_network), catalog)
    result = optimizer.optimize(query)
    print(result.plan.pretty())
    print()

    print("=== The user demands partitioned output (e.g. for a parallel sink) ===")
    optimizer = generate_optimizer(parallel_relational_model(fast_network), catalog)
    required = partitioned_on(["fact.k"], 8)
    result = optimizer.optimize(query, required=required)
    print(f"goal: {required}")
    print(result.plan.pretty())
    assert result.plan.properties.covers(required)


if __name__ == "__main__":
    main()
