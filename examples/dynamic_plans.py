#!/usr/bin/env python3
"""Dynamic plans for incompletely specified queries (paper Section 1).

The optimizer generator "had to support flexible cost models that permit
generating dynamic plans for incompletely specified queries."  Here a
query filters on ``r.v <= ?p`` where ``?p`` arrives only at run time:
the optimizer produces one plan per selectivity regime and a choose-plan
switch picks at bind time.

With the result required sorted, the strategies genuinely differ:

* selective ``?p``  → tiny intermediate results: hash joins, one final sort;
* permissive ``?p`` → large intermediates: a merge-join chain whose
  interesting ordering makes the final sort free.

Run:  python examples/dynamic_plans.py
"""

from repro import Catalog, eq, get, join, relational_model, select, sorted_on
from repro.algebra.predicates import Comparison, ComparisonOp, col
from repro.dynamic import Parameter, optimize_dynamic
from repro.executor import TableSpec, populate_catalog


def main() -> None:
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 4800, key_distinct=1200, value_distinct=1000),
            TableSpec("s", 4800, key_distinct=1200, value_distinct=1000),
            TableSpec("t", 4800, key_distinct=1200, value_distinct=1000),
        ],
        seed=23,
    )
    # ... WHERE r.v <= ?p AND r.k = s.k AND s.k = t.k ORDER BY r.k
    query = join(
        join(
            select(
                get("r"),
                Comparison(ComparisonOp.LE, col("r.v"), Parameter("p")),
            ),
            get("s"),
            eq("r.k", "s.k"),
        ),
        get("t"),
        eq("s.k", "t.k"),
    )

    dynamic = optimize_dynamic(
        relational_model(), catalog, query, required=sorted_on("r.k")
    )
    print(dynamic.describe())
    print()

    for value in (3, 500, 995):
        plan, selectivity = dynamic.pick(catalog, {"p": value})
        rows = dynamic.execute(catalog, {"p": value})
        keys = [row["r.k"] for row in rows]
        assert keys == sorted(keys)
        strategy = (
            "merge-join chain" if plan.count_algorithm("merge_join") else
            "hash joins + final sort"
        )
        print(
            f"?p = {value:>3}  → est. selectivity {selectivity:6.3f}, "
            f"strategy: {strategy:<24} → {len(rows)} sorted rows"
        )


if __name__ == "__main__":
    main()
