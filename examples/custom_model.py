#!/usr/bin/env python3
"""Writing a model specification from scratch: a compressed-storage model.

The paper names "sort order and compression status" as the physical
properties an extensible optimizer must support (Section 1).  This
example builds a complete, brand-new model specification — operators,
algorithms, a *decompress* enforcer, rules, cost and property functions
— and feeds it through the generator, including Python source emission
(the full Figure 1 pipeline).

The model: tables are stored compressed.  ``analyze`` (say, a numeric
aggregation pass) can run directly on compressed data slowly, or fast on
decompressed data; the optimizer decides per table whether decompression
pays off.

Run:  python examples/custom_model.py
"""

import tempfile
from pathlib import Path

from repro import (
    AlgorithmDef,
    AnyPattern,
    Catalog,
    CpuIoCost,
    EnforcerApplication,
    EnforcerDef,
    ImplementationRule,
    LogicalOperatorDef,
    LogicalProperties,
    ModelSpecification,
    OpPattern,
    PhysProps,
    Schema,
    TableStatistics,
    compile_and_load,
    generate_optimizer,
    generate_source,
)

DECOMPRESSED = PhysProps(flags=frozenset({("decompressed", True)}))


def compressed_model() -> ModelSpecification:
    """The optimizer implementor's ten items, for a two-operator model."""
    spec = ModelSpecification(name="compressed", zero_cost=CpuIoCost)

    # Logical operators + property functions.
    def table_props(context, args, input_props):
        entry = context.catalog.table(args[0])
        return LogicalProperties(
            schema=entry.schema,
            cardinality=float(entry.statistics.row_count),
            column_stats=dict(entry.statistics.columns),
            tables=frozenset((args[0],)),
        )

    def analyze_props(context, args, input_props):
        source = input_props[0]
        return LogicalProperties(
            schema=source.schema,
            cardinality=1.0,  # one summary row
            tables=source.tables,
        )

    spec.add_operator(LogicalOperatorDef("table", 0, table_props))
    spec.add_operator(LogicalOperatorDef("analyze", 1, analyze_props))

    # Algorithms.  Compressed scans read fewer pages (3× compression).
    def scan_applicability(context, node, required):
        return [()] if PhysProps().covers(required) else []

    def scan_cost(context, node):
        entry = context.catalog.table(node.args[0])
        pages = entry.statistics.pages(context.catalog.page_size)
        return CpuIoCost(cpu=entry.statistics.row_count * 0.2, io=pages / 3)

    spec.add_algorithm(
        AlgorithmDef(
            "compressed_scan",
            scan_applicability,
            scan_cost,
            lambda context, node, input_props: PhysProps(),
        )
    )

    def slow_applicability(context, node, required):
        if not PhysProps().covers(required.without_flag("decompressed")):
            return []
        return [(PhysProps(),)]  # works straight on compressed data

    def fast_applicability(context, node, required):
        if not PhysProps().covers(required.without_flag("decompressed")):
            return []
        return [(DECOMPRESSED,)]  # demands decompressed input

    spec.add_algorithm(
        AlgorithmDef(
            "analyze_compressed",
            slow_applicability,
            lambda context, node: CpuIoCost(cpu=node.inputs[0].cardinality * 9.0),
            lambda context, node, input_props: PhysProps(),
        )
    )
    spec.add_algorithm(
        AlgorithmDef(
            "analyze_plain",
            fast_applicability,
            lambda context, node: CpuIoCost(cpu=node.inputs[0].cardinality * 1.0),
            lambda context, node, input_props: input_props[0],
        )
    )

    # The decompress enforcer: provides the "decompressed" property.
    def enforce(context, required, output_props):
        if required.flag("decompressed") is not True:
            return []
        return [
            EnforcerApplication(
                args=(),
                delivered=required,
                relaxed=required.without_flag("decompressed"),
                excluded=DECOMPRESSED,
            )
        ]

    spec.add_enforcer(
        EnforcerDef(
            "decompress",
            enforce,
            lambda context, node: CpuIoCost(
                cpu=node.inputs[0].cardinality * 2.5
            ),
        )
    )

    # Implementation rules (no transformations: the algebra is tiny).
    spec.add_implementation(
        ImplementationRule(
            "table_scan",
            OpPattern("table", (), args_as="t"),
            "compressed_scan",
            build_args=lambda binding, context: binding["t"],
        )
    )
    analyze_pattern = OpPattern("analyze", (AnyPattern("x"),))
    spec.add_implementation(
        ImplementationRule("analyze_slow", analyze_pattern, "analyze_compressed")
    )
    spec.add_implementation(
        ImplementationRule("analyze_fast", analyze_pattern, "analyze_plain")
    )
    spec.validate()
    return spec


def main() -> None:
    catalog = Catalog()
    catalog.add_table("metrics", Schema.of("m.t", "m.value"), TableStatistics(50_000, 16))
    catalog.add_table("tiny", Schema.of("t.x"), TableStatistics(40, 16))

    spec = compressed_model()
    optimizer = generate_optimizer(spec, catalog)

    from repro import LogicalExpression

    for table in ("metrics", "tiny"):
        query = LogicalExpression("analyze", (), (LogicalExpression("table", (table,)),))
        result = optimizer.optimize(query)
        print(f"=== analyze({table}) — cost {result.cost} ===")
        print(result.plan.pretty())
        print()
    print(
        "Large table: decompressing once (2.5/row) unlocks the 9×-faster\n"
        "analysis.  Tiny table: not worth it — analyze compressed directly.\n"
    )

    # The Figure 1 pipeline: emit optimizer source code and load it.
    # The provider is this very file, importable as ``custom_model``
    # because ``python examples/custom_model.py`` puts the examples
    # directory on sys.path.
    provider = "custom_model:compressed_model"
    source = generate_source(spec, provider)
    print("=== First lines of the generated optimizer source ===")
    print("\n".join(source.splitlines()[:18]))
    with tempfile.TemporaryDirectory() as directory:
        module = compile_and_load(
            spec,
            provider,
            Path(directory) / "generated_compressed.py",
        )
        generated = module.build_optimizer(catalog)
        query = LogicalExpression(
            "analyze", (), (LogicalExpression("table", ("metrics",)),)
        )
        assert (
            generated.optimize(query).cost == optimizer.optimize(query).cost
        )
        print("\nGenerated module optimizes identically to the direct build.")


if __name__ == "__main__":
    main()
