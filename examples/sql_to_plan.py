#!/usr/bin/env python3
"""SQL front to back: parse, translate, optimize, execute.

The paper assumes "the translation from a user interface into a logical
algebra expression must be performed by the parser"; this example is
that parser plus everything downstream of it.

Run:  python examples/sql_to_plan.py
"""

from repro import Catalog, execute_plan, generate_optimizer, relational_model
from repro.executor import TableSpec, populate_catalog
from repro.sql import translate

QUERIES = [
    "select * from emp where emp.v <= 5",
    """
    select * from emp, dept
    where emp.k = dept.k and emp.v <= 3
    """,
    """
    select emp.k, dept.v from emp join dept on emp.k = dept.k
    where dept.v <= 10
    order by emp.k
    """,
    """
    -- a self-join through aliases
    select * from emp as a, emp as b where a.emp.k = b.emp.k
    """,
]


def main() -> None:
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("emp", rows=2400, key_distinct=200),
            TableSpec("dept", rows=1200, key_distinct=200),
        ],
        seed=7,
    )
    optimizer = generate_optimizer(relational_model(), catalog)

    for text in QUERIES:
        print("SQL:", " ".join(text.split()))
        translation = translate(text, catalog)
        result = optimizer.optimize(
            translation.expression, required=translation.required
        )
        print(f"plan (cost {result.cost}):")
        print(result.plan.pretty(indent=1))
        rows = execute_plan(result.plan, catalog)
        print(f"→ {len(rows)} rows")
        print()


if __name__ == "__main__":
    main()
