#!/usr/bin/env python3
"""OODB path expressions: the assembledness property and assembly operator.

"For query optimization in object-oriented systems, we plan on defining
'assembledness' of complex objects in memory as a physical property and
using the assembly operator […] as the enforcer for this property."
(paper, Section 4.1; also the Open OODB 'materialize' operator of
Section 6.)

The cost-based trade: navigate object references one random read at a
time, or batch-assemble the referenced extent first.

Run:  python examples/oodb_paths.py
"""

from repro import Catalog, ColumnStatistics, Schema, TableStatistics, eq
from repro import generate_optimizer, get, select
from repro.models.oodb import materialize, oodb_model


def build_catalog(employees: int, departments: int) -> Catalog:
    catalog = Catalog()
    catalog.add_table(
        "employee",
        Schema.of("employee.id", "employee.dept_ref", "employee.salary"),
        TableStatistics(
            employees,
            100,
            columns={
                "employee.id": ColumnStatistics(employees),
                "employee.dept_ref": ColumnStatistics(departments),
                "employee.salary": ColumnStatistics(100, 0, 99),
            },
        ),
    )
    catalog.add_table(
        "department",
        Schema.of("department.id", "department.floor"),
        TableStatistics(
            departments,
            100,
            columns={
                "department.id": ColumnStatistics(departments),
                "department.floor": ColumnStatistics(10, 0, 9),
            },
        ),
    )
    return catalog


def main() -> None:
    spec = oodb_model()

    # employee.department.floor over ALL employees: thousands of
    # navigations into a tiny extent → assemble it once.
    catalog = build_catalog(employees=5000, departments=50)
    optimizer = generate_optimizer(spec, catalog)
    path = materialize(get("employee"), "dept_ref", "department")
    result = optimizer.optimize(path)
    print("=== Whole-extent path expression ===")
    print(result.plan.pretty())
    print()

    # The same path over a few selected employees against a huge extent:
    # chase the pointers instead.
    catalog = build_catalog(employees=5000, departments=5000)
    optimizer = generate_optimizer(spec, catalog)
    few = materialize(
        select(get("employee"), eq("employee.id", 7)), "dept_ref", "department"
    )
    result = optimizer.optimize(few)
    print("=== Selective path expression ===")
    print(result.plan.pretty())
    print()

    # The model's rewrite rule pushes object filters below the
    # navigation so fewer references are followed.
    catalog = build_catalog(employees=5000, departments=50)
    optimizer = generate_optimizer(spec, catalog)
    filtered = select(
        materialize(get("employee"), "dept_ref", "department"),
        eq("employee.salary", 10),
    )
    result = optimizer.optimize(filtered)
    print("=== Filter pushed below the path (select_past_materialize rule) ===")
    print(result.plan.pretty())


if __name__ == "__main__":
    main()
