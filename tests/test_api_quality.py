"""Library-wide API quality gates.

Deliverable (e) requires doc comments on every public item; these tests
enforce it mechanically, along with a few hygiene rules, so the property
cannot silently rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    module.name
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not module.name.endswith("__main__")
)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: public items without docstrings: {undocumented}"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for class_name, cls in public_members(module):
        if not inspect.isclass(cls):
            continue
        for method_name, method in vars(cls).items():
            if method_name.startswith("_"):
                continue
            if not inspect.isfunction(method):
                continue
            if not (method.__doc__ and method.__doc__.strip()):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: public methods without docstrings: {undocumented}"
    )


def test_package_exports_resolve():
    """Everything in repro.__all__ is actually importable from repro."""
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"
