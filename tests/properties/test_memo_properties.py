"""Property-based tests of memo invariants under random operations."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.predicates import eq
from repro.model.context import OptimizerContext
from repro.models.relational import get, join, relational_model, select
from repro.search.memo import Memo

from tests.helpers import make_catalog

TABLES = [("r", 1200), ("s", 2400), ("t", 4800)]


def fresh_memo():
    context = OptimizerContext(relational_model(), make_catalog(TABLES))
    memo = Memo(context)
    context.group_props_resolver = memo.logical_props
    return memo


@st.composite
def expression_trees(draw):
    """Random join trees over r, s, t (each used at most once)."""
    names = draw(st.permutations(["r", "s", "t"]))
    count = draw(st.integers(1, 3))
    names = names[:count]
    leaves = []
    for name in names:
        leaf = get(name)
        if draw(st.booleans()):
            leaf = select(leaf, eq(f"{name}.v", draw(st.integers(0, 3))))
        leaves.append((name, leaf))
    tree_name, tree = leaves[0]
    previous = tree_name
    for name, leaf in leaves[1:]:
        if draw(st.booleans()):
            tree = join(tree, leaf, eq(f"{previous}.k", f"{name}.k"))
        else:
            tree = join(leaf, tree, eq(f"{previous}.k", f"{name}.k"))
        previous = name
    return tree


def check_invariants(memo):
    """Structural invariants that must hold after any operation mix."""
    # Every live group's expressions are in the table, pointing back.
    for group in memo.groups():
        assert len(group.expressions) == len(group.expression_set)
        for mexpr in group.expressions:
            owner = memo._table.get(mexpr)
            assert owner is not None
            assert memo.canonical(owner) == group.id
            # Input groups resolve to live groups.
            for gid in mexpr.input_groups:
                memo.group(gid)  # must not raise
    # The table has no entries owned by dead groups' identities.
    for mexpr, owner in memo._table.items():
        live = memo.group(owner)
        assert mexpr in live.expression_set
    # Expression count is consistent.
    assert memo.expression_count() == sum(
        len(group.expressions) for group in memo.groups()
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(expression_trees(), min_size=1, max_size=4))
def test_insertions_keep_invariants(trees):
    memo = fresh_memo()
    for tree in trees:
        memo.insert_expression(tree)
    check_invariants(memo)


@settings(max_examples=40, deadline=None)
@given(st.lists(expression_trees(), min_size=1, max_size=3))
def test_insert_is_idempotent_under_any_order(trees):
    memo = fresh_memo()
    first_ids = [memo.insert_expression(tree) for tree in trees]
    count = memo.group_count()
    second_ids = [memo.insert_expression(tree) for tree in trees]
    assert memo.group_count() == count
    assert [memo.canonical(g) for g in first_ids] == [
        memo.canonical(g) for g in second_ids
    ]
    check_invariants(memo)


@settings(max_examples=30, deadline=None)
@given(expression_trees())
def test_exploration_preserves_invariants(tree):
    """Run the real engine (rules, merges and all); memo must stay sound."""
    from repro.search import VolcanoOptimizer

    catalog = make_catalog(TABLES)
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    result = optimizer.optimize(tree)
    check_invariants(result.memo)
    # All groups reachable from the root belong to the query's tables.
    root = max(
        result.memo.groups(), key=lambda group: len(group.logical_props.tables)
    )
    for gid in result.memo.reachable(root.id):
        group = result.memo.group(gid)
        assert group.logical_props.tables <= root.logical_props.tables
