"""Property-based tests for the predicate language (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.predicates import (
    Comparison,
    ComparisonOp,
    Conjunction,
    Disjunction,
    Negation,
    col,
    conjunction_of,
    lit,
    split_conjuncts,
)
from repro.catalog.selectivity import SelectivityEstimator
from repro.catalog.statistics import ColumnStatistics

COLUMNS = ("a", "b", "c", "d")

comparisons = st.builds(
    Comparison,
    st.sampled_from(list(ComparisonOp)),
    st.sampled_from([col(name) for name in COLUMNS]),
    st.one_of(
        st.sampled_from([col(name) for name in COLUMNS]),
        st.integers(-5, 5).map(lit),
    ),
)

predicates = st.recursive(
    comparisons,
    lambda inner: st.one_of(
        st.lists(inner, min_size=2, max_size=3).map(
            lambda parts: Conjunction(tuple(parts))
        ),
        st.lists(inner, min_size=2, max_size=3).map(
            lambda parts: Disjunction(tuple(parts))
        ),
        inner.map(Negation),
    ),
    max_leaves=6,
)

rows = st.fixed_dictionaries({name: st.integers(-5, 5) for name in COLUMNS})


@given(st.lists(predicates, max_size=4), rows)
def test_conjunction_of_evaluates_like_all(parts, row):
    combined = conjunction_of(parts)
    assert combined.evaluate(row) == all(part.evaluate(row) for part in parts)


@given(st.lists(predicates, max_size=4))
def test_conjunction_of_is_order_insensitive(parts):
    assert conjunction_of(parts) == conjunction_of(list(reversed(parts)))


@given(st.lists(predicates, max_size=4))
def test_conjunction_of_is_idempotent(parts):
    once = conjunction_of(parts)
    twice = conjunction_of([once])
    assert once == twice


@given(predicates, st.sets(st.sampled_from(COLUMNS)))
def test_split_conjuncts_partitions(predicate, available):
    available = frozenset(available)
    inside, outside = split_conjuncts(predicate, available)
    assert inside.columns() <= available
    recombined = conjunction_of([inside, outside])
    assert set(recombined.conjuncts()) == set(predicate.conjuncts())


@given(predicates, rows)
def test_split_conjuncts_preserves_semantics(predicate, row):
    inside, outside = split_conjuncts(predicate, frozenset(COLUMNS[:2]))
    original = all(part.evaluate(row) for part in predicate.conjuncts())
    assert (inside.evaluate(row) and outside.evaluate(row)) == original


@given(predicates, rows)
def test_negation_involution(predicate, row):
    assert Negation(Negation(predicate)).evaluate(row) == predicate.evaluate(row)


@given(predicates)
def test_selectivity_in_unit_interval(predicate):
    estimator = SelectivityEstimator()
    stats = {name: ColumnStatistics(10, -5, 5) for name in COLUMNS}
    assert 0.0 <= estimator.estimate(predicate, stats) <= 1.0


@given(predicates)
def test_predicates_hash_consistently(predicate):
    assert hash(predicate) == hash(predicate)
    assert predicate == predicate
