"""Property-based tests of the search engine's core invariants.

Hypothesis drives random catalogs and join graphs through the engine and
checks DESIGN.md invariants 4, 5, and 7 against the brute-force oracle.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.models.relational import relational_model
from repro.search import SearchOptions, VolcanoOptimizer

from tests.helpers import BruteForceOracle, make_catalog
from tests.search.test_optimality import build_case

table_sizes = st.lists(
    st.integers(100, 7200), min_size=2, max_size=4
)


@st.composite
def join_cases(draw):
    sizes = draw(table_sizes)
    names = [f"t{i}" for i in range(len(sizes))]
    tables = list(zip(names, sizes))
    # A random spanning tree over the relations.
    edges = []
    for index in range(1, len(names)):
        partner = draw(st.integers(0, index - 1))
        edges.append((names[partner], names[index]))
    key_distinct = draw(st.integers(2, 1000))
    with_selections = draw(st.booleans())
    return tables, edges, key_distinct, with_selections


@settings(max_examples=25, deadline=None)
@given(join_cases(), st.booleans())
def test_engine_is_optimal(case, want_sorted):
    tables, edges, key_distinct, with_selections = case
    catalog, query, oracle = build_case(
        tables, edges, with_selections=with_selections, key_distinct=key_distinct
    )
    required = sorted_on(f"{tables[0][0]}.k") if want_sorted else ANY_PROPS
    engine = VolcanoOptimizer(relational_model(), catalog)
    result = engine.optimize(query, required=required)
    oracle_cost = oracle.best_cost(required)
    assert abs(result.cost.total() - oracle_cost.total()) <= 1e-6 * max(
        1.0, oracle_cost.total()
    )


@settings(max_examples=15, deadline=None)
@given(join_cases())
def test_pruning_and_caching_are_lossless(case):
    tables, edges, key_distinct, with_selections = case
    catalog, query, _ = build_case(
        tables, edges, with_selections=with_selections, key_distinct=key_distinct
    )
    spec = relational_model()
    full = VolcanoOptimizer(spec, catalog).optimize(query)
    stripped = VolcanoOptimizer(
        spec,
        catalog,
        SearchOptions(branch_and_bound=False, cache_failures=False),
    ).optimize(query)
    assert full.cost == stripped.cost


@settings(max_examples=15, deadline=None)
@given(join_cases())
def test_determinism(case):
    tables, edges, key_distinct, with_selections = case
    catalog, query, _ = build_case(
        tables, edges, with_selections=with_selections, key_distinct=key_distinct
    )
    spec = relational_model()
    first = VolcanoOptimizer(spec, catalog).optimize(query)
    second = VolcanoOptimizer(spec, catalog).optimize(query)
    assert first.cost == second.cost
    assert first.plan.to_sexpr() == second.plan.to_sexpr()


@settings(max_examples=15, deadline=None)
@given(join_cases())
def test_plan_satisfies_goal_properties(case):
    tables, edges, key_distinct, with_selections = case
    catalog, query, _ = build_case(
        tables, edges, with_selections=with_selections, key_distinct=key_distinct
    )
    required = sorted_on(f"{tables[-1][0]}.k")
    result = VolcanoOptimizer(relational_model(), catalog).optimize(
        query, required=required
    )
    assert result.plan.properties.covers(required)


@settings(max_examples=15, deadline=None)
@given(join_cases(), st.booleans())
def test_task_engine_matches_recursive_engine(case, want_sorted):
    """The Cascades-style driver agrees with FindBestPlan on any input."""
    from repro.search.tasks import TaskBasedOptimizer

    tables, edges, key_distinct, with_selections = case
    catalog, query, _ = build_case(
        tables, edges, with_selections=with_selections, key_distinct=key_distinct
    )
    required = sorted_on(f"{tables[0][0]}.k") if want_sorted else ANY_PROPS
    spec = relational_model()
    recursive = VolcanoOptimizer(spec, catalog).optimize(query, required=required)
    task_based = TaskBasedOptimizer(spec, catalog).optimize(query, required=required)
    # Optimal costs always agree; the *plan* may differ only when two
    # plans tie exactly (the agenda visits sibling moves in a different
    # order, so ties break differently).  The agenda also *sums* input
    # costs in a different association order, so compare with a relative
    # tolerance rather than exact float equality.
    assert abs(task_based.cost.total() - recursive.cost.total()) <= 1e-9 * max(
        1.0, recursive.cost.total()
    )
    assert task_based.plan.properties.covers(required)
