"""Property-based tests of the iterator engine (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.catalog import Catalog, Schema, TableStatistics
from repro.executor.iterators import (
    FileScan,
    HashJoin,
    MergeExcept,
    MergeIntersect,
    MergeJoin,
    Sort,
)
from repro.executor.runtime import ExecutionContext


def make_context(left_keys, right_keys):
    catalog = Catalog()
    left_rows = [{"l.k": key, "l.tag": index} for index, key in enumerate(left_keys)]
    right_rows = [
        {"r.k": key, "r.tag": index} for index, key in enumerate(right_keys)
    ]
    catalog.add_table(
        "l", Schema.of("l.k", "l.tag"), TableStatistics(len(left_rows), 100),
        rows=left_rows,
    )
    catalog.add_table(
        "r", Schema.of("r.k", "r.tag"), TableStatistics(len(right_rows), 100),
        rows=right_rows,
    )
    return ExecutionContext(catalog)


keys = st.lists(st.integers(0, 8), max_size=12)


def canonical(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


@settings(max_examples=50, deadline=None)
@given(keys, keys)
def test_merge_join_equals_hash_join(left_keys, right_keys):
    context = make_context(left_keys, right_keys)
    merged = MergeJoin(
        context,
        Sort(context, FileScan(context, "l"), ["l.k"]),
        Sort(context, FileScan(context, "r"), ["r.k"]),
        [("l.k", "r.k")],
    ).drain()
    hashed = HashJoin(
        context, FileScan(context, "l"), FileScan(context, "r"), [("l.k", "r.k")]
    ).drain()
    assert canonical(merged) == canonical(hashed)


@settings(max_examples=50, deadline=None)
@given(keys, keys)
def test_join_matches_nested_loop_semantics(left_keys, right_keys):
    context = make_context(left_keys, right_keys)
    expected = sorted(
        (l, r)
        for l, left_key in enumerate(left_keys)
        for r, right_key in enumerate(right_keys)
        if left_key == right_key
    )
    joined = HashJoin(
        context, FileScan(context, "l"), FileScan(context, "r"), [("l.k", "r.k")]
    ).drain()
    assert sorted((row["l.tag"], row["r.tag"]) for row in joined) == expected


@settings(max_examples=50, deadline=None)
@given(keys)
def test_sort_is_stable_permutation(values):
    context = make_context(values, [])
    rows = Sort(context, FileScan(context, "l"), ["l.k"]).drain()
    assert sorted(values) == [row["l.k"] for row in rows]
    # Stability: equal keys keep their original relative order.
    for first, second in zip(rows, rows[1:]):
        if first["l.k"] == second["l.k"]:
            assert first["l.tag"] < second["l.tag"]


@settings(max_examples=50, deadline=None)
@given(keys, keys)
def test_merge_intersect_matches_set_semantics(left_keys, right_keys):
    context = make_context(sorted(left_keys), sorted(right_keys))
    result = MergeIntersect(
        context, FileScan(context, "l"), FileScan(context, "r"), [("l.k", "r.k")]
    ).drain()
    assert [row["l.k"] for row in result] == sorted(
        set(left_keys) & set(right_keys)
    )


@settings(max_examples=50, deadline=None)
@given(keys, keys)
def test_merge_except_matches_set_semantics(left_keys, right_keys):
    context = make_context(sorted(left_keys), sorted(right_keys))
    result = MergeExcept(
        context, FileScan(context, "l"), FileScan(context, "r"), [("l.k", "r.k")]
    ).drain()
    assert [row["l.k"] for row in result] == sorted(
        set(left_keys) - set(right_keys)
    )
