"""Property-based tests for the physical property vector (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given

from repro.algebra.properties import ANY_PROPS, Partitioning, PhysProps

COLUMNS = ("a", "b", "c")

sort_keys = st.frozensets(st.sampled_from(COLUMNS), min_size=1, max_size=2)
sort_orders = st.lists(sort_keys, max_size=3).map(tuple)
partitionings = st.one_of(
    st.none(),
    st.builds(
        Partitioning,
        st.sampled_from(["hash", "range"]),
        st.lists(sort_keys, max_size=2).map(tuple),
        st.integers(1, 8),
    ),
)
flags = st.frozensets(
    st.tuples(st.sampled_from(["assembled", "unique"]), st.booleans()),
    max_size=2,
)
props = st.builds(PhysProps, sort_orders, partitionings, flags)


@given(props)
def test_covers_is_reflexive(vector):
    assert vector.covers(vector)


@given(props)
def test_everything_covers_any(vector):
    assert vector.covers(ANY_PROPS)


@given(props, props, props)
def test_covers_is_transitive(a, b, c):
    if a.covers(b) and b.covers(c):
        assert a.covers(c)


@given(props)
def test_any_covers_only_any(vector):
    if ANY_PROPS.covers(vector):
        assert vector.is_any


@given(props)
def test_without_sort_removes_requirement(vector):
    stripped = vector.without_sort()
    assert stripped.sort_order == ()
    assert vector.covers(stripped) or vector.partitioning != stripped.partitioning


@given(props)
def test_strengthening_preserves_cover(vector):
    """Adding a sort key in front can only strengthen the vector."""
    stronger = PhysProps(
        (frozenset(COLUMNS),) + vector.sort_order,
        vector.partitioning,
        vector.flags,
    )
    # The stronger vector covers everything the original's suffix…
    assert stronger.covers(
        PhysProps((frozenset(COLUMNS),), vector.partitioning, vector.flags)
    )


@given(props, props)
def test_cover_antisymmetry_on_sort(a, b):
    if a.covers(b) and b.covers(a):
        assert len(a.sort_order) == len(b.sort_order)


@given(props)
def test_flag_roundtrip(vector):
    with_flag = vector.with_flag("extra", 7)
    assert with_flag.flag("extra") == 7
    assert with_flag.without_flag("extra").flags == vector.without_flag("extra").flags


@given(props)
def test_props_hashable_and_stable(vector):
    assert hash(vector) == hash(PhysProps(vector.sort_order, vector.partitioning, vector.flags))
