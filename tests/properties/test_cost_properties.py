"""Property-based tests for the cost ADT (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given

from repro.model.cost import INFINITE_COST, CpuIoCost, ScalarCost

finite = st.floats(0, 1e9, allow_nan=False, allow_infinity=False)
scalars = st.builds(ScalarCost, finite)
cpu_io = st.builds(CpuIoCost, finite, finite)


@given(scalars, scalars)
def test_scalar_addition_commutes(a, b):
    assert (a + b).total() == (b + a).total()


@given(cpu_io, cpu_io)
def test_cpu_io_addition_commutes(a, b):
    left, right = a + b, b + a
    assert left.cpu == right.cpu and left.io == right.io


@given(cpu_io, cpu_io, cpu_io)
def test_cpu_io_addition_associates(a, b, c):
    import math

    left = (a + b) + c
    right = a + (b + c)
    assert math.isclose(left.total(), right.total(), rel_tol=1e-9)


@given(cpu_io, cpu_io)
def test_subtraction_inverts_addition(a, b):
    roundtrip = (a + b) - b
    assert abs(roundtrip.cpu - a.cpu) < 1e-6 * max(1.0, a.cpu)
    assert abs(roundtrip.io - a.io) < 1e-6 * max(1.0, a.io)


@given(cpu_io, cpu_io)
def test_comparison_total_order(a, b):
    assert (a < b) or (b < a) or (a == b)
    assert not (a < b and b < a)


@given(cpu_io)
def test_infinite_absorbs(a):
    assert a + INFINITE_COST is INFINITE_COST
    assert a < INFINITE_COST or a.total() == float("inf")
    assert not INFINITE_COST < a


@given(cpu_io, cpu_io, cpu_io)
def test_adding_cost_is_monotone(a, b, c):
    if a < b:
        assert a + c <= b + c
