"""Tests for the random select–join workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.models.relational import relational_model
from repro.search import VolcanoOptimizer
from repro.workloads import QueryGenerator, WorkloadOptions


def test_defaults_match_paper():
    options = WorkloadOptions()
    assert options.min_rows == 1200
    assert options.max_rows == 7200
    assert options.row_width == 100
    assert options.order_by_probability == 0.0


def test_generated_query_shape():
    query = QueryGenerator().generate(4, seed=1)
    assert query.n_relations == 4
    assert len(query.table_names) == 4
    joins = [n for n in query.query.walk() if n.operator == "join"]
    selects = [n for n in query.query.walk() if n.operator == "select"]
    # "1 to 7 binary joins […] and as many selections as input relations"
    assert len(joins) == 3
    assert len(selects) == 4


def test_tables_within_paper_range():
    query = QueryGenerator().generate(5, seed=9)
    for name in query.table_names:
        stats = query.catalog.table(name).statistics
        assert 1200 <= stats.row_count <= 7200
        assert stats.row_width == 100


def test_determinism():
    first = QueryGenerator().generate(4, seed=3)
    second = QueryGenerator().generate(4, seed=3)
    assert first.query == second.query
    assert first.required == second.required
    different = QueryGenerator().generate(4, seed=4)
    assert first.query != different.query


def test_batch_produces_distinct_queries():
    batch = QueryGenerator().generate_batch(3, 10, seed=5)
    assert len({query.query for query in batch}) > 1


def test_order_by_probability_zero_and_one():
    plain = QueryGenerator(WorkloadOptions(order_by_probability=0.0))
    assert all(
        query.required.is_any for query in plain.generate_batch(3, 5, seed=2)
    )
    ordered = QueryGenerator(WorkloadOptions(order_by_probability=1.0))
    assert all(
        query.required.sort_order for query in ordered.generate_batch(3, 5, seed=2)
    )


def test_selections_can_be_disabled():
    generator = QueryGenerator(WorkloadOptions(selections=False))
    query = generator.generate(3, seed=1)
    assert all(node.operator != "select" for node in query.query.walk())


def test_single_relation_query():
    query = QueryGenerator().generate(1, seed=1)
    assert query.query.operator in ("select", "get")


def test_invalid_options_rejected():
    with pytest.raises(WorkloadError):
        WorkloadOptions(min_rows=100, max_rows=50)
    with pytest.raises(WorkloadError):
        WorkloadOptions(order_by_probability=2.0)
    with pytest.raises(WorkloadError):
        QueryGenerator().generate(0, seed=1)


@pytest.mark.parametrize("size", [2, 3, 4])
def test_generated_queries_are_optimizable(size):
    """Every generated query must make it through the optimizer."""
    spec = relational_model()
    for query in QueryGenerator(
        WorkloadOptions(order_by_probability=0.5)
    ).generate_batch(size, 3, seed=11):
        optimizer = VolcanoOptimizer(spec, query.catalog)
        result = optimizer.optimize(query.query, required=query.required)
        leaf_tables = {args[0] for args in result.plan.leaf_args()}
        assert leaf_tables == set(query.table_names)


def test_chain_shape():
    generator = QueryGenerator(WorkloadOptions(shape="chain", selections=False))
    query = generator.generate(4, seed=1)
    joins = [n for n in query.query.walk() if n.operator == "join"]
    # Chain: consecutive tables joined; the i-th join touches t(i) and t(i+1).
    tables_in_predicates = [
        sorted({name.split(".")[0] for name in j.args[0].columns()})
        for j in joins
    ]
    assert tables_in_predicates == [["t2", "t3"], ["t1", "t2"], ["t0", "t1"]]


def test_star_shape():
    generator = QueryGenerator(WorkloadOptions(shape="star", selections=False))
    query = generator.generate(4, seed=1)
    joins = [n for n in query.query.walk() if n.operator == "join"]
    for j in joins:
        tables = {name.split(".")[0] for name in j.args[0].columns()}
        assert "t0" in tables  # every edge touches the hub


def test_unknown_shape_rejected():
    with pytest.raises(WorkloadError):
        WorkloadOptions(shape="clique")
