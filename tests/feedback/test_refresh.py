"""Statistics refresh: versioned mutation, ANALYZE, scaling, policy."""

import pytest

from repro.algebra.plans import PhysicalPlan
from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics
from repro.errors import OptionsError
from repro.feedback import (
    FeedbackPolicy,
    FeedbackReport,
    FeedbackStore,
    OperatorFeedback,
    analyze_rows,
    refresh_statistics,
)
from tests.feedback.conftest import add_rowed_table


def drifted_store(table="r", estimated=40, actual=160):
    """A store holding one drifted complete-scan observation."""
    store = FeedbackStore()
    store.record(
        FeedbackReport(
            plan=PhysicalPlan("file_scan", (table, None)),
            operators=(
                OperatorFeedback(
                    node_id=0,
                    algorithm="file_scan",
                    is_enforcer=False,
                    table=table,
                    alias=None,
                    predicate=None,
                    estimated_rows=float(estimated),
                    actual_rows=actual,
                    scanned_rows=actual,
                    scan_complete=True,
                ),
            ),
        )
    )
    return store


def test_policy_validates():
    with pytest.raises(OptionsError):
        FeedbackPolicy(max_q_error=0.5)
    with pytest.raises(OptionsError):
        FeedbackPolicy(min_observations=0)
    with pytest.raises(OptionsError):
        FeedbackPolicy(buckets=0)
    FeedbackPolicy()  # defaults are valid


def test_analyze_rows_is_exact(rowed_catalog):
    entry = rowed_catalog.table("r")
    entry.rows.extend({"r.k": 50 + i, "r.v": 9} for i in range(10))
    statistics = analyze_rows(entry)
    assert statistics.row_count == 50
    assert statistics.column("r.k").distinct_values == 20  # 10 old + 10 new
    assert statistics.column("r.k").max_value == 59
    assert statistics.column("r.v").distinct_values == 6
    assert statistics.row_width == entry.statistics.row_width


def test_refresh_bumps_only_drifted_tables(rowed_catalog):
    entry = rowed_catalog.table("r")
    entry.rows.extend(
        {"r.k": i % 10, "r.v": i % 5} for i in range(120)
    )  # 4x growth, stats stale
    versions = {
        name: rowed_catalog.table_version(name)
        for name in rowed_catalog.table_names()
    }
    result = refresh_statistics(
        rowed_catalog, drifted_store(), policy=FeedbackPolicy(max_q_error=2.0)
    )
    assert result.did_refresh
    assert result.refreshed == ("r",)
    assert result.versions["r"][0] == versions["r"]
    assert result.versions["r"][1] > versions["r"]
    assert rowed_catalog.table_version("s") == versions["s"]
    assert rowed_catalog.table("r").statistics.row_count == 160
    assert "v1->" in str(result) or "v" in str(result)


def test_refresh_without_drift_is_a_no_op(rowed_catalog):
    store = drifted_store(estimated=40, actual=41)  # q-error ~1
    before = rowed_catalog.statistics_version
    result = refresh_statistics(rowed_catalog, store)
    assert not result.did_refresh
    assert rowed_catalog.statistics_version == before


def test_refresh_consumes_evidence(rowed_catalog):
    entry = rowed_catalog.table("r")
    entry.rows.extend({"r.k": i % 10, "r.v": i % 5} for i in range(120))
    store = drifted_store()
    first = refresh_statistics(rowed_catalog, store)
    assert first.did_refresh
    # Evidence consumed: a second pass finds nothing to do.
    second = refresh_statistics(rowed_catalog, store)
    assert not second.did_refresh


def test_refresh_scales_statistics_without_stored_rows():
    catalog = Catalog()
    catalog.add_table(
        "r",
        Schema.of("r.k", "r.v"),
        TableStatistics(
            40, 16, columns={"r.k": ColumnStatistics(10, 0, 9)}
        ),
    )
    result = refresh_statistics(catalog, drifted_store(estimated=40, actual=160))
    assert result.refreshed == ("r",)
    statistics = catalog.table("r").statistics
    assert statistics.row_count == 160
    # Distincts grow with the 4x factor, capped at the row count.
    assert statistics.column("r.k").distinct_values == 40
    assert statistics.column("r.k").min_value == 0  # ranges kept


def test_refresh_skips_tables_without_a_cardinality_source():
    catalog = Catalog()
    catalog.add_table(
        "r",
        Schema.of("r.k"),
        TableStatistics(40, 16),
    )
    # Drift evidence, but the scan never ran to completion: no observed
    # row count, no stored rows — nothing trustworthy to write.
    store = FeedbackStore()
    store.record(
        FeedbackReport(
            plan=PhysicalPlan("file_scan", ("r", None)),
            operators=(
                OperatorFeedback(
                    node_id=0,
                    algorithm="file_scan",
                    is_enforcer=False,
                    table="r",
                    alias=None,
                    predicate=None,
                    estimated_rows=40.0,
                    actual_rows=160,
                    scanned_rows=160,
                    scan_complete=False,
                ),
            ),
        )
    )
    before = catalog.statistics_version
    result = refresh_statistics(catalog, store)
    assert result.refreshed == ()
    assert result.skipped == ("r",)
    assert catalog.statistics_version == before


def test_refresh_skips_dropped_tables():
    store = drifted_store(table="ghost")
    result = refresh_statistics(Catalog(), store)
    assert result.skipped == ("ghost",)


def test_refreshed_statistics_satisfy_catalog_validation(rowed_catalog):
    """With stored rows, the rewrite must agree with the row count."""
    entry = rowed_catalog.table("r")
    entry.rows.extend({"r.k": i % 10, "r.v": i % 5} for i in range(120))
    # analyze_rows disabled: the scaled path must still use the stored
    # row count (the catalog validates against it), not the observation.
    result = refresh_statistics(
        rowed_catalog,
        drifted_store(actual=150),  # observation disagrees with len(rows)
        policy=FeedbackPolicy(analyze_rows=False),
    )
    assert result.refreshed == ("r",)
    assert rowed_catalog.table("r").statistics.row_count == 160
