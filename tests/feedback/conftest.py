"""Shared fixtures for the execution-feedback suite."""

import pytest

from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics


def add_rowed_table(
    catalog,
    name,
    rows,
    *,
    key_distinct,
    value_distinct,
    row_width=16,
):
    """Register ``name`` with explicit rows and *matching* statistics."""
    catalog.add_table(
        name,
        Schema.of(f"{name}.k", f"{name}.v"),
        TableStatistics(
            len(rows),
            row_width,
            columns={
                f"{name}.k": ColumnStatistics(
                    key_distinct,
                    min((row[f"{name}.k"] for row in rows), default=None),
                    max((row[f"{name}.k"] for row in rows), default=None),
                ),
                f"{name}.v": ColumnStatistics(
                    value_distinct,
                    min((row[f"{name}.v"] for row in rows), default=None),
                    max((row[f"{name}.v"] for row in rows), default=None),
                ),
            },
        ),
        rows=rows,
    )


@pytest.fixture
def rowed_catalog():
    """Two small joinable tables (overlapping keys) with stored rows."""
    catalog = Catalog()
    add_rowed_table(
        catalog,
        "r",
        [{"r.k": i % 10, "r.v": i % 5} for i in range(40)],
        key_distinct=10,
        value_distinct=5,
    )
    add_rowed_table(
        catalog,
        "s",
        [{"s.k": i % 10, "s.v": i % 4} for i in range(60)],
        key_distinct=10,
        value_distinct=4,
    )
    return catalog


@pytest.fixture
def disjoint_catalog():
    """Two tables whose join keys never match (zero-row joins)."""
    catalog = Catalog()
    add_rowed_table(
        catalog,
        "a",
        [{"a.k": i % 10, "a.v": i % 5} for i in range(30)],
        key_distinct=10,
        value_distinct=5,
    )
    add_rowed_table(
        catalog,
        "b",
        [{"b.k": 100 + (i % 10), "b.v": i % 5} for i in range(30)],
        key_distinct=10,
        value_distinct=5,
    )
    return catalog
