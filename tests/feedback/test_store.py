"""The feedback store: aggregation, drift signals, degraded quarantine."""

from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import conjunction_of, eq
from repro.feedback import FeedbackPolicy, FeedbackReport, FeedbackStore, OperatorFeedback


def scan_feedback(
    table="r",
    estimated=100.0,
    actual=100,
    scanned=None,
    complete=True,
    predicate=None,
    node_id=0,
    algorithm="file_scan",
):
    return OperatorFeedback(
        node_id=node_id,
        algorithm=algorithm,
        is_enforcer=False,
        table=table,
        alias=None,
        predicate=predicate,
        estimated_rows=estimated,
        actual_rows=actual,
        scanned_rows=scanned if scanned is not None else actual,
        scan_complete=complete,
    )


def report_of(*operators, degraded=False):
    return FeedbackReport(
        plan=PhysicalPlan("file_scan", ("r", None)),
        operators=tuple(operators),
        degraded=degraded,
    )


def test_accurate_report_keeps_q_error_at_one():
    store = FeedbackStore()
    store.record(report_of(scan_feedback()))
    assert store.reports == 1
    assert store.max_q_error("r") == 1.0
    assert store.observed_row_count("r") == 100
    assert store.drifted_tables(FeedbackPolicy()) == ()


def test_drift_accumulates_worst_case():
    store = FeedbackStore()
    store.record(report_of(scan_feedback(estimated=100, actual=150)))
    store.record(report_of(scan_feedback(estimated=100, actual=400)))
    store.record(report_of(scan_feedback(estimated=100, actual=120)))
    assert store.max_q_error("r") == 4.0
    feedback = store.table_feedback("r")
    assert feedback.observations == 3
    assert feedback.observed_rows == 120  # latest complete scan wins
    assert store.drifted_tables(FeedbackPolicy(max_q_error=2.0)) == ("r",)


def test_min_observations_gates_drift():
    store = FeedbackStore()
    store.record(report_of(scan_feedback(estimated=100, actual=400)))
    policy = FeedbackPolicy(max_q_error=2.0, min_observations=3)
    assert store.drifted_tables(policy) == ()
    store.record(report_of(scan_feedback(estimated=100, actual=400)))
    store.record(report_of(scan_feedback(estimated=100, actual=400)))
    assert store.drifted_tables(policy) == ("r",)


def test_incomplete_scans_are_not_cardinality_observations():
    store = FeedbackStore()
    store.record(report_of(scan_feedback(actual=70, scanned=70, complete=False)))
    assert store.observed_row_count("r") is None
    # ... but their q-errors still count as drift evidence.
    assert store.table_feedback("r").observations == 1


def test_degraded_reports_are_quarantined():
    store = FeedbackStore()
    store.record(report_of(scan_feedback(estimated=100, actual=400), degraded=True))
    assert store.reports == 1
    assert store.degraded_reports == 1
    # Telemetry keeps the q-error ...
    assert store.q_error_histogram()["<=4"] == 1
    # ... but the drift signal never moves.
    assert store.max_q_error("r") == 1.0
    assert store.observed_row_count("r") is None
    assert store.drifted_tables(FeedbackPolicy(max_q_error=2.0)) == ()


def test_histogram_bins():
    store = FeedbackStore()
    for estimated, actual in ((100, 100), (100, 180), (100, 350), (100, 2000)):
        store.record(report_of(scan_feedback(estimated=estimated, actual=actual)))
    histogram = store.q_error_histogram()
    assert histogram["<=1.5"] == 1
    assert histogram["<=2"] == 1
    assert histogram["<=4"] == 1
    assert histogram[">10"] == 1


def test_predicate_buckets_aggregate_observed_selectivity():
    store = FeedbackStore(buckets=10)
    predicate = eq("r.v", 3)
    store.record(
        report_of(
            scan_feedback(
                algorithm="filter_scan",
                predicate=predicate,
                estimated=20,
                actual=25,
                scanned=100,
            )
        )
    )
    store.record(
        report_of(
            scan_feedback(
                algorithm="filter_scan",
                predicate=eq("r.v", 7),  # same shape, same bucket
                estimated=20,
                actual=23,
                scanned=100,
            )
        )
    )
    buckets = store.bucket_feedback()
    assert len(buckets) == 1
    ((table, shape, bucket),) = buckets.keys()
    assert table == "r"
    assert shape == (("r.v", "="),)
    assert bucket == 2  # ~0.24 mean selectivity in 10 buckets
    entry = next(iter(buckets.values()))
    assert entry.observations == 2
    assert abs(entry.mean_selectivity - 0.24) < 1e-9


def test_conjunction_buckets_use_every_comparison():
    store = FeedbackStore()
    predicate = conjunction_of([eq("r.v", 3), eq("r.k", 1)])
    store.record(
        report_of(
            scan_feedback(
                algorithm="filter_scan",
                predicate=predicate,
                estimated=5,
                actual=4,
                scanned=100,
            )
        )
    )
    ((_, shape, _),) = store.bucket_feedback().keys()
    assert shape == (("r.k", "="), ("r.v", "="))


def test_filter_input_rows_come_from_preorder_child():
    """A bare filter's selectivity denominator is its child's output."""
    store = FeedbackStore()
    filter_op = OperatorFeedback(
        node_id=0,
        algorithm="filter",
        is_enforcer=False,
        table="r",
        alias=None,
        predicate=eq("r.v", 3),
        estimated_rows=20.0,
        actual_rows=30,
    )
    child = scan_feedback(node_id=1, estimated=100, actual=100)
    store.record(report_of(filter_op, child))
    entries = [
        entry
        for (table, shape, _), entry in store.bucket_feedback().items()
        if shape == (("r.v", "="),)
    ]
    assert len(entries) == 1
    assert abs(entries[0].mean_selectivity - 0.3) < 1e-9


def test_clear_table_consumes_evidence():
    store = FeedbackStore()
    store.record(
        report_of(
            scan_feedback(
                algorithm="filter_scan",
                predicate=eq("r.v", 3),
                estimated=100,
                actual=400,
                scanned=400,
            )
        )
    )
    store.record(report_of(scan_feedback(table="s", estimated=10, actual=40)))
    store.clear_table("r")
    assert store.table_feedback("r") is None
    assert store.bucket_feedback() == {}
    # Other tables' evidence survives.
    assert store.max_q_error("s") == 4.0


def test_render_mentions_tables_and_histogram():
    store = FeedbackStore()
    store.record(report_of(scan_feedback(estimated=100, actual=400)))
    rendered = store.render()
    assert "q-error histogram" in rendered
    assert "r: max q-error 4.00" in rendered
