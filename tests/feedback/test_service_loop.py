"""End-to-end: the adaptive loop through OptimizerService.execute.

The acceptance scenario: data grows ~4x past the catalog statistics,
``execute`` detects the q-error, refreshes statistics through the
versioned catalog API, the plan cache drops exactly the affected
fingerprints, and the re-optimized plan measurably beats the stale one.
"""

import pytest

from repro.algebra.predicates import eq
from repro.feedback import FeedbackPolicy, drifted_workload
from repro.models.relational import get, join, relational_model
from repro.options import ResourceBudget
from repro.search import SearchOptions, VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions


def make_service(**service_options):
    scenario = drifted_workload(seed=7, growth=4)
    optimizer = VolcanoOptimizer(
        relational_model(),
        scenario.catalog,
        SearchOptions(check_consistency=False),
    )
    return scenario, OptimizerService(
        optimizer, options=ServiceOptions(**service_options)
    )


def unrelated_query():
    """A query that never reads the drifting table."""
    return join(get("s"), get("t"), eq("s.k", "t.k"))


def test_execute_records_feedback_and_serves_rows():
    scenario, service = make_service()
    executed = service.execute(scenario.query)
    assert not executed.served.cached
    assert executed.rows
    assert executed.report is not None
    assert executed.report.observed_operators > 0
    assert executed.max_q_error < 1.5  # statistics still accurate
    assert service.feedback.reports == 1
    again = service.execute(scenario.query)
    assert again.served.cached
    assert again.plan == executed.plan
    assert len(again.rows) == len(executed.rows)


def test_uninstrumented_execute_is_observation_free():
    scenario, service = make_service()
    executed = service.execute(scenario.query, instrument=False)
    assert executed.report is None
    assert executed.refresh is None
    assert executed.stats.node_rows == {}
    assert service.feedback.reports == 0


def test_drift_refresh_reoptimize_beats_stale_plan():
    """The headline loop, end to end, fully deterministic."""
    policy = FeedbackPolicy(max_q_error=2.0)
    scenario, service = make_service(feedback_policy=policy)
    catalog = scenario.catalog

    warm = service.execute(scenario.query)
    assert not warm.refreshed

    versions = {
        name: catalog.table_version(name) for name in catalog.table_names()
    }
    scenario.grow()

    # The stale run: the cached plan is still served (versions are
    # unchanged — the catalog does not know the data moved), q-error
    # blows past the policy, and statistics refresh.
    stale = service.execute(scenario.query)
    assert stale.served.cached
    assert stale.max_q_error >= scenario.growth - 0.01
    assert stale.refreshed
    assert stale.refresh.refreshed == ("r",)
    assert catalog.table_version("r") > versions["r"]
    assert catalog.table_version("s") == versions["s"]
    assert catalog.table_version("t") == versions["t"]
    assert catalog.table("r").statistics.row_count == 300 * scenario.growth

    # The fresh run: the old fingerprint is stale, re-optimization sees
    # true cardinalities, and the measured work drops.
    fresh = service.execute(scenario.query)
    assert not fresh.served.cached
    assert fresh.max_q_error < policy.max_q_error
    assert fresh.stats.work() < stale.stats.work()
    assert len(fresh.rows) == len(stale.rows)


def test_refresh_invalidates_exactly_the_affected_fingerprints():
    """The PR 1 contract under mutation: surgical invalidation."""
    scenario, service = make_service(
        feedback_policy=FeedbackPolicy(max_q_error=2.0)
    )
    service.execute(scenario.query)  # reads r, s, t
    service.execute(unrelated_query())  # reads s, t only
    scenario.grow()
    refreshed = service.execute(scenario.query)
    assert refreshed.refreshed

    # The untouched query's entry survived the refresh: still a hit.
    bystander = service.execute(unrelated_query())
    assert bystander.served.cached
    # The drifted query's entry did not: re-optimized fresh.
    affected = service.execute(scenario.query)
    assert not affected.served.cached


def test_degraded_plans_record_feedback_but_never_refresh():
    scenario, service = make_service(
        feedback_policy=FeedbackPolicy(max_q_error=2.0)
    )
    scenario.grow()
    before = scenario.catalog.statistics_version
    degraded = service.execute(
        scenario.query, budget=ResourceBudget(max_costings=5)
    )
    assert degraded.served.degraded
    assert degraded.report is not None and degraded.report.degraded
    assert degraded.refresh is None
    assert scenario.catalog.statistics_version == before
    assert service.feedback.degraded_reports == 1
    # The drift is quarantined: even a later refresh pass sees nothing.
    assert service.feedback.drifted_tables(FeedbackPolicy(max_q_error=2.0)) == ()


def test_without_a_policy_feedback_is_telemetry_only():
    scenario, service = make_service()  # no feedback_policy
    scenario.grow()
    before = scenario.catalog.statistics_version
    executed = service.execute(scenario.query)
    assert executed.max_q_error >= 2.0
    assert executed.refresh is None
    assert scenario.catalog.statistics_version == before
    assert service.feedback.reports == 1


def test_per_call_policy_overrides_service_default():
    scenario, service = make_service()  # no service-level policy
    scenario.grow()
    executed = service.execute(
        scenario.query, policy=FeedbackPolicy(max_q_error=2.0)
    )
    assert executed.refreshed


def test_grow_is_idempotent():
    scenario, _ = make_service()
    added = scenario.grow()
    assert added == 300 * (scenario.growth - 1)
    assert scenario.grow() == 0
    with pytest.raises(ValueError):
        drifted_workload(growth=1)
