"""Feedback reports: q-error guards, per-operator joins, rendering.

Covers the edge cases the counters must survive: empty inputs,
zero-row joins, duplicate-heavy sorts, and zero estimates/observations.
"""

import pytest

from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.executor import ExecutionStats, execute_plan
from repro.explain import explain_plan
from repro.feedback import estimate_rows, mirror_expressions, observed_report, q_error
from repro.models.relational import get, join, relational_model, select
from repro.search import SearchOptions, VolcanoOptimizer


def optimize(catalog, query, props=None):
    optimizer = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(check_consistency=False)
    )
    return optimizer.optimize(query, props).plan


def run_report(catalog, query, props=None):
    plan = optimize(catalog, query, props)
    stats = ExecutionStats()
    rows = execute_plan(plan, catalog, stats, instrument=True)
    report = observed_report(plan, stats, catalog, relational_model())
    return plan, rows, report


# -- the q-error metric --------------------------------------------------------


def test_q_error_symmetric_and_guarded():
    assert q_error(10, 10) == 1.0
    assert q_error(100, 10) == 10.0
    assert q_error(10, 100) == 10.0
    # Zero guards: both sides are floored at one row, never divide by zero.
    assert q_error(0, 0) == 1.0
    assert q_error(0, 50) == 50.0
    assert q_error(50, 0) == 50.0
    assert q_error(0.25, 1) == 1.0


# -- joining estimates with observations ---------------------------------------


def test_report_on_scan(rowed_catalog):
    plan, rows, report = run_report(rowed_catalog, get("r"))
    assert len(rows) == 40
    root = report.operator(0)
    assert root.algorithm == "file_scan"
    assert root.table == "r"
    assert root.estimated_rows == 40
    assert root.actual_rows == 40
    assert root.scanned_rows == 40
    assert root.scan_complete
    assert root.q_error == 1.0
    assert report.max_q_error == 1.0


def test_report_ids_follow_preorder(rowed_catalog):
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    plan, _, report = run_report(rowed_catalog, query)
    assert [op.node_id for op in report.operators] == list(
        range(plan.count_nodes())
    )
    assert [op.algorithm for op in report.operators] == list(
        plan.algorithms_used()
    )


def test_empty_input_counts_zero_not_missing(rowed_catalog):
    """A selection matching nothing observes 0 rows — a real observation."""
    plan, rows, report = run_report(rowed_catalog, select(get("r"), eq("r.v", 99)))
    assert rows == []
    root = report.operator(0)
    assert root.actual_rows == 0
    # Estimated nonzero vs observed zero: guarded, grades as est/1.
    assert root.estimated_rows > 0
    assert root.q_error == pytest.approx(max(root.estimated_rows, 1.0))


def test_zero_row_join(disjoint_catalog):
    """Disjoint keys: the join emits nothing, inputs still count."""
    query = join(get("a"), get("b"), eq("a.k", "b.k"))
    plan, rows, report = run_report(disjoint_catalog, query)
    assert rows == []
    root = report.operator(0)
    assert root.actual_rows == 0
    assert root.q_error is not None and root.q_error > 1.0
    scans = [op for op in report.operators if op.algorithm == "file_scan"]
    assert sorted(op.actual_rows for op in scans) == [30, 30]
    assert all(op.scan_complete for op in scans)


def test_duplicate_heavy_sort(rowed_catalog):
    """A sort over 10-distinct keys passes every duplicate through."""
    plan, rows, report = run_report(
        rowed_catalog, get("r"), sorted_on("r.k")
    )
    assert len(rows) == 40
    sorts = [op for op in report.operators if op.algorithm == "sort"]
    assert sorts, plan.algorithms_used()
    assert sorts[0].is_enforcer
    assert sorts[0].actual_rows == 40
    # The enforcer mirrors its input: estimate matches the scan's.
    assert sorts[0].estimated_rows == 40
    assert sorts[0].q_error == 1.0


def test_uninstrumented_stats_produce_no_observations(rowed_catalog):
    plan = optimize(rowed_catalog, get("r"))
    stats = ExecutionStats()
    execute_plan(plan, rowed_catalog, stats)  # instrument off
    assert stats.node_rows == {}
    report = observed_report(plan, stats, rowed_catalog, relational_model())
    assert all(op.actual_rows is None for op in report.operators)
    assert all(op.q_error is None for op in report.operators)
    assert report.max_q_error == 1.0
    assert report.observed_operators == 0


def test_unknown_algorithm_has_no_estimate(rowed_catalog):
    plan = PhysicalPlan("warp_scan", ("r", None))
    assert mirror_expressions(plan) == {0: None}
    assert estimate_rows(plan, rowed_catalog, relational_model()) == {0: None}


# -- rendering -----------------------------------------------------------------


def test_render_lists_every_operator(rowed_catalog):
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    plan, _, report = run_report(rowed_catalog, query)
    rendered = report.render()
    assert "est_rows" in rendered and "act_rows" in rendered
    assert "q_error" in rendered
    assert "plan max q-error" in rendered
    assert len(rendered.splitlines()) == plan.count_nodes() + 2


def test_explain_plan_accepts_feedback(rowed_catalog):
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    plan, _, report = run_report(rowed_catalog, query)
    plain = explain_plan(plan)
    assert "est_rows" not in plain
    analyzed = explain_plan(plan, report)
    assert "est_rows" in analyzed and "act_rows" in analyzed
    assert "q_error" in analyzed
    assert "plan max q-error" in analyzed
    # Feedback columns never displace the cost columns.
    assert "cum. cost" in analyzed
