"""The ``required=`` deprecation warning points at the *caller's* line.

The shim in ``_resolve_props`` must warn with the stacklevel of the code
that passed the deprecated keyword — not the engine's internals — so
users can find and fix the call site from the warning alone.
"""

import warnings

import pytest

from repro.algebra.properties import sorted_on
from repro.exodus import ExodusOptimizer
from repro.models.relational import relational_model
from repro.search.engine import VolcanoOptimizer
from repro.search.tasks import TaskBasedOptimizer
from repro.systemr import SystemROptimizer

from tests.helpers import chain_query, make_catalog


def call_with_required(optimizer, query):
    return optimizer.optimize(query, required=sorted_on("a.k"))


# The optimize() call is the line right after the def.
CALL_LINE = call_with_required.__code__.co_firstlineno + 1


@pytest.mark.parametrize(
    "engine_cls",
    [VolcanoOptimizer, TaskBasedOptimizer, ExodusOptimizer, SystemROptimizer],
)
def test_required_warning_reports_the_callers_line(engine_cls):
    catalog = make_catalog([("a", 500), ("b", 800)])
    optimizer = engine_cls(relational_model(), catalog)
    query = chain_query(["a", "b"])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = call_with_required(optimizer, query)
    assert result.plan is not None
    deprecations = [
        record for record in caught
        if issubclass(record.category, DeprecationWarning)
        and "required" in str(record.message)
    ]
    assert len(deprecations) == 1
    record = deprecations[0]
    assert record.filename == __file__
    assert record.lineno == CALL_LINE


def test_positional_props_do_not_warn():
    catalog = make_catalog([("a", 500), ("b", 800)])
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        optimizer.optimize(chain_query(["a", "b"]), sorted_on("a.k"))
    assert not [
        record for record in caught
        if issubclass(record.category, DeprecationWarning)
    ]
