"""Kernel parity: specialized kernels must be byte-identical to interpreted.

The generated move loops (:mod:`repro.generator.kernel`) only swap the
engine's binding enumerators, so every observable — plans, costs,
provenance certificates, deterministic search counters, budget behavior,
memo invariants — must match the interpreted engine exactly, for every
bundled model, on both memo engines.
"""

import importlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.generator import clear_kernel_caches
from repro.lint.invariants import MemoAuditor
from repro.models.relational import (
    RelationalModelOptions,
    get,
    join,
    relational_model,
    select,
)
from repro.options import ResourceBudget
from repro.search import SearchOptions, TaskBasedOptimizer, VolcanoOptimizer
from repro.workloads import QueryGenerator, WorkloadOptions

from tests.helpers import chain_query, make_catalog

MODELS = {
    "relational": ("repro.models.relational", "relational_model"),
    "aggregates": ("repro.models.aggregates", "aggregate_model"),
    "oodb": ("repro.models.oodb", "oodb_model"),
    "parallel": ("repro.models.parallel", "parallel_relational_model"),
    "setops": ("repro.models.setops", "setops_model"),
}
ENGINES = {
    "volcano": VolcanoOptimizer,
    "tasks": TaskBasedOptimizer,
}


def build_spec(name):
    module_name, attribute = MODELS[name]
    return getattr(importlib.import_module(module_name), attribute)()


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "kernels"))
    clear_kernel_caches()
    yield
    clear_kernel_caches()


def golden_queries():
    """A small golden set every bundled model can optimize."""
    return [
        (join(get("r"), get("s"), eq("r.k", "s.k")), None),
        (
            join(
                select(get("r"), eq("r.v", 1)), get("s"), eq("r.k", "s.k")
            ),
            None,
        ),
        (chain_query(["r", "s", "t"]), None),
        (chain_query(["r", "s", "t"]), sorted_on("r.k")),
    ]


def assert_identical(base, kernelized):
    """Every observable of the two runs must agree byte for byte."""
    assert base.plan.to_sexpr() == kernelized.plan.to_sexpr()
    assert base.cost == kernelized.cost
    assert (base.certificate is None) == (kernelized.certificate is None)
    if base.certificate is not None:
        assert base.certificate.claims == kernelized.certificate.claims
        assert base.certificate.steps == kernelized.certificate.steps
        assert base.certificate.claimed_cost == (
            kernelized.certificate.claimed_cost
        )
    for counter in (
        "groups_created",
        "expressions_created",
        "algorithm_costings",
        "rule_bindings_tried",
    ):
        assert getattr(base.stats, counter) == getattr(
            kernelized.stats, counter
        ), counter


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_kernel_parity_all_models_both_engines(model_name, engine_name):
    """5 bundled models x both memo engines x golden queries."""
    engine_cls = ENGINES[engine_name]
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    interpreted = SearchOptions(certificates=True)
    kernelized = SearchOptions(certificates=True, kernel="specialized")
    for query, required in golden_queries():
        spec = build_spec(model_name)
        base = engine_cls(spec, catalog, interpreted).optimize(query, required)
        optimizer = engine_cls(spec, catalog, kernelized)
        auditor = MemoAuditor()
        auditor.attach(optimizer)
        result = optimizer.optimize(query, required)
        assert_identical(base, result)
        assert auditor.violations == []


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_kernel_parity_generated_workload(engine_name):
    """The Figure 4 workload: larger joins, required properties."""
    engine_cls = ENGINES[engine_name]
    spec = relational_model()
    generator = QueryGenerator(WorkloadOptions())
    interpreted = SearchOptions(check_consistency=False, certificates=True)
    kernelized = SearchOptions(
        check_consistency=False, certificates=True, kernel="specialized"
    )
    for query in generator.generate_batch(5, 4, seed=31):
        base = engine_cls(spec, query.catalog, interpreted).optimize(
            query.query, query.required
        )
        result = engine_cls(spec, query.catalog, kernelized).optimize(
            query.query, query.required
        )
        assert_identical(base, result)


def test_kernel_parity_compiled_tier_fallback():
    """Requesting 'compiled' without a toolchain must match too."""
    spec = relational_model()
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    query = chain_query(["r", "s", "t"])
    base = VolcanoOptimizer(spec, catalog, SearchOptions()).optimize(query)
    result = VolcanoOptimizer(
        spec, catalog, SearchOptions(kernel="compiled")
    ).optimize(query)
    assert base.plan.to_sexpr() == result.plan.to_sexpr()
    assert base.cost == result.cost


def test_kernel_respects_budgets():
    """A tripped budget degrades identically under the kernel."""
    spec = relational_model()
    generator = QueryGenerator(WorkloadOptions())
    query = generator.generate(7, seed=11)
    budget = ResourceBudget(max_costings=200)
    for kernel in (None, "specialized"):
        options = SearchOptions(
            check_consistency=False, budget=budget, kernel=kernel
        )
        result = VolcanoOptimizer(spec, query.catalog, options).optimize(
            query.query
        )
        assert result.degraded
        if kernel is None:
            base = result
    assert base.plan.to_sexpr() == result.plan.to_sexpr()
    assert base.cost == result.cost


def test_kernel_parity_min_promise_pruning():
    """Promise-threshold pruning must prune identically under the kernel."""
    spec = relational_model()
    generator = QueryGenerator(WorkloadOptions())
    query = generator.generate(5, seed=47)
    results = {}
    for kernel in (None, "specialized"):
        options = SearchOptions(
            check_consistency=False, min_promise=1.0, kernel=kernel
        )
        results[kernel] = VolcanoOptimizer(
            spec, query.catalog, options
        ).optimize(query.query)
    base, kernelized = results[None], results["specialized"]
    assert base.plan.to_sexpr() == kernelized.plan.to_sexpr()
    assert base.stats.moves_pruned == kernelized.stats.moves_pruned


@settings(max_examples=15, deadline=None)
@given(
    cross=st.booleans(),
    nested=st.booleans(),
    filter_scan=st.booleans(),
    pushdown=st.booleans(),
    permutations=st.integers(min_value=1, max_value=4),
)
def test_kernel_parity_random_model_tweaks(
    cross, nested, filter_scan, pushdown, permutations
):
    """Hypothesis: any relational-model variant stays byte-identical."""
    options = RelationalModelOptions(
        allow_cross_products=cross,
        enable_nested_loops=nested or cross,
        enable_filter_scan=filter_scan,
        select_pushdown=pushdown,
        max_merge_key_permutations=permutations,
    )
    spec = relational_model(options)
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    query = chain_query(["r", "s", "t"])
    base = VolcanoOptimizer(spec, catalog, SearchOptions()).optimize(query)
    result = VolcanoOptimizer(
        spec, catalog, SearchOptions(kernel="specialized")
    ).optimize(query)
    assert base.plan.to_sexpr() == result.plan.to_sexpr()
    assert base.cost == result.cost
    assert base.stats.algorithm_costings == result.stats.algorithm_costings
    assert base.stats.rule_bindings_tried == result.stats.rule_bindings_tried
