"""Resource governance: budgets, anytime degradation, reentrancy.

Covers the budget trip points (deadline mid-exploration, costing quota
mid-costing, rule-firing quota), degraded-plan validity (property cover
and actual execution), the cache_failures interaction (an interrupted
goal must not be memoized as a true failure), per-engine abort
reporting, and the engine-reentrancy fix.
"""

import threading

import pytest

from repro.algebra.properties import sorted_on
from repro.catalog import Catalog
from repro.errors import BudgetExceededError, OptionsError, SearchError
from repro.executor import TableSpec, execute_plan, populate_catalog
from repro.exodus import ExodusOptimizer, ExodusOptions
from repro.model.cost import ScalarCost
from repro.models.relational import relational_model
from repro.options import BudgetMeter, BudgetTripped, ResourceBudget
from repro.search import (
    SearchOptions,
    TaskBasedOptimizer,
    Tracer,
    VolcanoOptimizer,
)
from repro.systemr import SystemROptimizer, SystemROptions

from tests.helpers import chain_query, make_catalog

pytestmark = pytest.mark.budget

SPEC = relational_model()


def make_engine(n_tables, *, task_based=False, **options):
    names = [f"t{i}" for i in range(n_tables)]
    catalog = make_catalog([(name, 500 + 100 * i) for i, name in enumerate(names)])
    query = chain_query(names)
    cls = TaskBasedOptimizer if task_based else VolcanoOptimizer
    engine = cls(SPEC, catalog, SearchOptions(**options))
    return engine, query


# ---------------------------------------------------------------------------
# ResourceBudget / BudgetMeter unit behaviour
# ---------------------------------------------------------------------------


def test_budget_validation():
    with pytest.raises(OptionsError):
        ResourceBudget(deadline_seconds=0)
    with pytest.raises(OptionsError):
        ResourceBudget(max_costings=-1)
    assert ResourceBudget().is_unbounded
    assert not ResourceBudget(max_costings=10).is_unbounded


def test_meter_unarmed_never_trips():
    meter = BudgetMeter(None)
    for _ in range(1000):
        meter.charge_costing()
        meter.check("costing")
    assert meter.tripped is None


def test_meter_trips_and_stays_tripped():
    meter = BudgetMeter(ResourceBudget(max_costings=3))
    for _ in range(3):
        meter.charge_costing()
    with pytest.raises(BudgetTripped) as trip:
        meter.check("costing")
    assert trip.value.tripped == "costings"
    with pytest.raises(BudgetTripped):
        meter.check("other_phase")
    report = meter.report("costing")
    assert report.tripped == "costings"
    assert report.costings == 3


def test_meter_deadline_uses_injected_clock():
    now = [0.0]
    meter = BudgetMeter(
        ResourceBudget(deadline_seconds=5.0), clock=lambda: now[0]
    )
    meter.check("exploration")
    now[0] = 5.1
    with pytest.raises(BudgetTripped) as trip:
        meter.check("exploration")
    assert trip.value.tripped == "deadline"


# ---------------------------------------------------------------------------
# Trip points and anytime degradation
# ---------------------------------------------------------------------------


def test_deadline_trips_mid_exploration():
    engine, query = make_engine(7)
    options = engine.options.replace(
        budget=ResourceBudget(deadline_seconds=1e-4)
    )
    result = engine.optimize(query, options=options)
    assert result.degraded
    assert result.budget_report is not None
    assert result.budget_report.tripped == "deadline"
    assert result.budget_report.phase == "exploration"
    assert SPEC.props_cover(result.plan.properties, result.required)
    assert result.stats.budget_trips == 1


def test_rule_firing_quota_trips_exploration():
    engine, query = make_engine(5)
    options = engine.options.replace(
        budget=ResourceBudget(max_rule_firings=5)
    )
    result = engine.optimize(query, options=options)
    assert result.degraded
    assert result.budget_report.tripped == "rule_firings"
    assert result.budget_report.phase == "exploration"
    assert result.budget_report.rule_firings == 5
    assert SPEC.props_cover(result.plan.properties, result.required)


def test_costing_quota_trips_mid_find_best_plan():
    engine, query = make_engine(4)
    # Generous enough to let exploration close and costing begin, small
    # enough to trip well before the 4-relation search completes.
    options = engine.options.replace(budget=ResourceBudget(max_costings=20))
    result = engine.optimize(query, options=options)
    assert result.degraded
    assert result.budget_report.tripped == "costings"
    assert result.budget_report.phase == "costing"
    assert SPEC.props_cover(result.plan.properties, result.required)


def test_degraded_plan_cost_is_honest_upper_bound():
    engine, query = make_engine(5)
    exact = engine.optimize(query)
    assert not exact.degraded
    degraded = engine.optimize(
        query,
        options=engine.options.replace(budget=ResourceBudget(max_costings=10)),
    )
    assert degraded.degraded
    assert exact.cost <= degraded.cost


def test_degraded_required_props_still_delivered():
    engine, query = make_engine(5)
    required = sorted_on("t0.k")
    result = engine.optimize(
        query,
        required,
        options=engine.options.replace(budget=ResourceBudget(max_costings=10)),
    )
    assert result.degraded
    assert SPEC.props_cover(result.plan.properties, required)


def test_degraded_plan_executes():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 300, key_distinct=20, value_distinct=5),
            TableSpec("s", 500, key_distinct=20, value_distinct=5),
            TableSpec("t", 400, key_distinct=20, value_distinct=5),
        ],
        seed=11,
    )
    query = chain_query(["r", "s", "t"], with_selections=False)
    engine = VolcanoOptimizer(SPEC, catalog)
    exact = engine.optimize(query)
    degraded = engine.optimize(
        query,
        options=engine.options.replace(budget=ResourceBudget(max_costings=4)),
    )
    assert degraded.degraded

    def canonical(rows):
        return sorted(tuple(sorted(row.items())) for row in rows)

    assert canonical(execute_plan(degraded.plan, catalog)) == canonical(
        execute_plan(exact.plan, catalog)
    )


def test_interrupted_goal_not_memoized_as_failure():
    engine, query = make_engine(4, cache_failures=True)
    result = engine.optimize(
        query,
        options=engine.options.replace(budget=ResourceBudget(max_costings=20)),
    )
    assert result.degraded
    memo = result.memo
    # The interrupted root goal recorded neither a winner nor a failure:
    # a later (unbudgeted) search of the same memo state would re-run it
    # rather than trusting a degraded dead end.
    root = memo.group(result.root_group)
    assert (result.required, None) not in root.failures
    # And no stale in-progress marks survive the unwind anywhere.
    for gid in memo.reachable(result.root_group):
        group = memo.group(gid)
        for key in list(group.winners) + list(group.failures):
            assert not group.is_in_progress(key)


def test_budget_exceeded_when_no_plan_within_limit():
    engine, query = make_engine(4)
    with pytest.raises(BudgetExceededError) as error:
        engine.optimize(
            query,
            limit=ScalarCost(0.001),
            options=engine.options.replace(budget=ResourceBudget(max_costings=5)),
        )
    assert error.value.report is not None
    assert error.value.report.tripped == "costings"
    assert error.value.stats is not None
    assert error.value.stats.elapsed_seconds > 0


def test_task_engine_degrades_identically():
    recursive, query = make_engine(5)
    task_based, _ = make_engine(5, task_based=True)
    budget = ResourceBudget(max_costings=15)
    a = recursive.optimize(
        query, options=recursive.options.replace(budget=budget)
    )
    b = task_based.optimize(
        query, options=task_based.options.replace(budget=budget)
    )
    assert a.degraded and b.degraded
    assert SPEC.props_cover(b.plan.properties, b.required)


def test_unbudgeted_result_not_degraded():
    engine, query = make_engine(3)
    result = engine.optimize(query)
    assert not result.degraded
    assert result.budget_report is None
    assert result.stats.budget_trips == 0


# ---------------------------------------------------------------------------
# Baseline engines
# ---------------------------------------------------------------------------


def test_exodus_budget_best_effort_degrades():
    names = ["a", "b", "c", "d", "e"]
    catalog = make_catalog([(n, 400) for n in names])
    query = chain_query(names)
    engine = ExodusOptimizer(
        SPEC,
        catalog,
        ExodusOptions(budget=ResourceBudget(max_rule_firings=3)),
    )
    result = engine.optimize(query)
    assert result.aborted
    assert result.abort_reason == "rule_firings"
    assert result.degraded
    assert result.budget_report.tripped == "rule_firings"
    assert result.stats.elapsed_seconds > 0


def test_exodus_budget_strict_raises():
    names = ["a", "b", "c", "d"]
    catalog = make_catalog([(n, 400) for n in names])
    query = chain_query(names)
    engine = ExodusOptimizer(
        SPEC,
        catalog,
        ExodusOptions(
            budget=ResourceBudget(max_rule_firings=2), best_effort=False
        ),
    )
    with pytest.raises(BudgetExceededError) as error:
        engine.optimize(query)
    assert error.value.report.tripped == "rule_firings"
    assert error.value.stats.elapsed_seconds > 0


def test_systemr_budget_raises_with_partial_stats():
    names = ["a", "b", "c", "d", "e"]
    catalog = make_catalog([(n, 400) for n in names])
    query = chain_query(names)
    engine = SystemROptimizer(
        SPEC, catalog, SystemROptions(budget=ResourceBudget(max_costings=3))
    )
    with pytest.raises(BudgetExceededError) as error:
        engine.optimize(query)
    assert error.value.report.tripped == "costings"
    assert error.value.report.phase == "enumeration"
    assert error.value.stats.subsets_considered > 0
    assert error.value.stats.elapsed_seconds > 0


def test_systemr_unbudgeted_unaffected():
    names = ["a", "b", "c"]
    catalog = make_catalog([(n, 400) for n in names])
    query = chain_query(names)
    engine = SystemROptimizer(SPEC, catalog)
    result = engine.optimize(query)
    assert result.stats.elapsed_seconds > 0


# ---------------------------------------------------------------------------
# Stats on abort (all engines)
# ---------------------------------------------------------------------------


def test_volcano_abort_carries_partial_stats():
    engine, query = make_engine(4, max_groups=2)
    with pytest.raises(SearchError) as error:
        engine.optimize(query)
    assert error.value.stats is not None
    assert error.value.stats.elapsed_seconds > 0
    assert error.value.stats.groups_created > 0


def test_exodus_abort_carries_partial_stats():
    names = ["a", "b", "c", "d"]
    catalog = make_catalog([(n, 400) for n in names])
    query = chain_query(names)
    engine = ExodusOptimizer(
        SPEC, catalog, ExodusOptions(node_budget=2, best_effort=False)
    )
    with pytest.raises(SearchError) as error:
        engine.optimize(query)
    assert error.value.stats is not None
    assert error.value.stats.elapsed_seconds > 0


# ---------------------------------------------------------------------------
# Tracer truncation
# ---------------------------------------------------------------------------


def test_tracer_counts_dropped_events():
    tracer = Tracer(enabled=True, limit=5)
    for index in range(12):
        tracer.emit("goal", f"event {index}")
    assert len(tracer.events) == 5
    assert tracer.dropped == 7
    rendered = tracer.render()
    assert "truncated: 7 events dropped" in rendered


def test_tracer_untruncated_render_unchanged():
    tracer = Tracer(enabled=True, limit=5)
    tracer.emit("goal", "only event")
    assert tracer.dropped == 0
    assert "truncated" not in tracer.render()


def test_tracer_disabled_counts_nothing():
    tracer = Tracer(enabled=False, limit=1)
    tracer.emit("goal", "a")
    tracer.emit("goal", "b")
    assert tracer.events == [] and tracer.dropped == 0


# ---------------------------------------------------------------------------
# Reentrancy
# ---------------------------------------------------------------------------


def test_concurrent_optimize_matches_sequential():
    """Two threads, one engine, different options: byte-identical plans."""
    names = ["t0", "t1", "t2", "t3", "t4"]
    catalog = make_catalog([(n, 500 + 100 * i) for i, n in enumerate(names)])
    engine = VolcanoOptimizer(SPEC, catalog)
    query_a = chain_query(names[:4])
    query_b = chain_query(names[1:])
    options_a = SearchOptions(trace=True)
    options_b = SearchOptions(branch_and_bound=False, check_consistency=False)

    sequential_a = engine.optimize(query_a, options=options_a)
    sequential_b = engine.optimize(query_b, options=options_b)

    results = {}
    errors = []

    def work(key, query, options, rounds=3):
        try:
            for _ in range(rounds):
                results[key] = engine.optimize(query, options=options)
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [
        threading.Thread(target=work, args=("a", query_a, options_a)),
        threading.Thread(target=work, args=("b", query_b, options_b)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert results["a"].plan.pretty() == sequential_a.plan.pretty()
    assert results["a"].cost == sequential_a.cost
    assert results["b"].plan.pretty() == sequential_b.plan.pretty()
    assert results["b"].cost == sequential_b.cost
    # The per-call options override did not stick to the engine.
    assert engine.options == SearchOptions()


def test_options_override_does_not_mutate_engine():
    engine, query = make_engine(3)
    baseline = engine.options
    engine.optimize(query, options=SearchOptions(trace=True, min_promise=0.5))
    assert engine.options is baseline
