"""The logical search space has exactly the predicted size.

The paper: "The increase of Volcano's optimization costs is about
exponential, shown in an almost straight line, which mirrors exactly the
increase in the number of equivalent logical algebra expressions [13]"
(Ono & Lohman's join-enumeration counting).  Here we derive the
closed-form counts for chain and star join graphs (without cross
products) and assert the memo's exploration produces exactly them —
i.e. the transformation rules are complete *and* non-redundant for the
join space.

Chain over n relations (R1–R2–…–Rn):
  * join classes = contiguous intervals of length ≥ 2: n(n−1)/2
  * expressions in the class of interval length L: a split point on
    either side of each internal edge, times two operand orders:
    2·(L−1); summed: Σ_{L=2..n} (n−L+1)·2(L−1)

Star with hub H and k spokes:
  * join classes = nonempty spoke subsets joined to H: 2^k − 1
  * a class over m spokes splits only by peeling one spoke (the spoke
    side must stay connected): 2m expressions; total Σ C(k,m)·2m = k·2^k
"""

import pytest

from repro.algebra.predicates import eq
from repro.models.relational import get, join, relational_model
from repro.search import VolcanoOptimizer
from repro.search.extract import count_logical_expressions

from tests.helpers import make_catalog


def optimize(query, tables):
    catalog = make_catalog(tables)
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    return optimizer.optimize(query)


def root_group(memo):
    return max(
        (group for group in memo.groups()),
        key=lambda group: len(group.logical_props.tables),
    ).id


def chain(names):
    expression = get(names[0])
    for previous, name in zip(names, names[1:]):
        expression = join(expression, get(name), eq(f"{previous}.k", f"{name}.k"))
    return expression


def star(hub, spokes):
    expression = get(hub)
    for spoke in spokes:
        expression = join(expression, get(spoke), eq(f"{hub}.k", f"{spoke}.k"))
    return expression


def chain_expression_count(n):
    joins = sum((n - length + 1) * 2 * (length - 1) for length in range(2, n + 1))
    return joins + n  # plus one get expression per base relation


def chain_group_count(n):
    return n * (n - 1) // 2 + n


def star_expression_count(k):
    return k * 2 ** k + (k + 1)


def star_group_count(k):
    return (2 ** k - 1) + (k + 1)


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
def test_chain_space_counts(n):
    names = [f"t{i}" for i in range(n)]
    tables = [(name, 1200 + 100 * i) for i, name in enumerate(names)]
    result = optimize(chain(names), tables)
    memo = result.memo
    root = root_group(memo)
    assert len(memo.reachable(root)) == chain_group_count(n)
    assert count_logical_expressions(memo, root) == chain_expression_count(n)


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_star_space_counts(k):
    hub = "h"
    spokes = [f"s{i}" for i in range(k)]
    tables = [(hub, 1200)] + [(s, 2400 + 100 * i) for i, s in enumerate(spokes)]
    result = optimize(star(hub, spokes), tables)
    memo = result.memo
    root = root_group(memo)
    assert len(memo.reachable(root)) == star_group_count(k)
    assert count_logical_expressions(memo, root) == star_expression_count(k)


def test_exploration_is_not_redundant():
    """No duplicate expressions: the hash table deduplicates perfectly."""
    names = [f"t{i}" for i in range(5)]
    tables = [(name, 1200) for name in names]
    result = optimize(chain(names), tables)
    memo = result.memo
    seen = set()
    for group in memo.groups():
        for mexpr in group.expressions:
            assert mexpr not in seen
            seen.add(mexpr)


def test_work_tracks_space_size():
    """Optimization work grows with the logical space, as the paper says."""
    counts, work = [], []
    for n in (3, 4, 5, 6):
        names = [f"t{i}" for i in range(n)]
        tables = [(name, 1200) for name in names]
        result = optimize(chain(names), tables)
        counts.append(count_logical_expressions(result.memo, root_group(result.memo)))
        work.append(result.stats.algorithm_costings)
    assert counts == sorted(counts)
    assert work == sorted(work)
    # Work per expression stays within a small constant band.
    ratios = [w / c for w, c in zip(work, counts)]
    assert max(ratios) / min(ratios) < 4.0
