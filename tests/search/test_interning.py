"""Hash-consing invariants: interning, merge dedup, union-find bounds.

The memo interns one :class:`GroupExpression` instance per structural
form, so the hot dict lookups resolve on identity.  These tests pin the
properties that make that safe:

* after any engine run (merges and all), every live group holds each
  structural form **once**, and that member *is* the interned instance;
* merging never loses winners — the merged memo passes
  :class:`repro.lint.MemoAuditor` (which checks winner optimality and
  cost consistency per ``repro.lint.invariants``);
* long merge chains resolve in linear total work (path compression),
  pinned by the ``canonical_hops`` counter rather than wall-clock;
* the cached hashes are process-local: pickling strips and recomputes
  them, so objects survive the trip to forked pool workers.
"""

import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.predicates import Comparison, ComparisonOp, col, eq, lit
from repro.algebra.properties import sorted_on
from repro.lint.invariants import MemoAuditor
from repro.model.context import OptimizerContext
from repro.models import (
    aggregate_model,
    oodb_model,
    parallel_relational_model,
    relational_model,
    setops_model,
)
from repro.models.relational import get, join, select
from repro.search import SearchOptions, VolcanoOptimizer
from repro.search.memo import Memo
from repro.workloads import QueryGenerator

from tests.helpers import make_catalog

TABLES = [("r", 1200), ("s", 2400), ("t", 4800)]
BUILDERS = [
    relational_model,
    setops_model,
    parallel_relational_model,
    oodb_model,
    aggregate_model,
]


def le(column, value):
    return Comparison(ComparisonOp.LE, col(column), lit(value))


def three_way_join():
    """A query whose exploration provokes group merges in every model."""
    return join(
        select(get("r"), le("r.v", 10)),
        join(get("s"), get("t"), eq("s.k", "t.k")),
        eq("r.k", "s.k"),
    )


def assert_interned_and_deduped(memo):
    """Every live member expression is unique and *is* its interned form."""
    for group in memo.groups():
        assert len(group.expressions) == len(set(group.expressions)), (
            f"group {group.id} holds structural duplicates after merging"
        )
        for mexpr in group.expressions:
            assert memo._interned[mexpr] is mexpr
            # The hash table resolves the member back to its live group.
            assert memo.canonical(memo._table[mexpr]) == group.id


@pytest.mark.parametrize("builder", BUILDERS, ids=lambda b: b.__name__)
def test_merge_dedupes_members_and_preserves_winners(builder):
    # A generated 5-relation query: big enough that select-pushdown and
    # (re)association provoke real group merges in every bundled model.
    query = QueryGenerator().generate(5, seed=5)
    optimizer = VolcanoOptimizer(builder(), query.catalog)
    auditor = MemoAuditor().attach(optimizer)
    result = optimizer.optimize(query.query, query.required)
    memo = result.memo
    # The run must actually have merged groups, or this test pins nothing.
    assert memo.stats.group_merges > 0
    assert_interned_and_deduped(memo)
    assert auditor.audits == 1
    assert not auditor.violations, [str(v) for v in auditor.violations]


@st.composite
def join_trees(draw):
    """Random select/join trees over r, s, t (each table at most once)."""
    names = draw(st.permutations(["r", "s", "t"]))
    names = list(names[: draw(st.integers(2, 3))])
    leaves = []
    for name in names:
        leaf = get(name)
        if draw(st.booleans()):
            leaf = select(leaf, le(f"{name}.v", draw(st.integers(0, 15))))
        leaves.append((name, leaf))
    tree_name, tree = leaves[0]
    for name, leaf in leaves[1:]:
        if draw(st.booleans()):
            tree = join(tree, leaf, eq(f"{tree_name}.k", f"{name}.k"))
        else:
            tree = join(leaf, tree, eq(f"{tree_name}.k", f"{name}.k"))
    return tree


@settings(max_examples=25, deadline=None)
@given(join_trees())
def test_merge_dedup_holds_under_random_queries(tree):
    catalog = make_catalog(TABLES)
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    auditor = MemoAuditor().attach(optimizer)
    result = optimizer.optimize(tree)
    assert_interned_and_deduped(result.memo)
    assert not auditor.violations, [str(v) for v in auditor.violations]


def test_long_merge_chains_are_not_quadratic():
    """Path compression bounds total union-find hops linearly.

    Without compression, resolving every stale id of an N-deep merge
    chain walks O(N^2) links; the ``canonical_hops`` counter makes the
    difference observable without timing anything.
    """
    chain = 150
    context = OptimizerContext(relational_model(), make_catalog(TABLES))
    memo = Memo(context, check_consistency=False)
    context.group_props_resolver = memo.logical_props
    roots = [
        memo.insert_expression(select(get("r"), le("r.v", float(i))))
        for i in range(chain)
    ]
    for left, right in zip(roots, roots[1:]):
        memo._merge(left, right)
    for gid in roots:
        memo.canonical(gid)
    # Linear budget with headroom for the merges' own resolutions; the
    # quadratic failure mode is ~chain^2 / 2 = 11k+ hops.
    assert memo.stats.canonical_hops <= 6 * chain
    # After one resolution pass every stale id points directly at the
    # representative: re-resolving all of them costs one hop each.
    before = memo.stats.canonical_hops
    for gid in roots:
        memo.canonical(gid)
    assert memo.stats.canonical_hops - before <= chain


def test_render_and_reachable_work_after_deep_merging():
    """The satellite fix: traversals index canonical groups directly."""
    query = QueryGenerator().generate(5, seed=5)
    optimizer = VolcanoOptimizer(
        relational_model(), query.catalog, SearchOptions(check_consistency=False)
    )
    result = optimizer.optimize(query.query, query.required)
    memo = result.memo
    assert memo.stats.group_merges > 0
    root = max(memo.groups(), key=lambda g: len(g.logical_props.tables))
    reachable = memo.reachable(root.id)
    assert len(reachable) == len(set(reachable))
    assert all(memo.group(gid).id == gid for gid in reachable)
    rendered = memo.render()
    assert str(root.id) in rendered


def test_cached_hashes_survive_pickling():
    """Interned objects ship to forked workers: hashes must recompute."""
    expr = three_way_join()
    clone = pickle.loads(pickle.dumps(expr))
    assert clone == expr
    assert hash(clone) == hash(expr)

    props = sorted_on("r.k")
    clone_props = pickle.loads(pickle.dumps(props))
    assert clone_props == props
    assert hash(clone_props) == hash(props)

    context = OptimizerContext(relational_model(), make_catalog(TABLES))
    memo = Memo(context, check_consistency=False)
    context.group_props_resolver = memo.logical_props
    memo.insert_expression(expr)
    for group in memo.groups():
        for mexpr in group.expressions:
            clone_mexpr = pickle.loads(pickle.dumps(mexpr))
            assert clone_mexpr == mexpr
            assert hash(clone_mexpr) == hash(mexpr)
