"""Tests for plan extraction / alternative enumeration from the memo."""

import pytest

from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.models.relational import relational_model
from repro.search import VolcanoOptimizer
from repro.search.extract import alternative_plans, count_logical_expressions

from tests.helpers import chain_query, make_catalog


@pytest.fixture(scope="module")
def solved():
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    spec = relational_model()
    optimizer = VolcanoOptimizer(spec, catalog)
    result = optimizer.optimize(chain_query(["r", "s", "t"]))
    return spec, catalog, result


def test_count_logical_expressions(solved):
    spec, catalog, result = solved
    root = max(
        (g for g in result.memo.groups()),
        key=lambda group: len(group.logical_props.tables),
    ).id
    count = count_logical_expressions(result.memo, root)
    # 3 gets + 3 selects + 2 exprs each for (rs) and (st) + 4 for (rst).
    assert count == 14


def test_alternatives_include_winner_cost(solved):
    spec, catalog, result = solved
    plans = alternative_plans(result, spec, catalog)
    assert plans
    costs = [plan.cost.total() for plan in plans]
    assert min(costs) == pytest.approx(result.cost.total())


def test_alternatives_are_all_valid_join_plans(solved):
    spec, catalog, result = solved
    for plan in alternative_plans(result, spec, catalog):
        leaf_tables = {args[0] for args in plan.leaf_args()}
        assert leaf_tables == {"r", "s", "t"}
        assert plan.properties.covers(ANY_PROPS)


def test_alternatives_multiple_shapes(solved):
    spec, catalog, result = solved
    plans = alternative_plans(result, spec, catalog)
    # Both (rs)t and r(st) shapes and both join algorithms appear.
    shapes = {plan.to_sexpr() for plan in plans}
    assert len(shapes) >= 4


def test_alternatives_respect_required_props(solved):
    spec, catalog, result = solved
    required = sorted_on("r.k")
    # Re-optimize with the sorted goal so per-goal winners exist.
    optimizer = VolcanoOptimizer(spec, catalog)
    sorted_result = optimizer.optimize(chain_query(["r", "s", "t"]), required=required)
    plans = alternative_plans(sorted_result, spec, catalog, required=required)
    assert plans
    for plan in plans:
        assert plan.properties.covers(required)


def test_limit_respected(solved):
    spec, catalog, result = solved
    plans = alternative_plans(result, spec, catalog, limit=2)
    assert len(plans) == 2


def test_executed_alternatives_agree(solved):
    """Invariant 1 at plan level: all alternatives compute the same rows."""
    from repro.executor import execute_plan
    from repro.executor.data import TableSpec, generate_table

    spec, catalog, result = solved
    # Attach rows to the catalog so the plans can run.
    for name in ("r", "s", "t"):
        entry = catalog.table(name)
        if entry.rows is None:
            import random

            rng = random.Random(f"extract:{name}")
            entry.rows = [
                {
                    f"{name}.k": rng.randrange(100),
                    f"{name}.v": rng.randrange(20),
                }
                for _ in range(int(entry.statistics.row_count))
            ]
    reference = None
    for plan in alternative_plans(result, spec, catalog, limit=6):
        rows = sorted(
            tuple(sorted(row.items())) for row in execute_plan(plan, catalog)
        )
        if reference is None:
            reference = rows
        else:
            assert rows == reference
