"""Optimality of the engine against an independent brute-force oracle.

DESIGN.md invariant 4: for small queries, FindBestPlan's cost equals the
minimum over an exhaustive enumeration of all join trees, algorithm
choices, and enforcer placements performed directly on expression trees
(no memo, no rules, no pruning).
"""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.models.relational import get, join, relational_model, select
from repro.search import SearchOptions, VolcanoOptimizer

from tests.helpers import BruteForceOracle, make_catalog


def build_case(table_rows, join_edges, with_selections=True, key_distinct=100):
    """Construct (catalog, query, oracle leaves/conjuncts) for a join graph.

    ``join_edges`` are (left_table, right_table) pairs joined on ``.k``.
    The query is assembled left-deep in edge order.
    """
    catalog = make_catalog(table_rows, key_distinct=key_distinct)
    names = [name for name, _ in table_rows]
    leaves = {}
    for name, _ in table_rows:
        base = get(name)
        leaves[name] = select(base, eq(f"{name}.v", 1)) if with_selections else base
    conjuncts = [eq(f"{a}.k", f"{b}.k") for a, b in join_edges]
    joined = {names[0]}
    expression = leaves[names[0]]
    remaining = list(join_edges)
    while remaining:
        for edge in remaining:
            a, b = edge
            if a in joined and b in joined:
                # A cycle edge: fold the predicate into the top join.
                from repro.algebra.predicates import conjunction_of
                from repro.algebra.expressions import LogicalExpression

                merged = conjunction_of(
                    [expression.args[0], eq(f"{a}.k", f"{b}.k")]
                )
                expression = LogicalExpression(
                    "join", (merged,), expression.inputs
                )
                remaining.remove(edge)
                break
            if a in joined or b in joined:
                new = b if a in joined else a
                expression = join(expression, leaves[new], eq(f"{a}.k", f"{b}.k"))
                joined.add(new)
                remaining.remove(edge)
                break
        else:
            raise AssertionError("join graph is not connected")
    oracle = BruteForceOracle(
        relational_model(), catalog, [leaves[name] for name in names], conjuncts
    )
    return catalog, expression, oracle


CASES = {
    "two_way": ([("r", 1200), ("s", 3600)], [("r", "s")]),
    "chain3": (
        [("r", 1200), ("s", 2400), ("t", 7200)],
        [("r", "s"), ("s", "t")],
    ),
    "chain4": (
        [("r", 1200), ("s", 2400), ("t", 4800), ("u", 7200)],
        [("r", "s"), ("s", "t"), ("t", "u")],
    ),
    "star4": (
        [("h", 1200), ("a", 2400), ("b", 4800), ("c", 7200)],
        [("h", "a"), ("h", "b"), ("h", "c")],
    ),
    "cycle3": (
        [("r", 1200), ("s", 2400), ("t", 4800)],
        [("r", "s"), ("s", "t"), ("r", "t")],
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_engine_matches_oracle_unordered(name):
    tables, edges = CASES[name]
    catalog, query, oracle = build_case(tables, edges)
    engine = VolcanoOptimizer(relational_model(), catalog)
    result = engine.optimize(query)
    assert result.cost.total() == pytest.approx(oracle.best_cost().total())


@pytest.mark.parametrize("name", ["two_way", "chain3", "star4"])
def test_engine_matches_oracle_sorted_goal(name):
    tables, edges = CASES[name]
    catalog, query, oracle = build_case(tables, edges)
    first_table = tables[0][0]
    required = sorted_on(f"{first_table}.k")
    engine = VolcanoOptimizer(relational_model(), catalog)
    result = engine.optimize(query, required=required)
    assert result.cost.total() == pytest.approx(oracle.best_cost(required).total())


@pytest.mark.parametrize("name", ["chain3", "chain4"])
def test_engine_matches_oracle_without_selections(name):
    tables, edges = CASES[name]
    catalog, query, oracle = build_case(tables, edges, with_selections=False)
    engine = VolcanoOptimizer(relational_model(), catalog)
    result = engine.optimize(query)
    assert result.cost.total() == pytest.approx(oracle.best_cost().total())


def test_engine_matches_oracle_large_results():
    """Low-distinct keys make intermediates big and sorting interesting."""
    tables = [("r", 1200), ("s", 2400), ("t", 4800)]
    edges = [("r", "s"), ("s", "t")]
    catalog, query, oracle = build_case(tables, edges, key_distinct=10)
    engine = VolcanoOptimizer(relational_model(), catalog)
    result = engine.optimize(query, required=sorted_on("r.k"))
    assert result.cost.total() == pytest.approx(
        oracle.best_cost(sorted_on("r.k")).total()
    )


def test_no_pruning_matches_oracle_too():
    tables, edges = CASES["chain3"]
    catalog, query, oracle = build_case(tables, edges)
    engine = VolcanoOptimizer(
        relational_model(),
        catalog,
        SearchOptions(branch_and_bound=False, cache_failures=False),
    )
    result = engine.optimize(query)
    assert result.cost.total() == pytest.approx(oracle.best_cost().total())
