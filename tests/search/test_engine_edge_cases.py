"""Edge-case tests for the search engine."""

import pytest

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import TRUE, conjunction_of, eq
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.errors import ModelSpecError, OptimizationFailedError, SearchError
from repro.model.cost import CpuIoCost
from repro.models.relational import (
    RelationalModelOptions,
    get,
    join,
    relational_model,
    select,
)
from repro.search import SearchOptions, VolcanoOptimizer

from tests.helpers import chain_query, make_catalog


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])


def test_invalid_spec_rejected_at_construction(catalog):
    from repro.model.spec import ModelSpecification

    with pytest.raises(ModelSpecError):
        VolcanoOptimizer(ModelSpecification(name="empty"), catalog)


def test_unknown_operator_in_query(catalog):
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    bogus = LogicalExpression("teleport", (), (get("r"),))
    with pytest.raises(ModelSpecError):
        optimizer.optimize(bogus)


def test_unknown_table_in_query(catalog):
    from repro.errors import UnknownTableError

    optimizer = VolcanoOptimizer(relational_model(), catalog)
    with pytest.raises(UnknownTableError):
        optimizer.optimize(get("nonexistent"))


def test_cross_product_without_nested_loops_fails(catalog):
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(join(get("r"), get("s"), TRUE))


def test_non_equi_join_without_nested_loops_fails(catalog):
    from repro.algebra.predicates import Comparison, ComparisonOp, col

    optimizer = VolcanoOptimizer(relational_model(), catalog)
    predicate = Comparison(ComparisonOp.LT, col("r.k"), col("s.k"))
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(join(get("r"), get("s"), predicate))


def test_non_equi_join_with_nested_loops_succeeds(catalog):
    from repro.algebra.predicates import Comparison, ComparisonOp, col

    spec = relational_model(RelationalModelOptions(enable_nested_loops=True))
    optimizer = VolcanoOptimizer(spec, catalog)
    predicate = Comparison(ComparisonOp.LT, col("r.k"), col("s.k"))
    result = optimizer.optimize(join(get("r"), get("s"), predicate))
    assert result.plan.algorithm == "nested_loops_join"


def test_multi_column_sort_goal(catalog):
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    required = sorted_on("r.k", "r.v")
    result = optimizer.optimize(get("r"), required=required)
    assert result.plan.algorithm == "sort"
    assert result.plan.properties.covers(required)


def test_sort_goal_on_equivalent_column(catalog):
    """Requesting order on the RIGHT join column also works (key sets)."""
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = optimizer.optimize(query, required=sorted_on("s.k"))
    assert result.plan.properties.covers(sorted_on("s.k"))


def test_multi_key_join_plan(catalog):
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    predicate = conjunction_of([eq("r.k", "s.k"), eq("r.v", "s.v")])
    result = optimizer.optimize(join(get("r"), get("s"), predicate))
    assert result.plan.algorithm in ("hybrid_hash_join", "merge_join")


def test_multi_key_join_sorted_on_second_key(catalog):
    """The goal names the second join key first: the permutation
    alternative of merge join (or a sort) must handle it."""
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    predicate = conjunction_of([eq("r.k", "s.k"), eq("r.v", "s.v")])
    required = sorted_on("r.v")
    result = optimizer.optimize(join(get("r"), get("s"), predicate), required=required)
    assert result.plan.properties.covers(required)


def test_max_groups_budget_enforced(catalog):
    optimizer = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(max_groups=3)
    )
    with pytest.raises(SearchError):
        optimizer.optimize(chain_query(["r", "s", "t"]))


def test_consistency_check_can_be_disabled(catalog):
    optimizer = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(check_consistency=False)
    )
    result = optimizer.optimize(chain_query(["r", "s", "t"]))
    assert result.stats.consistency_checks == 0


def test_consistency_check_counts_when_enabled(catalog):
    optimizer = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(check_consistency=True)
    )
    result = optimizer.optimize(chain_query(["r", "s", "t"]))
    assert result.stats.consistency_checks > 0


def test_identical_selfjoin_subtrees_share_one_group(catalog):
    """The same subexpression used twice occupies one equivalence class."""
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    sub = select(get("r"), eq("r.v", 1))
    # r ⋈ r on the same key: degenerate but legal (needs aliases for
    # distinct columns, so join the select with a differently-filtered r).
    other = select(get("s"), eq("s.v", 1))
    query = join(sub, other, eq("r.k", "s.k"))
    first = optimizer.optimize(query)
    again = optimizer.optimize(join(sub, other, eq("r.k", "s.k")))
    assert first.cost == again.cost


def test_zero_row_table(catalog):
    from repro.catalog import Schema, TableStatistics

    catalog.add_table("empty", Schema.of("empty.k"), TableStatistics(0, 100))
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    result = optimizer.optimize(get("empty"))
    assert result.cost.total() >= 0


def test_enforcer_not_used_when_goal_is_any(catalog):
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    result = optimizer.optimize(chain_query(["r", "s"]))
    assert all(not node.is_enforcer for node in result.plan.walk())


def test_infinite_limit_is_default(catalog):
    from repro.model.cost import INFINITE_COST

    optimizer = VolcanoOptimizer(relational_model(), catalog)
    explicit = optimizer.optimize(get("r"), limit=INFINITE_COST)
    implicit = optimizer.optimize(get("r"))
    assert explicit.cost == implicit.cost
