"""Unit tests for the memo (equivalence classes, dedup, merging)."""

import pytest

from repro.algebra.expressions import group_leaf
from repro.algebra.predicates import eq
from repro.errors import SearchError
from repro.model.context import OptimizerContext
from repro.models.relational import get, join, relational_model, select
from repro.search.memo import GroupExpression, Memo

from tests.helpers import make_catalog


@pytest.fixture
def memo():
    spec = relational_model()
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    context = OptimizerContext(spec, catalog)
    memo = Memo(context)
    context.group_props_resolver = memo.logical_props
    return memo


def test_insert_leaf_creates_group(memo):
    gid = memo.insert_expression(get("r"))
    group = memo.group(gid)
    assert group.expressions == [GroupExpression("get", ("r", None), ())]
    assert group.logical_props.cardinality == 1200


def test_insert_is_idempotent(memo):
    first = memo.insert_expression(get("r"))
    second = memo.insert_expression(get("r"))
    assert first == second
    assert memo.group_count() == 1


def test_shared_subexpressions_share_groups(memo):
    tree_one = join(get("r"), get("s"), eq("r.k", "s.k"))
    tree_two = join(get("r"), get("t"), eq("r.k", "t.k"))
    memo.insert_expression(tree_one)
    memo.insert_expression(tree_two)
    # get(r) appears once; five groups total: r, s, t, and two joins.
    assert memo.group_count() == 5


def test_insert_resolves_group_leaves(memo):
    inner = memo.insert_expression(get("r"))
    outer = memo.insert_expression(
        join(group_leaf(inner), get("s"), eq("r.k", "s.k"))
    )
    mexpr = memo.group(outer).expressions[0]
    assert mexpr.input_groups[0] == inner


def test_logical_props_derived_per_group(memo):
    gid = memo.insert_expression(select(get("r"), eq("r.v", 1)))
    props = memo.logical_props(gid)
    assert props.cardinality == pytest.approx(1200 / 20)
    assert props.tables == frozenset({"r"})


def test_add_expression_to_group_grows_group(memo):
    tree = join(get("r"), get("s"), eq("r.k", "s.k"))
    gid = memo.insert_expression(tree)
    commuted = join(get("s"), get("r"), eq("r.k", "s.k"))
    assert memo.add_expression_to_group(commuted, gid) is True
    assert len(memo.group(gid).expressions) == 2
    # Re-adding the same expression changes nothing.
    assert memo.add_expression_to_group(commuted, gid) is False


def test_associativity_creates_new_class(memo):
    """Paper Figure 3: expression C requires a new equivalence class."""
    tree = join(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        get("t"),
        eq("s.k", "t.k"),
    )
    root = memo.insert_expression(tree)
    before = memo.group_count()  # r, s, t, rs, rst
    assert before == 5
    # The associated shape: r ⋈ (s ⋈ t).  The inner join is C in Figure 3.
    associated = join(
        get("r"),
        join(get("s"), get("t"), eq("s.k", "t.k")),
        eq("r.k", "s.k"),
    )
    memo.add_expression_to_group(associated, root)
    assert memo.group_count() == 6  # the new class for s ⋈ t
    assert len(memo.group(root).expressions) == 2


def test_merge_on_duplicate_derivation(memo):
    """Deriving an expression of class A inside class B merges A and B."""
    join_rs = join(get("r"), get("s"), eq("r.k", "s.k"))
    a = memo.insert_expression(join_rs)
    commuted = join(get("s"), get("r"), eq("r.k", "s.k"))
    b = memo.insert_expression(commuted)
    assert memo.canonical(a) != memo.canonical(b)
    # A transformation on group a now derives b's expression.
    memo.add_expression_to_group(commuted, a)
    assert memo.canonical(a) == memo.canonical(b)
    assert len(memo.group(a).expressions) == 2
    assert memo.stats.group_merges == 1


def test_merge_rewrites_parent_expressions(memo):
    """Merging input groups re-keys the expressions that reference them."""
    join_rs = join(get("r"), get("s"), eq("r.k", "s.k"))
    join_sr = join(get("s"), get("r"), eq("r.k", "s.k"))
    top_one = memo.insert_expression(join(join_rs, get("t"), eq("s.k", "t.k")))
    top_two = memo.insert_expression(join(join_sr, get("t"), eq("s.k", "t.k")))
    assert memo.canonical(top_one) != memo.canonical(top_two)
    # Prove join_rs ≡ join_sr; the two tops become identical and merge too.
    a = memo.insert_expression(join_rs)
    memo.add_expression_to_group(join_sr, a)
    assert memo.canonical(top_one) == memo.canonical(top_two)


def test_merge_clears_cached_winners(memo):
    join_rs = join(get("r"), get("s"), eq("r.k", "s.k"))
    a = memo.insert_expression(join_rs)
    memo.group(a).winners[("fake", None)] = "stale"
    memo.insert_expression(join(get("s"), get("r"), eq("r.k", "s.k")))
    memo.add_expression_to_group(
        join(get("s"), get("r"), eq("r.k", "s.k")), a
    )
    assert memo.group(a).winners == {}


def test_inconsistent_merge_rejected(memo):
    """Merging classes with different logical properties is a rule bug."""
    a = memo.insert_expression(get("r"))
    b = memo.insert_expression(get("s"))
    with pytest.raises(SearchError):
        memo.add_expression_to_group(group_leaf(b), a)


def test_inconsistent_member_rejected(memo):
    gid = memo.insert_expression(get("r"))
    with pytest.raises(SearchError):
        memo.add_expression_to_group(get("s"), gid)


def test_group_leaf_addition_merges(memo):
    """A rewrite to a bare input leaf merges the two classes."""
    # select with TRUE-like predicate is not built here; emulate with two
    # equal-cardinality selects over the same table.
    first = memo.insert_expression(select(get("r"), eq("r.v", 1)))
    second = memo.insert_expression(select(get("r"), eq("r.v", 2)))
    assert memo.add_expression_to_group(group_leaf(second), first)
    assert memo.canonical(first) == memo.canonical(second)


def test_reachable_covers_all_inputs(memo):
    tree = join(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        get("t"),
        eq("s.k", "t.k"),
    )
    root = memo.insert_expression(tree)
    assert set(memo.reachable(root)) == {
        memo.canonical(gid) for gid in range(memo.group_count())
    }


def test_max_groups_budget(memo):
    memo.max_groups = 2
    with pytest.raises(SearchError):
        memo.insert_expression(join(get("r"), get("s"), eq("r.k", "s.k")))


def test_expression_count_and_render(memo):
    root = memo.insert_expression(join(get("r"), get("s"), eq("r.k", "s.k")))
    assert memo.expression_count() == 3
    text = memo.render(root)
    assert "group" in text and "join" in text


def test_in_progress_reference_counting(memo):
    gid = memo.insert_expression(get("r"))
    group = memo.group(gid)
    key = ("props", None)
    group.mark_in_progress(key)
    group.mark_in_progress(key)
    group.unmark_in_progress(key)
    assert group.is_in_progress(key)
    group.unmark_in_progress(key)
    assert not group.is_in_progress(key)
