"""Tests for pre-optimized subplans (paper Section 6: 'longer-lived
partial results' / 'preoptimized subplans')."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.errors import SearchError
from repro.models.relational import get, join, relational_model, select
from repro.search import PreoptimizedPlan, VolcanoOptimizer

from tests.helpers import make_catalog


@pytest.fixture(scope="module")
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])


@pytest.fixture(scope="module")
def optimizer(catalog):
    return VolcanoOptimizer(relational_model(), catalog)


SUB = lambda: join(get("r"), get("s"), eq("r.k", "s.k"))
BIG = lambda: join(SUB(), get("t"), eq("s.k", "t.k"))


def test_harvest_returns_memoized_winner(optimizer):
    result = optimizer.optimize(SUB())
    seed = result.harvest(SUB())
    assert seed.cost == result.cost
    assert seed.plan.to_sexpr() == result.plan.to_sexpr()


def test_harvest_resolves_rule_derived_variants(optimizer):
    """Harvesting via the commuted join form works: the hash table knows
    every expression the rules derived for the class."""
    result = optimizer.optimize(SUB())
    commuted = join(get("s"), get("r"), eq("r.k", "s.k"))
    seed = result.harvest(commuted)
    assert seed.cost == result.cost


def test_harvest_unknown_goal_raises(optimizer):
    result = optimizer.optimize(SUB())
    with pytest.raises(SearchError):
        result.harvest(SUB(), required=sorted_on("r.v"))


def test_seeding_saves_work_and_preserves_the_result(optimizer):
    seed = optimizer.optimize(SUB()).harvest(SUB())
    unseeded = optimizer.optimize(BIG())
    seeded = optimizer.optimize(BIG(), preoptimized=[seed])
    assert seeded.cost == unseeded.cost
    assert seeded.stats.find_best_plan_calls < unseeded.stats.find_best_plan_calls


def test_seeded_winner_lands_in_the_right_class(optimizer):
    seed = optimizer.optimize(SUB()).harvest(SUB())
    seeded = optimizer.optimize(BIG(), preoptimized=[seed])
    gid = seeded.memo.insert_expression(SUB())
    winner = seeded.memo.group(gid).winners.get((seed.required, None))
    assert winner is not None
    assert winner.cost == seed.cost


def test_seeding_with_property_goal(optimizer):
    sorted_result = optimizer.optimize(SUB(), required=sorted_on("r.k"))
    seed = sorted_result.harvest(SUB(), required=sorted_on("r.k"))
    seeded = optimizer.optimize(BIG(), required=sorted_on("r.k"), preoptimized=[seed])
    unseeded = optimizer.optimize(BIG(), required=sorted_on("r.k"))
    assert seeded.cost == unseeded.cost
    assert seeded.plan.properties.covers(sorted_on("r.k"))


def test_unrelated_seed_is_harmless(optimizer, catalog):
    """A seed whose expression never appears in the query changes nothing."""
    unrelated = select(get("t"), eq("t.v", 19))
    seed_source = optimizer.optimize(unrelated)
    seed = seed_source.harvest(unrelated)
    seeded = optimizer.optimize(SUB(), preoptimized=[seed])
    plain = optimizer.optimize(SUB())
    assert seeded.cost == plain.cost


def test_seeded_plans_execute_correctly(catalog, optimizer):
    """End to end: seed, optimize, run, compare to the unseeded plan."""
    from repro.executor import execute_plan
    import random

    for name in ("r", "s", "t"):
        entry = catalog.table(name)
        if entry.rows is None:
            rng = random.Random(f"pre:{name}")
            entry.rows = [
                {f"{name}.k": rng.randrange(100), f"{name}.v": rng.randrange(20)}
                for _ in range(int(entry.statistics.row_count))
            ]
    seed = optimizer.optimize(SUB()).harvest(SUB())
    seeded_plan = optimizer.optimize(BIG(), preoptimized=[seed]).plan
    plain_plan = optimizer.optimize(BIG()).plan
    canonical = lambda rows: sorted(tuple(sorted(r.items())) for r in rows)
    assert canonical(execute_plan(seeded_plan, catalog)) == canonical(
        execute_plan(plain_plan, catalog)
    )
