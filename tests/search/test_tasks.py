"""Tests for the Cascades-style task-based search driver."""

import pytest

from repro.algebra.properties import sorted_on
from repro.models.relational import relational_model
from repro.search import SearchOptions, VolcanoOptimizer
from repro.search.tasks import TaskBasedOptimizer, lifo_scheduler
from repro.workloads import QueryGenerator, WorkloadOptions

from tests.helpers import chain_query, make_catalog


@pytest.fixture(scope="module")
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800), ("u", 7200)])


@pytest.fixture(scope="module")
def spec():
    return relational_model()


def test_matches_recursive_engine_plain(spec, catalog):
    query = chain_query(["r", "s", "t", "u"])
    recursive = VolcanoOptimizer(spec, catalog).optimize(query)
    task_based = TaskBasedOptimizer(spec, catalog).optimize(query)
    assert task_based.cost == recursive.cost
    assert task_based.plan.to_sexpr() == recursive.plan.to_sexpr()


def test_matches_recursive_engine_sorted_goal(spec, catalog):
    query = chain_query(["r", "s", "t"])
    required = sorted_on("r.k")
    recursive = VolcanoOptimizer(spec, catalog).optimize(query, required=required)
    task_based = TaskBasedOptimizer(spec, catalog).optimize(query, required=required)
    assert task_based.cost == recursive.cost
    assert task_based.plan.properties.covers(required)


@pytest.mark.parametrize(
    "options",
    [
        SearchOptions(),
        SearchOptions(branch_and_bound=False),
        SearchOptions(cache_failures=False),
        SearchOptions(branch_and_bound=False, cache_failures=False),
    ],
    ids=["default", "no_bb", "no_failures", "neither"],
)
def test_matches_under_all_option_combinations(spec, catalog, options):
    query = chain_query(["r", "s", "t"])
    required = sorted_on("s.k")
    recursive = VolcanoOptimizer(spec, catalog, options).optimize(
        query, required=required
    )
    task_based = TaskBasedOptimizer(spec, catalog, options).optimize(
        query, required=required
    )
    assert task_based.cost == recursive.cost


def test_matches_on_random_workload(spec):
    generator = QueryGenerator(WorkloadOptions(order_by_probability=0.5))
    for query in generator.generate_batch(4, 6, seed=17):
        recursive = VolcanoOptimizer(spec, query.catalog).optimize(
            query.query, required=query.required
        )
        task_based = TaskBasedOptimizer(spec, query.catalog).optimize(
            query.query, required=query.required
        )
        assert task_based.cost == recursive.cost
        assert task_based.plan.to_sexpr() == recursive.plan.to_sexpr()


def test_cost_limit_behaviour_matches(spec, catalog):
    from repro.errors import OptimizationFailedError
    from repro.model.cost import CpuIoCost

    query = chain_query(["r", "s"])
    optimum = TaskBasedOptimizer(spec, catalog).optimize(query).cost
    # Exactly at the optimum: succeeds.
    at_limit = TaskBasedOptimizer(spec, catalog).optimize(query, limit=optimum)
    assert at_limit.cost == optimum
    # Below it: fails.
    with pytest.raises(OptimizationFailedError):
        TaskBasedOptimizer(spec, catalog).optimize(
            query, limit=CpuIoCost(cpu=1.0)
        )


def test_scheduler_hook_is_used(spec, catalog):
    calls = []

    def spy_scheduler(agenda):
        calls.append(len(agenda))
        return lifo_scheduler(agenda)

    optimizer = TaskBasedOptimizer(spec, catalog, scheduler=spy_scheduler)
    result = optimizer.optimize(chain_query(["r", "s"]))
    assert result.cost.total() > 0
    assert len(calls) > 10  # the goal really ran through the agenda


def test_stats_are_comparable(spec, catalog):
    query = chain_query(["r", "s", "t"])
    recursive = VolcanoOptimizer(spec, catalog).optimize(query)
    task_based = TaskBasedOptimizer(spec, catalog).optimize(query)
    # Identical memo shape (same exploration); costing counts may differ
    # slightly because the LIFO agenda visits sibling alternatives in the
    # reverse order, which changes what branch-and-bound prunes.
    assert task_based.stats.groups_created == recursive.stats.groups_created
    assert task_based.stats.expressions_created == recursive.stats.expressions_created
    assert (
        0.5
        <= task_based.stats.algorithm_costings
        / max(1, recursive.stats.algorithm_costings)
        <= 2.0
    )


def test_matches_recursive_engine_across_models():
    """The task driver is model-agnostic: every bundled model agrees."""
    from repro.algebra.predicates import eq
    from repro.algebra.properties import sorted_on
    from repro.models.aggregates import aggregate, aggregate_model
    from repro.models.oodb import materialize, oodb_model
    from repro.models.parallel import parallel_relational_model, partitioned_on
    from repro.models.relational import get, join
    from repro.models.setops import intersect, setops_model
    from tests.models.test_oodb import make_catalog as make_oodb_catalog

    relational_catalog = make_catalog([("r", 1200), ("s", 2400)])
    cases = [
        (
            parallel_relational_model(),
            relational_catalog,
            join(get("r"), get("s"), eq("r.k", "s.k")),
            partitioned_on(["r.k"], 4),
        ),
        (
            setops_model(),
            relational_catalog,
            intersect(get("r"), get("s")),
            sorted_on("r.k"),
        ),
        (
            oodb_model(),
            make_oodb_catalog(),
            materialize(get("employee"), "dept_ref", "department"),
            None,
        ),
        (
            aggregate_model(),
            relational_catalog,
            aggregate(get("r"), ["r.k"], [("n", "count", None)]),
            sorted_on("r.k"),
        ),
    ]
    for model_spec, catalog, query, required in cases:
        recursive = VolcanoOptimizer(model_spec, catalog).optimize(
            query, required=required
        )
        task_based = TaskBasedOptimizer(model_spec, catalog).optimize(
            query, required=required
        )
        assert task_based.cost == recursive.cost, model_spec.name
        assert task_based.plan.to_sexpr() == recursive.plan.to_sexpr(), model_spec.name
