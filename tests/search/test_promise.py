"""Cross-engine promise parity and learned-promise safety.

The parity half of this suite is the regression test for the
tie-ordering bug: the task-based driver used to pursue equal-promise
moves in *reversed* discovery order (ascending sort popped off a LIFO
agenda), so on equal-cost plans the two engines returned different —
equally optimal — trees.  The ordering contract and the
order-independent ``(cost, rank, alternative)`` winner rule (see
``docs/search-internals.md``, "Promise and move ordering") make the
engines agree byte-for-byte; the safety half proves that no promise
model — learned or adversarial — can change the chosen plan under
exhaustive search.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.predicates import eq
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.catalog import Catalog
from repro.executor import TableSpec, populate_catalog
from repro.feedback.report import FeedbackReport, OperatorFeedback
from repro.models.relational import get, join, relational_model
from repro.search import (
    LearnedPromiseModel,
    PromiseModel,
    STATIC_PROMISE,
    SearchOptions,
    StaticPromise,
    TaskBasedOptimizer,
    VolcanoOptimizer,
)
from repro.service import OptimizerService, ServiceOptions
from repro.workloads import QueryGenerator, WorkloadOptions

from tests.helpers import chain_query, make_catalog

ENGINES = (VolcanoOptimizer, TaskBasedOptimizer)


class FlipModel:
    """Boosts one algorithm above everything else; nothing more."""

    def __init__(self, algorithm, promise=3.0):
        self.algorithm = algorithm
        self.promise = promise

    def transformation_promise(self, rule, props):
        return rule.promise

    def implementation_promise(self, rule, props):
        return self.promise if rule.algorithm == self.algorithm else rule.promise

    def cost_bound(self, query, required):
        return None

    def observe_result(self, query, required, cost):
        return None


class PriorModel(FlipModel):
    """A fixed cost prior for every query (and no reordering)."""

    def __init__(self, prior):
        super().__init__(algorithm=None)
        self.prior = prior

    def cost_bound(self, query, required):
        return self.prior


@pytest.fixture(scope="module")
def spec():
    return relational_model()


@pytest.fixture(scope="module")
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800), ("u", 7200)])


def chain(*tables):
    tree = get(tables[0])
    for index in range(1, len(tables)):
        tree = join(
            tree,
            get(tables[index]),
            eq(f"{tables[index - 1]}.k", f"{tables[index]}.k"),
        )
    return tree


# ---------------------------------------------------------------------------
# Cross-engine parity
# ---------------------------------------------------------------------------


def test_engines_agree_on_equal_cost_ties(spec):
    """The bug this PR fixes: equal-cost ties diverged across engines.

    The golden workload's generator settings produce several queries
    whose optimum is reached by multiple equal-cost trees; the old task
    driver pursued equal-promise moves reversed and returned different
    (equally optimal) plans for them.  Both engines must now agree on
    every query, byte for byte.
    """
    workload = QueryGenerator(
        WorkloadOptions(selectivity_range=(0.1, 0.1))
    ).generate_shared(count=12, seed=7, n_tables=6, relations=(2, 4))
    options = SearchOptions(check_consistency=False)
    recursive = VolcanoOptimizer(spec, workload.catalog, options)
    task_based = TaskBasedOptimizer(spec, workload.catalog, options)
    required = workload.queries[0].required
    for entry in workload.queries:
        first = recursive.optimize(entry.query, required)
        second = task_based.optimize(entry.query, required)
        assert first.cost == second.cost
        assert first.plan.to_sexpr() == second.plan.to_sexpr()


def _recorded_orders(engine_cls, spec, catalog, model, query, required):
    """Every group's move list (algorithms, promises, ranks), in order."""
    orders = {}

    class Spy(engine_cls):
        def _ordered_moves(self, run, group):
            moves = super()._ordered_moves(run, group)
            snapshot = tuple(
                (move.rule.algorithm, move.input_groups, move.promise, move.rank)
                for move in moves
            )
            previous = orders.setdefault(group.id, snapshot)
            assert previous == snapshot, "move order changed between goals"
            return moves

    options = SearchOptions(check_consistency=False, promise_model=model)
    Spy(spec, catalog, options).optimize(query, required)
    return orders


@pytest.mark.parametrize(
    "model",
    [None, StaticPromise(), LearnedPromiseModel(), FlipModel("merge_join")],
    ids=["default", "static", "learned_cold", "flip"],
)
def test_move_generation_and_order_parity(spec, catalog, model):
    """Both engines generate the same moves in the same pursuit order."""
    query = chain_query(["r", "s", "t", "u"])
    required = sorted_on("r.k")
    recursive = _recorded_orders(
        VolcanoOptimizer, spec, catalog, model, query, required
    )
    task_based = _recorded_orders(
        TaskBasedOptimizer, spec, catalog, model, query, required
    )
    assert recursive == task_based


def test_pursuit_order_and_static_ranks(spec, catalog):
    """Pursuit sorts by model promise; ranks stay the static reference."""
    query = chain_query(["r", "s", "t"])
    static = _recorded_orders(
        VolcanoOptimizer, spec, catalog, None, query, ANY_PROPS
    )
    flipped = _recorded_orders(
        VolcanoOptimizer,
        spec,
        catalog,
        FlipModel("merge_join"),
        query,
        ANY_PROPS,
    )
    join_orders = [
        order
        for order in static.values()
        if {name for name, *_ in order} == {"merge_join", "hybrid_hash_join"}
    ]
    assert join_orders, "no join group seen"
    for gid, order in static.items():
        # Static pursuit: descending rule promise, ranks in that order.
        assert [rank for *_, rank in order] == list(range(len(order)))
        promises = [promise for _, _, promise, _ in order]
        assert promises == sorted(promises, reverse=True)
        # The flip model reorders the pursuit but never rewrites ranks:
        # the same (algorithm, rank) pairs appear, sorted by the model's
        # promise numbers.
        refit = flipped[gid]
        assert sorted((name, rank) for name, _, _, rank in refit) == sorted(
            (name, rank) for name, _, _, rank in order
        )
        if {name for name, *_ in order} == {"merge_join", "hybrid_hash_join"}:
            assert refit[0][0] == "merge_join"


@pytest.mark.parametrize("min_promise", [None, 0.9])
@pytest.mark.parametrize(
    "model", [None, LearnedPromiseModel()], ids=["static", "learned"]
)
def test_min_promise_filtering_parity(spec, catalog, min_promise, model):
    """Pruning accounting is identical across engines for every model."""
    query = chain_query(["r", "s", "t", "u"])
    options = SearchOptions(
        check_consistency=False, min_promise=min_promise, promise_model=model
    )
    results = [
        engine_cls(spec, catalog, options).optimize(query, sorted_on("s.k"))
        for engine_cls in ENGINES
    ]
    first, second = results
    assert first.stats.moves_pruned == second.stats.moves_pruned
    assert first.stats.rules_fired == second.stats.rules_fired
    assert first.plan.to_sexpr() == second.plan.to_sexpr()
    if min_promise is not None:
        assert first.stats.moves_pruned > 0


# ---------------------------------------------------------------------------
# No model changes the plan under exhaustive search
# ---------------------------------------------------------------------------

_ALGORITHMS = (
    "file_scan",
    "filter",
    "filter_scan",
    "merge_join",
    "hybrid_hash_join",
    "project",
)


@settings(max_examples=15, deadline=None)
@given(
    st.fixed_dictionaries(
        {name: st.floats(0.0, 8.0, allow_nan=False) for name in _ALGORITHMS}
    ),
    st.booleans(),
)
def test_any_promise_model_preserves_plan(promises, want_sorted):
    spec = relational_model()
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    query = chain_query(["r", "s", "t"])
    required = sorted_on("r.k") if want_sorted else ANY_PROPS

    class Arbitrary(FlipModel):
        def __init__(self):
            super().__init__(algorithm=None)

        def implementation_promise(self, rule, props):
            return promises.get(rule.algorithm, rule.promise)

    baseline = VolcanoOptimizer(
        spec, catalog, SearchOptions(check_consistency=False)
    ).optimize(query, required)
    for engine_cls in ENGINES:
        options = SearchOptions(check_consistency=False, promise_model=Arbitrary())
        result = engine_cls(spec, catalog, options).optimize(query, required)
        assert result.cost == baseline.cost
        assert result.plan.to_sexpr() == baseline.plan.to_sexpr()


@pytest.mark.parametrize("engine_cls", ENGINES, ids=["recursive", "tasks"])
def test_learned_cost_prior_seeds_without_changing_plans(
    spec, catalog, engine_cls
):
    """Repeat optimizations seed the root bound; plans stay identical."""
    query = chain_query(["r", "s", "t", "u"])
    required = sorted_on("r.k")
    baseline = engine_cls(
        spec, catalog, SearchOptions(check_consistency=False)
    ).optimize(query, required)

    model = LearnedPromiseModel()
    optimizer = engine_cls(
        spec, catalog, SearchOptions(check_consistency=False, promise_model=model)
    )
    cold = optimizer.optimize(query, required)
    assert cold.stats.bound_seeds == 0
    assert model.priors == 1
    repeat = optimizer.optimize(query, required)
    assert repeat.stats.bound_seeds == 1
    assert repeat.stats.bound_seed_retries == 0
    for result in (cold, repeat):
        assert result.cost == baseline.cost
        assert result.plan.to_sexpr() == baseline.plan.to_sexpr()


@pytest.mark.parametrize("engine_cls", ENGINES, ids=["recursive", "tasks"])
def test_too_tight_prior_retries_transparently(spec, catalog, engine_cls):
    """A below-optimum prior fails the seeded attempt, then retries."""
    query = chain_query(["r", "s", "t"])
    baseline = engine_cls(
        spec, catalog, SearchOptions(check_consistency=False)
    ).optimize(query)
    impossible = baseline.cost - baseline.cost  # zero-cost prior
    options = SearchOptions(
        check_consistency=False, promise_model=PriorModel(impossible)
    )
    result = engine_cls(spec, catalog, options).optimize(query)
    assert result.stats.bound_seeds == 1
    assert result.stats.bound_seed_retries == 1
    assert result.cost == baseline.cost
    assert result.plan.to_sexpr() == baseline.plan.to_sexpr()


# ---------------------------------------------------------------------------
# The learned loop end to end
# ---------------------------------------------------------------------------


def test_learned_model_end_to_end_via_service(spec):
    """Execution feedback flips pursuit order; plans never change."""
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 300, key_distinct=50),
            TableSpec("s", 900, key_distinct=50),
            TableSpec("t", 600, key_distinct=50),
        ],
        seed=7,
    )
    query = chain("r", "s", "t")
    required = PhysProps(sort_order=("r.k",))

    model = LearnedPromiseModel(boost=0.75, observation_scale=2)
    optimizer = VolcanoOptimizer(
        spec, catalog, SearchOptions(check_consistency=False, promise_model=model)
    )
    service = OptimizerService(
        optimizer, options=ServiceOptions(promise_model=model)
    )
    service.execute(query, required)
    service.execute(query, required)

    # Sorted-output chains run merge joins; the evidence accumulated.
    evidence = model.algorithm_evidence("merge_join")
    assert evidence is not None and evidence.observations >= 2
    assert model.algorithm_evidence("hybrid_hash_join") is None
    assert model.priors >= 1
    merge_rule = next(
        rule for rule in spec.implementations if rule.algorithm == "merge_join"
    )
    hash_rule = next(
        rule
        for rule in spec.implementations
        if rule.algorithm == "hybrid_hash_join"
    )
    assert model.implementation_promise(
        merge_rule, None
    ) > model.implementation_promise(hash_rule, None)

    # Repeats: both engines, same plans as a static engine, bounds seeded.
    for engine_cls in ENGINES:
        static = engine_cls(
            spec, catalog, SearchOptions(check_consistency=False)
        ).optimize(query, required)
        repeat = engine_cls(
            spec,
            catalog,
            SearchOptions(check_consistency=False, promise_model=model),
        ).optimize(query, required)
        assert repeat.stats.bound_seeds == 1
        assert repeat.stats.bound_seed_retries == 0
        assert repeat.cost == static.cost
        assert repeat.plan.to_sexpr() == static.plan.to_sexpr()


def test_service_options_fold_model_into_engine_calls(spec, catalog):
    """``ServiceOptions(promise_model=...)`` reaches plain optimize()."""
    model = LearnedPromiseModel()
    optimizer = VolcanoOptimizer(spec, catalog, SearchOptions(check_consistency=False))
    service = OptimizerService(
        optimizer, options=ServiceOptions(promise_model=model)
    )
    service.optimize(chain_query(["r", "s"]))
    assert model.priors == 1  # the engine's observe_result reached it


def test_observe_skips_enforcers_and_quarantines_degraded():
    def op(node_id, algorithm, enforcer=False, est=100.0, actual=400):
        return OperatorFeedback(
            node_id=node_id,
            algorithm=algorithm,
            is_enforcer=enforcer,
            table=None,
            alias=None,
            predicate=None,
            estimated_rows=est,
            actual_rows=actual,
        )

    model = LearnedPromiseModel()
    report = FeedbackReport(
        plan=None,
        operators=(op(0, "sort", enforcer=True), op(1, "merge_join")),
    )
    model.observe(report)
    assert model.algorithm_evidence("sort") is None
    evidence = model.algorithm_evidence("merge_join")
    assert evidence.observations == 1
    assert evidence.mean_q_error == pytest.approx(4.0)

    degraded = FeedbackReport(
        plan=None, operators=(op(1, "merge_join"),), degraded=True
    )
    model.observe(degraded)
    evidence = model.algorithm_evidence("merge_join")
    # The appearance counts; the untrusted q-error is quarantined to 1.0.
    assert evidence.observations == 2
    assert evidence.mean_q_error == pytest.approx(2.5)


def test_static_promise_satisfies_protocol():
    assert isinstance(STATIC_PROMISE, PromiseModel)
    assert isinstance(LearnedPromiseModel(), PromiseModel)


# ---------------------------------------------------------------------------
# Greedy degradation
# ---------------------------------------------------------------------------


def test_greedy_degradation_unchanged_without_model(spec, catalog):
    """No model (or the static one) must reproduce historical greedy."""
    from repro.model.context import OptimizerContext
    from repro.search.extract import greedy_plan

    result = VolcanoOptimizer(
        spec, catalog, SearchOptions(check_consistency=False)
    ).optimize(chain_query(["r", "s", "t"]))
    context = OptimizerContext(spec, catalog)
    context.group_props_resolver = result.memo.logical_props
    root = max(
        (group for group in result.memo.groups()),
        key=lambda group: len(group.logical_props.tables),
    ).id
    default = greedy_plan(result.memo, context, root, ANY_PROPS)
    static = greedy_plan(
        result.memo, context, root, ANY_PROPS, promise_model=STATIC_PROMISE
    )
    assert default is not None
    assert default.to_sexpr() == static.to_sexpr()
    # A model *may* steer greedy extraction (it is the one deliberate
    # ordering-sensitive path) — but the result is still a valid plan
    # over the same tables.
    steered = greedy_plan(
        result.memo,
        context,
        root,
        ANY_PROPS,
        promise_model=FlipModel("merge_join"),
    )
    assert steered is not None
    assert {args[0] for args in steered.leaf_args()} == {
        args[0] for args in default.leaf_args()
    }
