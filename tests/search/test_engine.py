"""Tests for the Volcano search engine (the paper's Figure 2)."""

import pytest

from repro.algebra.predicates import TRUE, eq
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.errors import OptimizationFailedError
from repro.model.cost import CpuIoCost, INFINITE_COST
from repro.models.relational import (
    RelationalModelOptions,
    get,
    join,
    relational_model,
    select,
)
from repro.search import SearchOptions, VolcanoOptimizer

from tests.helpers import chain_query, make_catalog


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800), ("u", 7200)])


@pytest.fixture
def optimizer(catalog):
    return VolcanoOptimizer(relational_model(), catalog)


def two_way(predicate=None):
    return join(get("r"), get("s"), predicate or eq("r.k", "s.k"))


# -- basic behaviour ----------------------------------------------------------


def test_single_scan(optimizer):
    result = optimizer.optimize(get("r"))
    assert result.plan.algorithm == "file_scan"
    assert result.plan.args == ("r", None)
    assert result.cost.total() > 0


def test_two_way_join_produces_valid_plan(optimizer):
    result = optimizer.optimize(two_way())
    assert result.plan.algorithm in ("hybrid_hash_join", "merge_join")
    leaf_tables = {args[0] for args in result.plan.leaf_args()}
    assert leaf_tables == {"r", "s"}


def test_complex_mapping_filter_scan(optimizer):
    """select(get) collapses into the combined filter_scan algorithm."""
    result = optimizer.optimize(select(get("r"), eq("r.v", 1)))
    assert result.plan.algorithm == "filter_scan"
    assert result.plan.inputs == ()


def test_plan_cost_is_cumulative(optimizer):
    result = optimizer.optimize(two_way())
    child_costs = [child.cost for child in result.plan.inputs]
    assert all(child.cost < result.cost for child in result.plan.inputs)
    assert result.cost == result.plan.cost


def test_memo_reinitialized_per_query(optimizer):
    first = optimizer.optimize(get("r"))
    second = optimizer.optimize(get("s"))
    assert first.memo is not second.memo
    assert second.stats.groups_created == 1


# -- physical properties and enforcers ----------------------------------------


def test_sorted_goal_satisfied(optimizer):
    required = sorted_on("r.k")
    result = optimizer.optimize(two_way(), required=required)
    assert result.plan.properties.covers(required)


def test_sorted_goal_via_enforcer_or_merge_join(optimizer):
    result = optimizer.optimize(two_way(), required=sorted_on("r.k"))
    algorithms = result.plan.algorithms_used()
    assert "sort" in algorithms or "merge_join" in algorithms


def test_merge_join_not_considered_below_its_own_sort(optimizer):
    """The excluding property vector (paper Section 3).

    When a sort enforcer provides order X, no algorithm that could have
    delivered X itself may appear directly below the sort.
    """
    result = optimizer.optimize(two_way(), required=sorted_on("r.k"))
    for node in result.plan.walk():
        if node.algorithm != "sort":
            continue
        below = node.inputs[0]
        (order,) = node.args
        if below.algorithm == "merge_join":
            assert not below.properties.covers(PhysProps(sort_order=order))


def test_merge_join_output_order_reused(catalog):
    """Interesting orderings: one sorted base feeds two merge joins."""
    options = RelationalModelOptions()
    spec = relational_model(options)
    optimizer = VolcanoOptimizer(spec, catalog)
    query = chain_query(["r", "s", "t"], with_selections=False)
    result = optimizer.optimize(query, required=sorted_on("r.k"))
    # Requiring sorted output makes merge joins attractive; when two
    # merge joins stack, the intermediate is NOT re-sorted.
    algorithms = result.plan.algorithms_used()
    if algorithms.count("merge_join") == 2:
        sorts = result.plan.count_algorithm("sort")
        assert sorts <= 3  # at most one per base table, never per join


def test_unsatisfiable_goal_fails(catalog):
    spec = relational_model()
    optimizer = VolcanoOptimizer(spec, catalog)
    # Partitioning is required but the serial model has no exchange.
    from repro.algebra.properties import hash_partitioned

    required = PhysProps(partitioning=hash_partitioned(["r.k"], 4))
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(get("r"), required=required)


# -- cost limits and branch-and-bound -----------------------------------------


def test_cost_limit_failure(optimizer):
    tiny = CpuIoCost(cpu=1.0, io=0.0)
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(two_way(), limit=tiny)


def test_cost_limit_generous_succeeds(optimizer):
    unlimited = optimizer.optimize(two_way())
    generous = optimizer.optimize(two_way(), limit=unlimited.cost)
    assert generous.cost == unlimited.cost


def test_branch_and_bound_does_not_change_result(catalog):
    query = chain_query(["r", "s", "t", "u"])
    with_bb = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(branch_and_bound=True)
    ).optimize(query)
    without_bb = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(branch_and_bound=False)
    ).optimize(query)
    assert with_bb.cost == without_bb.cost


def test_branch_and_bound_prunes_work(catalog):
    query = chain_query(["r", "s", "t", "u"])
    with_bb = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(branch_and_bound=True)
    ).optimize(query)
    without_bb = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(branch_and_bound=False)
    ).optimize(query)
    pruned = with_bb.stats.moves_pruned + with_bb.stats.inputs_abandoned
    not_pruned = without_bb.stats.moves_pruned + without_bb.stats.inputs_abandoned
    assert pruned > not_pruned


def test_failure_caching_does_not_change_result(catalog):
    query = chain_query(["r", "s", "t", "u"])
    with_failures = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(cache_failures=True)
    ).optimize(query, required=sorted_on("r.k"))
    without_failures = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(cache_failures=False)
    ).optimize(query, required=sorted_on("r.k"))
    assert with_failures.cost == without_failures.cost


# -- dynamic programming ------------------------------------------------------


def test_winners_are_reused(optimizer):
    result = optimizer.optimize(chain_query(["r", "s", "t"]))
    assert result.stats.winner_hits > 0


def test_inverse_rules_terminate(optimizer):
    """Commutativity is its own inverse; exploration must still terminate."""
    result = optimizer.optimize(two_way())
    assert result.stats.exploration_passes < 10


def test_transformations_explore_all_join_orders(optimizer):
    """All 4 ordered 2-relation trees and both 3-relation shapes appear."""
    result = optimizer.optimize(chain_query(["r", "s", "t"], with_selections=False))
    root_group = max(
        result.memo.groups(), key=lambda group: group.logical_props.cardinality
    )
    # Top class: (rs)t, t(rs), r(st), (st)r — 4 expressions.
    assert len(root_group.expressions) == 4


def test_stats_counters_populated(optimizer):
    result = optimizer.optimize(chain_query(["r", "s", "t"]))
    stats = result.stats
    assert stats.groups_created >= 9
    assert stats.expressions_created > stats.groups_created
    assert stats.algorithm_costings > 0
    assert stats.enforcer_costings >= 0
    assert stats.elapsed_seconds > 0


def test_trace_collection(catalog):
    optimizer = VolcanoOptimizer(
        relational_model(), catalog, SearchOptions(trace=True)
    )
    result = optimizer.optimize(two_way())
    assert result.trace
    assert "goal" in result.trace and "winner" in result.trace


# -- determinism ----------------------------------------------------------------


def test_optimization_is_deterministic(catalog):
    query = chain_query(["r", "s", "t", "u"])
    first = VolcanoOptimizer(relational_model(), catalog).optimize(query)
    second = VolcanoOptimizer(relational_model(), catalog).optimize(query)
    assert first.cost == second.cost
    assert first.plan.to_sexpr() == second.plan.to_sexpr()
