"""The batch driver: ``OptimizerService.optimize_many``.

The contract under test: a batch call returns, in input order, exactly
what a sequence of :meth:`optimize` calls would have returned — whether
the queries were served warm, optimized serially, or fanned out to
forked worker processes.  Plus the batch-only semantics: duplicate
queries optimized once, batch deadlines split into per-query budgets,
degraded answers served but never cached, and worker failures re-raised
deterministically.
"""

import os

import pytest

from repro.models.relational import relational_model
from repro.options import ResourceBudget
from repro.search import SearchOptions, VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions
from repro.service.parallel import fork_available
from repro.workloads import QueryGenerator

SPEC = relational_model()


@pytest.fixture(scope="module")
def workload():
    return QueryGenerator().generate_shared(
        count=12, seed=11, n_tables=8, relations=(2, 5)
    )


def make_service(catalog, **options):
    optimizer = VolcanoOptimizer(
        SPEC, catalog, SearchOptions(check_consistency=False)
    )
    return OptimizerService(
        optimizer, options=ServiceOptions(parameterized=False, **options)
    )


def queries_of(workload):
    return [q.query for q in workload.queries], workload.queries[0].required


def test_serial_batch_matches_single_query_answers(workload):
    queries, required = queries_of(workload)
    batch = make_service(workload.catalog).optimize_many(queries, required)
    single = make_service(workload.catalog)
    for query, served in zip(queries, batch):
        reference = single.optimize(query, required)
        assert str(served.plan) == str(reference.plan)
        assert str(served.cost) == str(reference.cost)


def test_second_batch_is_all_warm(workload):
    queries, required = queries_of(workload)
    service = make_service(workload.catalog)
    cold = service.optimize_many(queries, required)
    assert not any(result.cached for result in cold)
    warm = service.optimize_many(queries, required)
    assert all(result.cached for result in warm)
    for before, after in zip(cold, warm):
        assert str(after.plan) == str(before.plan)
        assert str(after.cost) == str(before.cost)


def test_duplicates_in_one_batch_optimized_once(workload):
    queries, required = queries_of(workload)
    batch = [queries[0], queries[1], queries[0], queries[1], queries[0]]
    service = make_service(workload.catalog)
    results = service.optimize_many(batch, required)
    assert [result.cached for result in results] == [
        False, False, True, True, True,
    ]
    assert str(results[0].plan) == str(results[2].plan) == str(results[4].plan)


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_parallel_batch_is_deterministic_and_identical(workload):
    queries, required = queries_of(workload)
    serial = make_service(workload.catalog).optimize_many(queries, required)
    parallel = make_service(workload.catalog).optimize_many(
        queries, required, max_workers=4
    )
    assert len(parallel) == len(queries)
    for left, right in zip(serial, parallel):
        assert str(left.plan) == str(right.plan)
        assert str(left.cost) == str(right.cost)
        assert left.required == right.required
    # The parallel results populated the parent's cache.
    service = make_service(workload.catalog)
    service.optimize_many(queries, required, max_workers=4)
    assert all(
        result.cached
        for result in service.optimize_many(queries, required)
    )


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_parallel_results_are_slim_but_complete(workload):
    queries, required = queries_of(workload)
    service = make_service(workload.catalog)
    results = service.optimize_many(queries[:4], required, max_workers=2)
    for served in results:
        assert served.result is not None
        assert served.result.memo is None  # not shipped across the pipe
        assert served.result.stats.elapsed_seconds > 0
        assert served.plan is served.result.plan


def test_batch_deadline_splits_into_per_query_budgets(workload):
    queries, required = queries_of(workload)
    service = make_service(workload.catalog)
    # A batch deadline far below one optimization: every query trips its
    # share, and the tripped report records the split (40µs / 4).
    results = service.optimize_many(
        queries[:4], required, deadline_seconds=4e-05
    )
    for served in results:
        assert served.degraded
        report = served.result.budget_report
        assert report is not None
        assert report.budget.deadline_seconds == pytest.approx(1e-05)


def test_batch_deadline_composes_with_budget(workload):
    queries, required = queries_of(workload)
    base = ResourceBudget(max_costings=10, deadline_seconds=5.0)
    service = make_service(workload.catalog)
    results = service.optimize_many(
        queries[:4], required, deadline_seconds=100.0, budget=base
    )
    for served in results:
        # costings cap trips immediately; the tighter deadline (the
        # budget's own 5s, not the 25s batch share) is what was applied.
        assert served.degraded
        budget = served.result.budget_report.budget
        assert budget.max_costings == 10
        assert budget.deadline_seconds == pytest.approx(5.0)
    # Degraded answers are served but never poison the cache.
    assert len(service.cache) == 0
    assert service.stats.degraded == 4


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_degraded_parallel_batch_never_cached(workload):
    queries, required = queries_of(workload)
    budget = ResourceBudget(max_costings=10)
    service = make_service(workload.catalog)
    results = service.optimize_many(
        queries[:6], required, budget=budget, max_workers=3
    )
    assert all(result.degraded for result in results)
    assert len(service.cache) == 0


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
def test_worker_failure_reraises_earliest_in_input_order(workload):
    queries, required = queries_of(workload)
    # A query the relational spec cannot optimize (a set operation): it
    # fingerprints fine in the parent, then fails inside the worker; the
    # failure ships back as a value and the parent re-raises it.
    from repro.algebra.expressions import LogicalExpression
    from repro.errors import ReproError
    from repro.models.relational import get

    bad = LogicalExpression("union", (), (get("t0"), get("t1")))
    service = make_service(workload.catalog)
    with pytest.raises(ReproError, match="union"):
        service.optimize_many(
            [queries[0], bad, queries[1]], required, max_workers=2
        )


def test_warm_hits_report_service_side_latency(workload):
    """Satellite: re-serving a cached plan must not re-count engine time.

    ``CacheStats.engine_seconds`` accumulates engine wall-clock once per
    fresh optimization; ``hit_seconds`` accumulates only the (tiny)
    lookup latency of warm answers.  Before the split, a warm batch
    re-reported every entry's original ``elapsed_seconds``, double- (or
    N-times-) counting engine work.
    """
    queries, required = queries_of(workload)
    service = make_service(workload.catalog)
    service.optimize_many(queries, required)
    stats = service.stats
    engine_after_cold = stats.engine_seconds
    assert engine_after_cold > 0
    assert stats.hit_seconds == 0.0

    service.optimize_many(queries, required)
    # The warm batch added lookup latency only: engine time unchanged,
    # and the hits cost far less than the engine runs they reused.
    assert stats.engine_seconds == engine_after_cold
    assert 0.0 < stats.hit_seconds < engine_after_cold
    assert stats.as_dict()["hit_seconds"] == stats.hit_seconds


@pytest.mark.skipif(
    not fork_available() or len(os.sched_getaffinity(0)) < 4,
    reason="throughput comparison needs >= 4 usable cores",
)
def test_parallel_throughput_beats_serial():
    """4 workers vs serial on a 32-query batch: >= 2.5x throughput."""
    import time

    workload = QueryGenerator().generate_shared(
        count=32, seed=11, n_tables=8, relations=(4, 7)
    )
    queries, required = queries_of(workload)

    started = time.perf_counter()
    serial = make_service(workload.catalog).optimize_many(queries, required)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel = make_service(workload.catalog).optimize_many(
        queries, required, max_workers=4
    )
    parallel_elapsed = time.perf_counter() - started

    for left, right in zip(serial, parallel):
        assert str(left.plan) == str(right.plan)
    assert serial_elapsed / parallel_elapsed >= 2.5
