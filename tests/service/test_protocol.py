"""Every engine answers to the one :class:`Optimizer` protocol."""

import warnings

import pytest

from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.exodus import ExodusOptimizer, ExodusOptions, ExodusResult
from repro.models.relational import get, join, relational_model, select
from repro.algebra.predicates import eq
from repro.search import (
    OptimizationResult,
    Optimizer,
    SearchOptions,
    TaskBasedOptimizer,
    VolcanoOptimizer,
)
from repro.systemr import SystemROptimizer, SystemROptions, SystemRResult

from tests.helpers import make_catalog

SPEC = relational_model()

ENGINES = [
    VolcanoOptimizer,
    TaskBasedOptimizer,
    ExodusOptimizer,
    SystemROptimizer,
]


def two_way():
    return join(get("r"), get("s"), eq("r.k", "s.k"))


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400)])


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_satisfies_protocol(engine, catalog):
    assert isinstance(engine(SPEC, catalog), Optimizer)


@pytest.mark.parametrize("engine", ENGINES)
def test_unified_signature_returns_optimization_result(engine, catalog):
    result = engine(SPEC, catalog).optimize(two_way())
    assert isinstance(result, OptimizationResult)
    assert result.plan is not None
    assert result.required == ANY_PROPS


@pytest.mark.parametrize("engine", ENGINES)
def test_props_accepted_positionally(engine, catalog):
    required = sorted_on("r.k")
    result = engine(SPEC, catalog).optimize(two_way(), required)
    assert result.required == required
    assert result.plan.properties.covers(required)


@pytest.mark.parametrize("engine", ENGINES)
def test_required_keyword_is_deprecated_but_works(engine, catalog):
    required = sorted_on("r.k")
    with pytest.deprecated_call():
        result = engine(SPEC, catalog).optimize(two_way(), required=required)
    assert result.required == required


@pytest.mark.parametrize("engine", ENGINES)
def test_props_and_required_together_rejected(engine, catalog):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError):
            engine(SPEC, catalog).optimize(
                two_way(), ANY_PROPS, required=ANY_PROPS
            )


def test_engines_agree_on_optimal_cost(catalog):
    costs = [
        engine(SPEC, catalog).optimize(two_way()).cost.total()
        for engine in ENGINES
    ]
    assert all(cost == pytest.approx(costs[0]) for cost in costs)


def test_subclassed_results():
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    assert isinstance(
        ExodusOptimizer(SPEC, catalog).optimize(two_way()), ExodusResult
    )
    assert isinstance(
        SystemROptimizer(SPEC, catalog).optimize(two_way()), SystemRResult
    )
    assert issubclass(ExodusResult, OptimizationResult)
    assert issubclass(SystemRResult, OptimizationResult)


def test_per_call_options_override_and_restore(catalog):
    optimizer = VolcanoOptimizer(SPEC, catalog)
    default = optimizer.options
    custom = SearchOptions(trace=True)
    result = optimizer.optimize(two_way(), options=custom)
    assert result.trace is not None
    assert optimizer.options is default
    assert optimizer.optimize(two_way()).trace is None


def test_per_call_options_for_systemr(catalog):
    optimizer = SystemROptimizer(SPEC, catalog)
    bushy = SystemROptions(bushy=True)
    optimizer.optimize(two_way(), options=bushy)
    assert optimizer.options.bushy is False


def test_per_call_options_for_exodus(catalog):
    optimizer = ExodusOptimizer(SPEC, catalog)
    default = optimizer.options
    optimizer.optimize(two_way(), options=ExodusOptions(node_budget=500))
    assert optimizer.options is default


def test_selects_are_protocol_clean(catalog):
    query = select(two_way(), eq("r.v", 1))
    for engine in (VolcanoOptimizer, TaskBasedOptimizer):
        result = engine(SPEC, catalog).optimize(query)
        assert isinstance(result, OptimizationResult)
