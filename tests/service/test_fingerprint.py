"""Tests for the canonical plan-cache fingerprint."""

from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.models.relational import get, join, select
from repro.algebra.predicates import Comparison, ComparisonOp, col, eq, lit
from repro.service import fingerprint, table_dependencies

from tests.helpers import make_catalog


def query(value=5):
    return join(
        select(
            get("r"), Comparison(ComparisonOp.LE, col("r.v"), lit(value))
        ),
        get("s"),
        eq("r.k", "s.k"),
    )


def test_table_dependencies_sorted_unique():
    catalog = make_catalog([("s", 100), ("r", 100)])
    assert table_dependencies(query(), catalog) == ("r", "s")


def test_unknown_tables_are_ignored():
    catalog = make_catalog([("r", 100)])
    assert table_dependencies(query(), catalog) == ("r",)


def test_fingerprint_is_deterministic():
    catalog = make_catalog([("r", 100), ("s", 100)])
    first = fingerprint(query(), ANY_PROPS, catalog)
    second = fingerprint(query(), ANY_PROPS, catalog)
    assert first == second
    assert first.tables == ("r", "s")


def test_fingerprint_distinguishes_literals_props_and_buckets():
    catalog = make_catalog([("r", 100), ("s", 100)])
    base = fingerprint(query(5), ANY_PROPS, catalog)
    assert fingerprint(query(6), ANY_PROPS, catalog).digest != base.digest
    assert fingerprint(query(5), sorted_on("r.k"), catalog).digest != base.digest
    assert (
        fingerprint(query(5), ANY_PROPS, catalog, bucket_key=(("<=", 3),)).digest
        != base.digest
    )


def test_fingerprint_changes_with_statistics_version():
    catalog = make_catalog([("r", 100), ("s", 100)])
    before = fingerprint(query(), ANY_PROPS, catalog)
    entry = catalog.table("r")
    catalog.update_statistics("r", entry.statistics)
    after = fingerprint(query(), ANY_PROPS, catalog)
    assert before.digest != after.digest
    assert before.versions != after.versions


def test_fingerprint_unaffected_by_other_tables():
    catalog = make_catalog([("r", 100), ("s", 100), ("t", 100)])
    before = fingerprint(query(), ANY_PROPS, catalog)
    catalog.update_statistics("t", catalog.table("t").statistics)
    assert fingerprint(query(), ANY_PROPS, catalog) == before
