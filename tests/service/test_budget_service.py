"""Service-layer resource governance.

Degraded results are served but never cached or harvested — a budget
trip must not poison the cross-query plan cache with a plan that was
never proven optimal.
"""

import pytest

from repro.options import ResourceBudget
from repro.search import VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions
from repro.models.relational import relational_model

from tests.helpers import chain_query, make_catalog

pytestmark = pytest.mark.budget

SPEC = relational_model()


def make_service(n_tables=5, **options):
    names = [f"t{i}" for i in range(n_tables)]
    catalog = make_catalog([(n, 500 + 100 * i) for i, n in enumerate(names)])
    optimizer = VolcanoOptimizer(SPEC, catalog)
    service = OptimizerService(optimizer, options=ServiceOptions(**options))
    return service, chain_query(names)


def test_degraded_result_served_but_not_cached():
    service, query = make_service()
    served = service.optimize(query, budget=ResourceBudget(max_costings=10))
    assert served.degraded
    assert not served.cached
    assert service.stats.degraded == 1
    assert len(service.cache) == 0
    # The same query again, unbudgeted: a full optimization, also a
    # cache miss (the degraded run stored nothing).
    full = service.optimize(query)
    assert not full.degraded
    assert not full.cached
    assert full.cost <= served.cost
    assert len(service.cache) >= 1


def test_service_level_budget_applies_to_all_requests():
    service, query = make_service(
        budget=ResourceBudget(max_rule_firings=5)
    )
    served = service.optimize(query)
    assert served.degraded
    assert service.stats.degraded == 1


def test_per_request_budget_overrides_service_budget():
    service, query = make_service(budget=ResourceBudget(max_costings=5))
    # A generous per-request budget wins over the strict service default.
    served = service.optimize(
        query, budget=ResourceBudget(max_costings=1_000_000)
    )
    assert not served.degraded
    assert served.plan is not None
    assert service.stats.degraded == 0
    assert len(service.cache) >= 1


def test_budget_override_does_not_stick():
    service, query = make_service()
    engine_options = service.optimizer.options
    service.optimize(query, budget=ResourceBudget(max_costings=10))
    assert service.optimizer.options is engine_options
    assert service.optimizer.options.budget is None
    # Next unbudgeted call is unconstrained.
    assert not service.optimize(query).degraded


def test_degraded_counter_in_as_dict():
    service, query = make_service()
    service.optimize(query, budget=ResourceBudget(max_costings=10))
    stats = service.stats.as_dict()
    assert stats["degraded"] == 1
