"""ServiceOptions.verify_plans: verified serving, quarantine, sharing.

The policy under test: fresh answers are verified before caching, hits
are re-verified on every lookup, a failing entry (and its template
sibling) is quarantined and the query transparently re-optimized, and
a sharing pass that fails verification is discarded wholesale.
"""

import dataclasses

import pytest

from repro.models.relational import relational_model
from repro.search import SearchOptions, VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions
from repro.workloads import QueryGenerator, WorkloadOptions

from tests.helpers import chain_query, make_catalog

SPEC = relational_model()


def make_service(catalog, **options):
    optimizer = VolcanoOptimizer(
        SPEC, catalog, SearchOptions(check_consistency=False)
    )
    return OptimizerService(
        optimizer, options=ServiceOptions(verify_plans=True, **options)
    )


@pytest.fixture
def catalog():
    names = ["t0", "t1", "t2", "t3"]
    return make_catalog(
        [(name, 500 + 100 * i) for i, name in enumerate(names)]
    )


def corrupt_cached_certificate(service):
    """Double the claimed cost inside every cached certificate."""
    touched = 0
    for digest, entry in list(service.cache._entries.items()):
        if entry.certificate is None:
            continue
        cost = entry.certificate.claimed_cost
        bad = dataclasses.replace(entry.certificate, claimed_cost=cost + cost)
        service.cache._entries[digest] = dataclasses.replace(
            entry, certificate=bad
        )
        touched += 1
    return touched


def test_fresh_answers_are_verified(catalog):
    service = make_service(catalog)
    served = service.optimize(chain_query(["t0", "t1", "t2"]))
    assert not served.cached
    assert served.certificate is not None
    assert served.verified
    assert service.stats.verify_violations == 0


def test_hits_are_reverified(catalog):
    service = make_service(catalog)
    query = chain_query(["t0", "t1", "t2"])
    service.optimize(query)
    served = service.optimize(query)
    assert served.cached
    assert served.verified
    assert service.stats.verified_hits == 1
    assert service.stats.quarantined == 0


def test_verification_off_by_default(catalog):
    optimizer = VolcanoOptimizer(
        SPEC, catalog, SearchOptions(check_consistency=False)
    )
    service = OptimizerService(optimizer)
    query = chain_query(["t0", "t1"])
    assert not service.optimize(query).verified
    assert not service.optimize(query).verified
    assert service.stats.verified_hits == 0


def test_corrupted_entry_is_quarantined_and_reoptimized(catalog):
    service = make_service(catalog)
    query = chain_query(["t0", "t1", "t2"])
    first = service.optimize(query)
    assert corrupt_cached_certificate(service) == 1

    served = service.optimize(query)
    # Not the tainted entry: the hit failed verification, the entry was
    # dropped, and the query was transparently re-optimized.
    assert not served.cached
    assert served.verified
    assert served.plan.to_sexpr() == first.plan.to_sexpr()
    assert service.stats.verify_violations == 1
    assert service.stats.quarantined == 1

    # The re-optimization re-cached a clean entry.
    again = service.optimize(query)
    assert again.cached
    assert again.verified
    assert service.stats.quarantined == 1


def test_quarantine_also_drops_the_template_sibling(catalog):
    # The parameterized template entry was stored by the same engine run
    # as the quarantined exact entry; serving it unverified would dodge
    # the quarantine.  It must fall with the exact entry.
    service = make_service(catalog, parameterized=True)
    query = chain_query(["t0", "t1", "t2"])
    service.optimize(query)
    entries_before = len(service.cache._entries)
    corrupt_cached_certificate(service)

    served = service.optimize(query)
    assert not served.cached
    assert not served.parameterized
    assert served.verified
    # Both the exact entry and its template sibling were purged before
    # the re-optimization stored fresh ones.
    assert service.stats.quarantined == 1
    assert len(service.cache._entries) == entries_before


def test_batch_sharing_is_certified_end_to_end():
    workload = QueryGenerator(
        WorkloadOptions(selectivity_range=(0.1, 0.1))
    ).generate_shared(count=8, seed=7, n_tables=5, relations=(2, 4))
    service = make_service(workload.catalog, parameterized=False)
    queries = [item.query for item in workload.queries]
    required = workload.queries[0].required

    batch = service.optimize_many(queries, required)
    assert all(r.verified for r in batch.results)
    assert batch.cache_stats.verify_violations == 0
    report = batch.sharing_report
    assert report is not None and report.shared_plans
    assert len(batch.consumer_certificates) == len(report.plans)
    assert all(c is not None for c in batch.consumer_certificates)
    assert len(batch.producer_certificates) == len(report.shared_plans)
    assert all(c is not None for c in batch.producer_certificates)


def test_failing_sharing_pass_is_discarded(monkeypatch):
    # Force every verification to fail: individual answers are still
    # served (and counted), but no unverified shared plan escapes — the
    # sharing report degenerates to the original per-query plans.
    import repro.verify as verify_module

    workload = QueryGenerator(
        WorkloadOptions(selectivity_range=(0.1, 0.1))
    ).generate_shared(count=8, seed=7, n_tables=5, relations=(2, 4))
    service = make_service(workload.catalog, parameterized=False)
    queries = [item.query for item in workload.queries]
    required = workload.queries[0].required

    class _Failing:
        ok = False
        diagnostics = ()

        def render(self):
            return "forced failure"

    monkeypatch.setattr(
        verify_module, "verify_plan", lambda *a, **k: _Failing()
    )
    batch = service.optimize_many(queries, required)
    assert len(batch.results) == len(queries)
    assert not any(r.verified for r in batch.results)
    assert not batch.shared_plans
    assert batch.consumer_certificates == ()
    assert batch.producer_certificates == ()
    assert batch.cache_stats.quarantined >= 1


def test_stats_counters_round_trip_as_dict(catalog):
    service = make_service(catalog)
    query = chain_query(["t0", "t1"])
    service.optimize(query)
    service.optimize(query)
    snapshot = service.stats.as_dict()
    assert snapshot["verified_hits"] == 1
    assert snapshot["verify_violations"] == 0
    assert snapshot["quarantined"] == 0
