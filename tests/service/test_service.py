"""The cache correctness suite for :class:`OptimizerService`.

The load-bearing property: a warm cache must answer with plans and
costs identical to a cold optimizer — over a real generated workload,
under invalidation, and within the LRU bound.
"""

import pytest

from repro.algebra.predicates import Comparison, ComparisonOp, col, eq, lit
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import OptionsError
from repro.models.relational import get, join, relational_model, select
from repro.search import VolcanoOptimizer
from repro.service import OptimizerService, ServiceOptions
from repro.workloads import QueryGenerator

from tests.helpers import make_catalog

SPEC = relational_model()


def le(column, value):
    return Comparison(ComparisonOp.LE, col(column), lit(value))


def query_with_threshold(value):
    return join(select(get("r"), le("r.v", value)), get("s"), eq("r.k", "s.k"))


def make_service(catalog, **options):
    optimizer = VolcanoOptimizer(SPEC, catalog)
    return OptimizerService(optimizer, options=ServiceOptions(**options))


@pytest.fixture(scope="module")
def workload():
    # 50 queries over one shared 8-table database (the paper's 2-8
    # relation range, capped at 6 to keep the suite fast).
    return QueryGenerator().generate_shared(
        count=50, seed=11, n_tables=8, relations=(2, 6)
    )


def test_warm_answers_identical_to_cold_over_workload(workload):
    """Warm-cache results are plan- and cost-identical on 50 queries."""
    service = make_service(workload.catalog)
    cold = [service.optimize(q.query, q.required) for q in workload]
    warm = [service.optimize(q.query, q.required) for q in workload]
    assert len(cold) == 50
    for before, after in zip(cold, warm):
        assert after.cached
        assert after.plan == before.plan
        assert after.cost == before.cost
        assert after.required == before.required
    assert service.stats.hits == 50


def test_cold_results_are_engine_results(workload):
    service = make_service(workload.catalog)
    query = workload.queries[0]
    served = service.optimize(query.query, query.required)
    assert not served.cached
    assert served.result is not None
    assert served.plan is served.result.plan
    reference = VolcanoOptimizer(SPEC, workload.catalog).optimize(
        query.query, query.required
    )
    assert served.plan == reference.plan
    assert served.cost == reference.cost


def test_parameterized_hit_rebinds_literals():
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    service = make_service(catalog)
    first = service.optimize(query_with_threshold(10))
    # Same structure, different literal, same selectivity bucket
    # (r.v spans 0..19, so 10 and 11 both cut it near the middle).
    second = service.optimize(query_with_threshold(11))
    assert not first.cached
    assert second.cached and second.parameterized
    # The served plan carries *this* query's literal, not the cached one.
    rendered = second.plan.to_sexpr()
    assert "11" in rendered and "?p" not in rendered
    cold = VolcanoOptimizer(SPEC, catalog).optimize(query_with_threshold(11))
    assert second.plan.to_sexpr() == cold.plan.to_sexpr()
    assert service.stats.parameterized_hits == 1


def test_equality_literals_share_one_entry():
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    service = make_service(catalog)
    for value in (1, 2, 3):
        query = join(
            select(get("r"), eq("r.v", value)), get("s"), eq("r.k", "s.k")
        )
        service.optimize(query)
    # First query misses; the other two hit the shared template.
    assert service.stats.parameterized_hits == 2


def test_parameterized_caching_can_be_disabled():
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    service = make_service(catalog, parameterized=False)
    service.optimize(query_with_threshold(5))
    second = service.optimize(query_with_threshold(6))
    assert not second.cached
    assert service.stats.parameterized_hits == 0


def test_stats_mutation_invalidates_exactly_affected_entries(workload):
    service = make_service(workload.catalog, parameterized=False)
    for query in workload:
        service.optimize(query.query, query.required)
    size_before = len(service)
    victim = workload.queries[0].table_names[0]
    affected = sum(
        1
        for entry in service.cache.entries()
        if victim in entry.fingerprint.tables
    )
    assert affected > 0
    workload.catalog.update_statistics(
        victim, workload.catalog.table(victim).statistics
    )
    # The sweep is lazy: the next call triggers it.
    probe = workload.queries[0]
    result = service.optimize(probe.query, probe.required)
    assert not result.cached  # its entry read the mutated table
    assert service.stats.invalidations == affected
    assert len(service) == size_before - affected + 1


def test_queries_over_unchanged_tables_stay_cached(workload):
    service = make_service(workload.catalog, parameterized=False)
    for query in workload:
        service.optimize(query.query, query.required)
    victim = workload.queries[0].table_names[0]
    unaffected = next(
        q for q in workload if victim not in q.table_names
    )
    workload.catalog.update_statistics(
        victim, workload.catalog.table(victim).statistics
    )
    assert service.optimize(unaffected.query, unaffected.required).cached


def test_lru_bound_is_respected(workload):
    service = make_service(workload.catalog, max_entries=5, parameterized=False)
    for query in workload:
        service.optimize(query.query, query.required)
    assert len(service) <= 5
    assert service.stats.evictions >= len(workload) - 5


def test_reuse_subplans_preserves_costs():
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    chain = join(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        get("t"),
        eq("s.k", "t.k"),
    )
    prefix = join(get("r"), get("s"), eq("r.k", "s.k"))
    cold_chain = VolcanoOptimizer(SPEC, catalog).optimize(chain)
    cold_prefix = VolcanoOptimizer(SPEC, catalog).optimize(prefix)
    service = make_service(catalog, reuse_subplans=True)
    service.optimize(prefix)
    assert len(service.subplans) > 0
    seeded = service.optimize(chain)
    assert seeded.cost == cold_chain.cost
    assert service.optimize(prefix).cached
    assert service.optimize(prefix).cost == cold_prefix.cost


def test_seeding_reports_planted_seeds():
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    service = make_service(catalog, reuse_subplans=True)
    prefix = join(get("r"), get("s"), eq("r.k", "s.k"))
    chain = join(prefix, get("t"), eq("s.k", "t.k"))
    service.optimize(prefix)
    seeded = service.optimize(chain)
    assert seeded.result.stats.seeds_planted > 0


def test_subplan_library_invalidated_by_stats_mutation():
    from repro.service import table_dependencies

    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    service = make_service(catalog, reuse_subplans=True)
    prefix = join(get("r"), get("s"), eq("r.k", "s.k"))
    service.optimize(prefix)
    catalog.update_statistics("r", catalog.table("r").statistics)
    chain = join(prefix, get("t"), eq("s.k", "t.k"))
    # Seeds touching the mutated table are dropped; seeds over the
    # untouched table survive and stay plantable.
    seeds = service.subplans.seeds_for(chain, catalog)
    assert all(
        "r" not in table_dependencies(seed.expression, catalog)
        for seed in seeds
    )
    cold = VolcanoOptimizer(SPEC, catalog).optimize(chain)
    assert service.optimize(chain).cost == cold.cost


def test_explicit_invalidation():
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    service = make_service(catalog)
    service.optimize(query_with_threshold(5))
    assert len(service) == 2  # the exact entry and the template
    assert service.invalidate("r") == 2
    assert len(service) == 0
    service.optimize(query_with_threshold(5))
    service.clear()
    assert len(service) == 0


def test_optimize_sql_round_trip():
    from repro.executor import TableSpec, populate_catalog
    from repro.generator import generate_optimizer
    from repro.models.aggregates import aggregate_model

    catalog = make_catalog([])
    populate_catalog(
        catalog,
        (
            TableSpec("emp", rows=2400, key_distinct=240, value_distinct=50),
            TableSpec("dept", rows=1200, key_distinct=240, value_distinct=20),
        ),
        seed=7,
    )
    optimizer = generate_optimizer(aggregate_model(), catalog)
    service = OptimizerService(optimizer)
    text = "select emp.k from emp, dept where emp.k = dept.k and emp.v <= 25"
    first = service.optimize_sql(text)
    second = service.optimize_sql(text)
    assert not first.cached and second.cached
    assert second.plan == first.plan
    assert second.cost == first.cost


def test_service_options_validate():
    with pytest.raises(OptionsError):
        ServiceOptions(max_entries=-1)
    with pytest.raises(OptionsError):
        ServiceOptions(max_seeds_per_query=0)
