"""Tests for the version-aware LRU plan cache."""

import pytest

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import ANY_PROPS
from repro.errors import ServiceError
from repro.models.relational import get
from repro.service import CacheEntry, PlanCache, fingerprint

from tests.helpers import make_catalog


def entry_for(catalog, name, parameterized=False):
    key = fingerprint(get(name), ANY_PROPS, catalog)
    plan = PhysicalPlan("file_scan", (name, name))
    return CacheEntry(
        fingerprint=key,
        plan=plan,
        cost=1.0,
        required=ANY_PROPS,
        parameterized=parameterized,
    )


@pytest.fixture
def catalog():
    return make_catalog([(f"t{i}", 100) for i in range(8)])


def test_get_put_roundtrip(catalog):
    cache = PlanCache(max_entries=4)
    entry = entry_for(catalog, "t0")
    assert cache.get(entry.fingerprint) is None
    cache.put(entry)
    assert cache.get(entry.fingerprint) is entry
    assert cache.stats.lookups == 2
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_respects_bound(catalog):
    cache = PlanCache(max_entries=3)
    entries = [entry_for(catalog, f"t{i}") for i in range(5)]
    for entry in entries:
        cache.put(entry)
    assert len(cache) == 3
    assert cache.stats.evictions == 2
    # The two oldest were evicted; the three newest remain.
    assert cache.get(entries[0].fingerprint) is None
    assert cache.get(entries[1].fingerprint) is None
    assert cache.get(entries[4].fingerprint) is entries[4]


def test_hits_refresh_recency(catalog):
    cache = PlanCache(max_entries=2)
    first, second, third = (entry_for(catalog, f"t{i}") for i in range(3))
    cache.put(first)
    cache.put(second)
    cache.get(first.fingerprint)  # first is now the most recent
    cache.put(third)
    assert cache.get(second.fingerprint) is None
    assert cache.get(first.fingerprint) is first


def test_parameterized_hits_counted_separately(catalog):
    cache = PlanCache(max_entries=4)
    entry = entry_for(catalog, "t0", parameterized=True)
    cache.put(entry)
    cache.get(entry.fingerprint)
    assert cache.stats.parameterized_hits == 1
    assert cache.stats.hits == 0


def test_purge_stale_drops_exactly_affected_entries(catalog):
    cache = PlanCache(max_entries=8)
    entries = {name: entry_for(catalog, name) for name in ("t0", "t1", "t2")}
    for entry in entries.values():
        cache.put(entry)
    catalog.update_statistics("t1", catalog.table("t1").statistics)
    dropped = cache.purge_stale(catalog)
    assert dropped == 1
    assert cache.stats.invalidations == 1
    assert cache.get(entries["t1"].fingerprint) is None
    assert cache.get(entries["t0"].fingerprint) is entries["t0"]
    assert cache.get(entries["t2"].fingerprint) is entries["t2"]


def test_purge_stale_drops_entries_of_dropped_tables(catalog):
    cache = PlanCache(max_entries=8)
    entry = entry_for(catalog, "t3")
    cache.put(entry)
    catalog.drop_table("t3")
    assert cache.purge_stale(catalog) == 1
    assert len(cache) == 0


def test_invalidate_table(catalog):
    cache = PlanCache(max_entries=8)
    for name in ("t0", "t1"):
        cache.put(entry_for(catalog, name))
    assert cache.invalidate_table("t0") == 1
    assert len(cache) == 1


def test_bound_must_be_positive():
    with pytest.raises(ServiceError):
        PlanCache(max_entries=0)


def test_hit_rate(catalog):
    cache = PlanCache(max_entries=4)
    entry = entry_for(catalog, "t0")
    cache.put(entry)
    cache.get(entry.fingerprint)
    cache.get(entry_for(catalog, "t1").fingerprint)
    assert cache.stats.hit_rate == pytest.approx(0.5)
    assert cache.stats.as_dict()["hits"] == 1


# ------------------------------------------------- CacheStats threading


def test_stats_bump_is_exact_under_contention():
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import CacheStats

    stats = CacheStats()
    threads, per_thread = 8, 2_000

    def hammer():
        for _ in range(per_thread):
            stats.bump(lookups=1, hits=1, hit_seconds=0.001)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        for future in [pool.submit(hammer) for _ in range(threads)]:
            future.result()

    assert stats.lookups == threads * per_thread
    assert stats.hits == threads * per_thread
    assert stats.hit_seconds == pytest.approx(threads * per_thread * 0.001)


def test_stats_snapshot_is_frozen():
    from repro.service import CacheStats

    stats = CacheStats()
    stats.bump(lookups=2, hits=1)
    frozen = stats.snapshot()
    assert frozen.frozen and not stats.frozen
    with pytest.raises(ServiceError):
        frozen.bump(lookups=1)
    # The live object keeps counting; the snapshot does not move.
    stats.bump(lookups=1)
    assert stats.lookups == 3
    assert frozen.lookups == 2


def test_stats_snapshot_never_tears():
    """Paired counters bumped atomically stay paired in every snapshot."""
    import threading as _threading

    from repro.service import CacheStats

    stats = CacheStats()
    stop = _threading.Event()

    def writer():
        while not stop.is_set():
            stats.bump(lookups=1, misses=1)

    thread = _threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(300):
            view = stats.snapshot()
            assert view.lookups == view.misses
    finally:
        stop.set()
        thread.join()
