"""Multi-query optimization: shared memo, sharing pass, batch API.

Covers the MQO stack end to end: the engine's ``optimize_batch`` over
one shared memo, the greedy sharing pass (materialized common
subplans), the service's :class:`BatchResult` API (prepared queries,
fingerprint-keyed batch dedup, budget degradation), execution through
materialized intermediates, and the golden guarantee that sharing never
changes any individual query's served plan.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.predicates import eq
from repro.catalog import Catalog
from repro.errors import ExecutionError
from repro.executor import TableSpec, execute_plan, populate_catalog
from repro.lint import MemoAuditor
from repro.models.relational import get, join, relational_model, select
from repro.options import ResourceBudget
from repro.search import (
    SearchOptions,
    SharingOptions,
    TaskBasedOptimizer,
    VolcanoOptimizer,
    plan_sharing,
)
from repro.service import BatchResult, OptimizerService, PreparedQuery, ServiceOptions
from repro.workloads import QueryGenerator, WorkloadOptions

SPEC = relational_model()

#: Every query selects at the same threshold, so filtered subtrees of
#: queries touching the same tables collide structurally in the shared
#: memo — the regime multi-query sharing is built for.
PINNED_SELECTIVITY = WorkloadOptions(selectivity_range=(0.1, 0.1))


def make_catalog():
    """Asymmetric tables: the filtered r⋈s is optimal — and shared —
    in both three-way queries built on top of it."""
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 1000, key_distinct=10),
            TableSpec("s", 800, key_distinct=10),
            TableSpec("t", 200, key_distinct=10),
            TableSpec("u", 250, key_distinct=10),
        ],
        seed=7,
    )
    return catalog


def overlapping_queries():
    """Two queries sharing an expensive, small-output join subplan."""
    shared = join(
        select(get("r"), eq("r.v", 1)),
        select(get("s"), eq("s.v", 2)),
        eq("r.k", "s.k"),
    )
    q1 = join(shared, get("t"), eq("s.k", "t.k"))
    q2 = join(shared, get("u"), eq("s.k", "u.k"))
    return q1, q2


def make_optimizer(catalog, engine_cls=VolcanoOptimizer):
    return engine_cls(SPEC, catalog, SearchOptions(check_consistency=False))


def make_service(catalog, **options):
    return OptimizerService(
        make_optimizer(catalog),
        options=ServiceOptions(parameterized=False, **options),
    )


def reference_evaluate(query, catalog):
    """Naive logical-algebra semantics, independent of the executor."""
    if query.operator == "get":
        table, alias = query.args
        return [dict(row) for row in catalog.table(table).rows]
    if query.operator == "select":
        (predicate,) = query.args
        return [
            row
            for row in reference_evaluate(query.inputs[0], catalog)
            if predicate.evaluate(row)
        ]
    if query.operator == "join":
        (predicate,) = query.args
        left = reference_evaluate(query.inputs[0], catalog)
        right = reference_evaluate(query.inputs[1], catalog)
        return [
            {**l, **r}
            for l in left
            for r in right
            if predicate.evaluate({**l, **r})
        ]
    raise AssertionError(f"unhandled operator {query.operator}")


def canonical(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


# -- sharing pass ------------------------------------------------------------


def test_batch_reports_materialized_shared_subplan():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    batch = make_service(catalog).optimize_many([q1, q2])
    assert isinstance(batch, BatchResult)
    report = batch.sharing_report
    assert report is not None
    assert len(batch.shared_plans) == 1
    shared = batch.shared_plans[0]
    assert shared.plan.algorithm == "materialize"
    assert shared.consumers == 2
    assert report.shared_total < report.independent_total
    assert report.savings > 0
    # The rewritten consumer plans read the materialized intermediate.
    for rewritten in report.plans:
        assert rewritten.count_algorithm("scan_intermediate") == 1
    # The served per-query answers are the unshared optima, untouched.
    for served in batch.results:
        assert served.plan.count_algorithm("scan_intermediate") == 0
        assert not served.cached


def test_generate_shared_batch_of_eight_improves_total_cost():
    workload = QueryGenerator(PINNED_SELECTIVITY).generate_shared(
        count=8, seed=7, n_tables=5, relations=(2, 4)
    )
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required
    batch = make_service(workload.catalog).optimize_many(queries, required)
    report = batch.sharing_report
    assert report is not None
    assert report.materialized >= 1
    assert report.shared_total < report.independent_total
    independent = sum(r.cost.total() for r in batch.results)
    assert report.independent_total == pytest.approx(independent)


@given(seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=10, deadline=None)
def test_shared_total_never_exceeds_independent_total(seed):
    workload = QueryGenerator(PINNED_SELECTIVITY).generate_shared(
        count=4, seed=seed, n_tables=4, relations=(2, 3)
    )
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required
    optimizer = make_optimizer(workload.catalog)
    results = optimizer.optimize_batch(queries, required)
    report = plan_sharing(results, SPEC, workload.catalog, SharingOptions())
    assert len(report.plans) == len(queries)
    assert report.shared_total <= report.independent_total + 1e-6
    assert report.materialized <= SharingOptions().max_materializations


def test_sharing_respects_max_materializations():
    workload = QueryGenerator(PINNED_SELECTIVITY).generate_shared(
        count=8, seed=1, n_tables=5, relations=(2, 4)
    )
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required
    optimizer = make_optimizer(workload.catalog)
    results = optimizer.optimize_batch(queries, required)
    unbounded = plan_sharing(results, SPEC, workload.catalog, SharingOptions())
    assert unbounded.materialized >= 2
    capped = plan_sharing(
        results,
        SPEC,
        workload.catalog,
        SharingOptions(max_materializations=1),
    )
    assert capped.materialized == 1
    assert capped.shared_total <= capped.independent_total


def test_sharing_disabled_is_a_no_op():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    batch = make_service(
        catalog, sharing=SharingOptions(enabled=False)
    ).optimize_many([q1, q2])
    assert batch.sharing_report is None
    assert batch.shared_plans == ()
    assert all(not served.cached for served in batch.results)


def test_batch_memo_invariants_audit_clean():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    optimizer = make_optimizer(catalog)
    results = optimizer.optimize_batch([q1, q2])
    auditor = MemoAuditor(props_cover=SPEC.props_cover)
    assert auditor.audit_batch(results) == []
    assert results[0].memo is results[1].memo


# -- golden byte-identity: sharing never changes a single query's plan -------


def golden_workload():
    return QueryGenerator(PINNED_SELECTIVITY).generate_shared(
        count=42, seed=7, n_tables=6, relations=(2, 4)
    )


@pytest.mark.parametrize("engine_cls", [VolcanoOptimizer, TaskBasedOptimizer])
def test_single_query_plans_match_committed_golden(engine_cls):
    """42 queries x 2 engines: single-query answers are byte-identical
    to the committed golden snapshots — the MQO machinery being present
    (and sharing enabled by default) must not perturb them."""
    golden_path = Path(__file__).with_name("golden_plans.json")
    golden = json.loads(golden_path.read_text())[engine_cls.__name__]
    workload = golden_workload()
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required
    engine = make_optimizer(workload.catalog, engine_cls)
    assert len(golden) == len(queries) == 42
    for query, expected in zip(queries, golden):
        result = engine.optimize(query, required)
        assert result.plan.to_sexpr() == expected["plan"]
        assert result.cost.total() == pytest.approx(expected["cost"])


@pytest.mark.parametrize("engine_cls", [VolcanoOptimizer, TaskBasedOptimizer])
def test_batch_answers_cost_exactly_like_single_query_runs(engine_cls):
    """The shared-memo batch answers exactly like single-query runs —
    plans byte-identical for both engines.  Equal-cost ties are broken
    by the order-independent ``(cost, rank, alternative)`` winner rule,
    so pre-populating the memo with earlier queries cannot flip them."""
    workload = golden_workload()
    queries = [q.query for q in workload.queries]
    required = workload.queries[0].required
    batch_results = make_optimizer(workload.catalog, engine_cls).optimize_batch(
        queries, required
    )
    single_engine = make_optimizer(workload.catalog, engine_cls)
    for query, result in zip(queries, batch_results):
        reference = single_engine.optimize(query, required)
        assert result.cost.total() == pytest.approx(reference.cost.total())
        assert result.plan.to_sexpr() == reference.plan.to_sexpr()


# -- budget degradation ------------------------------------------------------


def test_budget_trip_degrades_batch_to_independent_plans():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    service = make_service(catalog)
    batch = service.optimize_many([q1, q2], deadline_seconds=4e-05)
    assert batch.degraded_to_independent
    assert batch.budget_report is not None
    assert batch.budget_report.tripped == "deadline"
    assert batch.sharing_report is None
    assert batch.shared_plans == ()
    # Every query is still answered — by its own anytime plan.
    assert all(served.plan is not None for served in batch.results)
    assert all(served.degraded for served in batch.results)
    assert len(service.cache) == 0  # degraded answers are never cached


def test_batch_budget_composes_with_default_budget():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    service = make_service(
        catalog, budget=ResourceBudget(max_costings=5)
    )
    batch = service.optimize_many([q1, q2])
    assert batch.degraded_to_independent
    assert batch.budget_report.tripped == "costings"


# -- execution through materialized intermediates ----------------------------


def test_executor_round_trip_through_materialized_intermediate():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    batch = make_service(catalog).optimize_many([q1, q2])
    report = batch.sharing_report
    assert report is not None and len(batch.shared_plans) == 1

    store: dict = {}
    for shared in batch.shared_plans:  # producers first, in order
        execute_plan(shared.plan, catalog, intermediates=store)
        assert shared.name in store
    for query, rewritten in zip([q1, q2], report.plans):
        rows = execute_plan(rewritten, catalog, intermediates=store)
        assert canonical(rows) == canonical(reference_evaluate(query, catalog))


def test_intermediate_scan_without_producer_raises():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    batch = make_service(catalog).optimize_many([q1, q2])
    rewritten = batch.sharing_report.plans[0]
    with pytest.raises(ExecutionError):
        execute_plan(rewritten, catalog, intermediates={})


# -- the redesigned batch API ------------------------------------------------


def test_batch_result_sequence_protocol_is_deprecated():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    batch = make_service(catalog).optimize_many([q1, q2])
    with pytest.warns(DeprecationWarning):
        assert len(batch) == 2
    with pytest.warns(DeprecationWarning):
        assert [served.plan for served in batch]
    with pytest.warns(DeprecationWarning):
        assert batch[0].plan is batch.results[0].plan
    # The replacement API warns nothing.
    assert len(batch.results) == 2


def test_batch_cache_stats_are_a_per_batch_delta():
    catalog = make_catalog()
    q1, q2 = overlapping_queries()
    service = make_service(catalog)
    cold = service.optimize_many([q1, q2])
    assert cold.cache_stats.misses == 2
    assert cold.cache_stats.hits == 0
    assert cold.cache_stats.engine_seconds > 0
    warm = service.optimize_many([q1, q2])
    assert warm.cache_stats.hits == 2
    assert warm.cache_stats.misses == 0
    assert warm.cache_stats.engine_seconds == 0.0
    assert all(served.cached for served in warm.results)


def test_prepare_returns_reusable_keys():
    catalog = make_catalog()
    q1, _ = overlapping_queries()
    service = make_service(catalog)
    prepared = service.prepare(q1)
    assert isinstance(prepared, PreparedQuery)
    assert prepared.statistics_version == catalog.statistics_version
    cold = service.optimize(prepared)
    assert not cold.cached
    warm = service.optimize(prepared)
    assert warm.cached
    assert str(warm.plan) == str(cold.plan)
    # The same prepared query interoperates with the plain-query path.
    assert service.optimize(q1).cached


def test_stale_prepared_query_is_rekeyed_not_mis_served():
    catalog = make_catalog()
    q1, _ = overlapping_queries()
    service = make_service(catalog)
    prepared = service.prepare(q1)
    service.optimize(prepared)
    entry = catalog.table("r")
    catalog.update_statistics("r", entry.statistics)  # bump the version
    assert prepared.statistics_version != catalog.statistics_version
    served = service.optimize(prepared)  # stale: silently re-keyed
    assert not served.cached
    assert str(served.plan) == str(service.optimize(q1).plan)


def test_optimize_accepts_sql_strings_uniformly():
    catalog = make_catalog()
    service = make_service(catalog)
    direct = service.optimize("select * from r where r.v = 1")
    again = service.optimize("select * from r where r.v = 1")
    assert not direct.cached and again.cached
    prepared = service.prepare("select * from s where s.v = 2")
    assert isinstance(prepared.expression, type(get("s")))
    batch = service.optimize_many(
        ["select * from t", prepared, get("u")]
    )
    assert len(batch.results) == 3
    assert all(served.plan is not None for served in batch.results)


def test_batch_dedup_keys_on_cache_fingerprint():
    """Same-bucket literal variants dispatch once under parameterized
    caching: the second query re-binds the first one's template."""
    catalog = make_catalog()
    service = OptimizerService(
        make_optimizer(catalog), options=ServiceOptions(parameterized=True)
    )
    engine_runs = []
    inner_optimize = service.optimizer.optimize

    def counting_optimize(*args, **kwargs):
        engine_runs.append(1)
        return inner_optimize(*args, **kwargs)

    service.optimizer.optimize = counting_optimize
    qa = select(get("r"), eq("r.v", 2))
    qb = select(get("r"), eq("r.v", 3))
    batch = service.optimize_many([qa, qb])
    assert len(engine_runs) == 1
    assert not batch.results[0].cached
    assert batch.results[1].cached and batch.results[1].parameterized
