"""The benchmark-regression harness: suite, comparison, tolerance bands."""

import json

import pytest

from repro.bench.regress import (
    RegressConfig,
    apply_inflation,
    compare,
    render_report,
    run_regress,
)

# The tiny suite optimizes 4-relation queries in ~5 ms, so the fixed
# per-plan verification cost looms much larger than on the real n=8
# workload the committed 10% cap governs; give it a proportionate cap.
SMALL = RegressConfig(
    sizes=(3, 4),
    queries_per_size=3,
    micro_repeats=3,
    batch_queries=4,
    verify_overhead_cap=0.75,
    # 4-relation searches finish in ~5 ms: kernel resolution and module
    # import are not amortized, so the paired speedup the committed
    # floor governs (n=8) is meaningless here — only parity is.
    kernel_speedup_floor=0.0,
)


@pytest.fixture(scope="module")
def results():
    return run_regress(SMALL)


def test_results_shape(results):
    assert results["schema"] == 1
    benches = results["benches"]
    assert set(benches) == {
        "figure4_n3",
        "figure4_n4",
        "memo_insert",
        "memo_merge",
        "binding_enum",
        "feedback_loop",
        "batch_throughput",
        "mqo_sharing",
        "promise_ordering",
        "verify_overhead",
        "kernel_speedup",
        "server_throughput",
    }
    server = benches["server_throughput"]
    assert server["cold_misses"] == 8
    assert server["cold_shared_waits"] == 7
    assert server["cold_insertions"] == 1
    assert server["queries_per_second"] > 0
    kernel = benches["kernel_speedup"]
    assert kernel["plans_identical"] == SMALL.queries_per_size
    assert kernel["costings_delta"] == 0
    assert kernel["rule_firing_delta"] == 0
    assert kernel["audit_violations"] == 0
    ordering = benches["promise_ordering"]
    assert ordering["learned_costings"] < ordering["static_costings"]
    assert ordering["rule_firing_delta"] == 0
    assert ordering["bound_seed_retries"] == 0
    assert ordering["min_promise_parity_delta"] == 0
    for metrics in benches.values():
        assert metrics["median_ms"] > 0
    for size in (3, 4):
        point = benches[f"figure4_n{size}"]
        assert point["p95_ms"] >= point["median_ms"]
        assert point["mean_groups"] > 0
        assert point["mean_expressions"] > 0
        assert point["audit_violations"] == 0
        assert 0.0 <= point["binding_hit_rate"] <= 1.0
    # The second binding sweep must be served by the derivation cache.
    assert benches["binding_enum"]["sweep_hit_rate"] > 0.9
    assert json.loads(json.dumps(results)) == results  # JSON-clean


def test_self_comparison_passes(results):
    assert compare(results, results, SMALL) == []
    report = render_report(results, [])
    assert "PASS" in report


def test_synthetic_slowdown_fails(results):
    """The acceptance demo: a 3x slowdown must break the band."""
    inflated = apply_inflation(results, 3.0)
    failures = compare(inflated, results, SMALL)
    assert failures  # every *_ms metric is beyond the +150% default band
    assert any("median_ms" in failure for failure in failures)
    assert any("queries_per_second" in failure for failure in failures)
    assert "FAIL" in render_report(inflated, failures)
    # A mild wobble, by contrast, stays inside the band.
    wobble = apply_inflation(results, 1.3)
    assert compare(wobble, results, SMALL) == []


def test_count_drift_fails_tightly(results):
    """Deterministic metrics get a tight band: 10% drift is a failure."""
    drifted = json.loads(json.dumps(results))
    drifted["benches"]["figure4_n3"]["mean_groups"] *= 1.10
    failures = compare(drifted, results, SMALL)
    assert any("mean_groups" in failure for failure in failures)


def test_hit_rate_only_fails_downward(results):
    shifted = json.loads(json.dumps(results))
    shifted["benches"]["binding_enum"]["sweep_hit_rate"] = 0.0
    assert any(
        "sweep_hit_rate" in failure
        for failure in compare(shifted, results, SMALL)
    )
    improved = json.loads(json.dumps(results))
    improved["benches"]["binding_enum"]["sweep_hit_rate"] = 1.0
    assert compare(improved, results, SMALL) == []


def test_missing_bench_or_metric_fails(results):
    partial = json.loads(json.dumps(results))
    del partial["benches"]["memo_merge"]
    del partial["benches"]["memo_insert"]["groups"]
    failures = compare(partial, results, SMALL)
    assert any("memo_merge" in failure for failure in failures)
    assert any("memo_insert.groups" in failure for failure in failures)


def test_audit_violations_fail(results):
    violated = json.loads(json.dumps(results))
    violated["benches"]["figure4_n3"]["audit_violations"] = 1
    assert any(
        "audit_violations" in failure
        for failure in compare(violated, results, SMALL)
    )


def test_feedback_loop_closes(results):
    """The new point: drift detected, one refresh, fresh beats stale."""
    point = results["benches"]["feedback_loop"]
    assert point["drift_q_error"] > 2.0
    assert point["refreshes"] == 1.0
    assert point["fresh_work"] < point["stale_work"]
    assert point["qerr_over_2"] >= 1.0


def test_feedback_counters_in_tight_band(results):
    """The loop's work counters are deterministic: 10% drift fails."""
    drifted = json.loads(json.dumps(results))
    drifted["benches"]["feedback_loop"]["fresh_work"] *= 1.10
    failures = compare(drifted, results, SMALL)
    assert any("fresh_work" in failure for failure in failures)


def test_verify_overhead_within_cap(results):
    """The certified pipeline's latency cost stays under the 10% cap."""
    point = results["benches"]["verify_overhead"]
    assert point["verified_ok"] == SMALL.queries_per_size
    assert point["verify_overhead"] <= SMALL.verify_overhead_cap


def test_verify_overhead_cap_is_enforced(results):
    blown = json.loads(json.dumps(results))
    blown["benches"]["verify_overhead"]["verify_overhead"] = 2.0
    failures = compare(blown, results, SMALL)
    assert any("overhead cap" in failure for failure in failures)


def test_failed_verification_breaks_the_band(results):
    broken = json.loads(json.dumps(results))
    broken["benches"]["verify_overhead"]["verified_ok"] = 0.0
    failures = compare(broken, results, SMALL)
    assert any("verified_ok" in failure for failure in failures)


def test_parallel_metrics_never_compared(results):
    noisy = json.loads(json.dumps(results))
    noisy["benches"]["batch_throughput"]["parallel_speedup"] = 0.01
    baseline = json.loads(json.dumps(results))
    baseline["benches"]["batch_throughput"]["parallel_speedup"] = 99.0
    assert compare(noisy, baseline, SMALL) == []
