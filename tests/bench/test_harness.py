"""Smoke tests for the benchmark harness (tiny configurations)."""

import pytest

from repro.bench.ablations import (
    run_bushy_ablation,
    run_executor_validation,
    run_failure_ablation,
    run_glue_ablation,
    run_promise_ablation,
    run_pruning_ablation,
    run_setops_orders,
    run_systemr_comparison,
)
from repro.bench.figure4 import Figure4Config, render_figure4, run_figure4
from repro.bench.reporting import Table, geometric_mean, render_log_chart
from repro.workloads import WorkloadOptions


def test_geometric_mean():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([5]) == pytest.approx(5.0)


def test_table_rendering():
    table = Table("Title", ["a", "bee"])
    table.add_row(1, 2.5)
    table.add_row("x", "—")
    table.add_note("a note")
    text = table.render()
    assert "Title" in text
    assert "bee" in text
    assert "note: a note" in text


def test_log_chart_handles_missing_points():
    chart = render_log_chart(
        "t", [2, 3, 4], [("s", "o", [1.0, None, 100.0])], width=20, height=5
    )
    assert "o" in chart
    assert "(no data)" not in chart


def test_log_chart_empty():
    assert "(no data)" in render_log_chart("t", [1], [("s", "o", [None])])


@pytest.fixture(scope="module")
def tiny_figure4():
    config = Figure4Config(sizes=(2, 3, 4), queries_per_size=3, seed=7)
    return run_figure4(config)


def test_figure4_runs_and_has_rows(tiny_figure4):
    assert [row.n_relations for row in tiny_figure4.rows] == [2, 3, 4]
    for row in tiny_figure4.rows:
        assert row.volcano_time > 0
        assert row.volcano_cost > 0


def test_figure4_shape_quality_equal_small(tiny_figure4):
    """Paper: plan quality is equal for moderately complex queries."""
    for row in tiny_figure4.rows:
        if row.quality_ratio is not None and row.n_relations <= 4:
            assert row.quality_ratio == pytest.approx(1.0, abs=0.15)


def test_figure4_mesh_exceeds_memo(tiny_figure4):
    for row in tiny_figure4.rows:
        if row.exodus_footprint is not None and row.n_relations >= 3:
            assert row.exodus_footprint > row.volcano_footprint


def test_figure4_rendering(tiny_figure4):
    text = render_figure4(tiny_figure4)
    assert "Figure 4" in text
    assert "volcano" in text
    assert "log scale" in text


def test_pruning_ablation_lossless():
    table = run_pruning_ablation(sizes=(3,), queries_per_size=2, seed=5)
    assert all(row[-1] == "yes" for row in table.rows)


def test_failure_ablation_lossless():
    table = run_failure_ablation(sizes=(3,), queries_per_size=2, seed=5)
    assert all(row[-1] == "yes" for row in table.rows)


def test_glue_ablation_penalty_at_least_one():
    table = run_glue_ablation(sizes=(4,), queries_per_size=3, seed=5)
    for row in table.rows:
        penalty = float(row[-1].rstrip("x"))
        assert penalty >= 0.999


def test_bushy_ablation_left_deep_never_cheaper():
    table = run_bushy_ablation(sizes=(4,), queries_per_size=3, seed=5)
    for row in table.rows:
        penalty = float(row[3].rstrip("x"))
        assert penalty >= 0.999


def test_systemr_comparison_agrees():
    table = run_systemr_comparison(sizes=(3,), queries_per_size=2, seed=5)
    assert all(row[-1] == "yes" for row in table.rows)


def test_setops_orders_alternatives_never_worse():
    table = run_setops_orders(row_counts=(2400,))
    for row in table.rows:
        saving = float(row[-1].rstrip("x"))
        assert saving >= 1.0


def test_promise_ablation_faster_but_never_better():
    table = run_promise_ablation(sizes=(4,), queries_per_size=3, seed=5)
    for row in table.rows:
        quality = float(row[6].rstrip("x"))
        assert quality >= 0.999
        # The learned-model variant runs exhaustive search, so its cost
        # column must equal the exhaustive one exactly.
        assert row[7] == row[4]


def test_executor_validation_rows_match():
    table = run_executor_validation(n_relations=2, queries=2, seed=3)
    for row in table.rows:
        ratio = float(row[3])
        assert 0.2 <= ratio <= 5.0


def test_cli_quick(capsys):
    from repro.bench.__main__ import main

    code = main(["figure4", "--queries", "1", "--sizes", "2-3"])
    assert code == 0
    captured = capsys.readouterr()
    assert "Figure 4" in captured.out


def test_figure4_csv_export(tiny_figure4):
    from repro.bench.figure4 import figure4_to_csv

    csv = figure4_to_csv(tiny_figure4)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("n_relations,")
    assert len(lines) == 1 + len(tiny_figure4.rows)
    # Every data line has the full column count.
    width = lines[0].count(",")
    assert all(line.count(",") == width for line in lines[1:])


def test_cli_csv_flag(tmp_path, capsys):
    from repro.bench.__main__ import main

    target = tmp_path / "fig4.csv"
    code = main(
        ["figure4", "--queries", "1", "--sizes", "2-2", "--csv", str(target)]
    )
    assert code == 0
    assert target.exists()
    assert target.read_text().startswith("n_relations")


def test_shape_complexity_star_exceeds_chain():
    from repro.bench.ablations import run_shape_complexity

    table = run_shape_complexity(sizes=(5,), queries_per_size=2, seed=3)
    for row in table.rows:
        ratio = float(row[-1].rstrip("x"))
        assert ratio > 1.0
