"""The README's code blocks must actually run (doc-rot guard)."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_blocks():
    assert len(python_blocks()) >= 2


def test_readme_quickstart_block_runs(capsys):
    blocks = python_blocks()
    namespace = {}
    # The blocks build on one another (the second uses `optimizer` and
    # `catalog` from the first), so execute them in sequence.
    for block in blocks:
        exec(compile(block, str(README), "exec"), namespace)
    assert "optimizer" in namespace
    out = capsys.readouterr().out
    assert out.strip(), "the quickstart should print a plan"


def test_docs_referenced_files_exist():
    text = README.read_text()
    for relative in re.findall(r"\]\((?!http)([^)#]+)\)", text):
        assert (README.parent / relative).exists(), f"README links to missing {relative}"
