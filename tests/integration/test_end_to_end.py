"""End-to-end: optimize with every engine, execute, compare results.

DESIGN.md invariant 1 (memo soundness): every plan the optimizers choose
computes the same bag of rows as a naive reference evaluation of the
logical query.
"""

import pytest

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import conjunction_of, eq
from repro.algebra.properties import sorted_on
from repro.catalog import Catalog
from repro.executor import TableSpec, execute_plan, populate_catalog
from repro.exodus import ExodusOptimizer
from repro.models.relational import get, join, relational_model, select
from repro.search import SearchOptions, VolcanoOptimizer
from repro.systemr import SystemROptimizer, SystemROptions


def reference_evaluate(query: LogicalExpression, catalog: Catalog):
    """Naive semantics of the logical algebra, independent of the executor."""
    if query.operator == "get":
        table, alias = query.args
        rows = catalog.table(table).rows
        if alias is not None:
            return [
                {f"{alias}.{k}": v for k, v in row.items()} for row in rows
            ]
        return [dict(row) for row in rows]
    if query.operator == "select":
        (predicate,) = query.args
        return [
            row
            for row in reference_evaluate(query.inputs[0], catalog)
            if predicate.evaluate(row)
        ]
    if query.operator == "join":
        (predicate,) = query.args
        left = reference_evaluate(query.inputs[0], catalog)
        right = reference_evaluate(query.inputs[1], catalog)
        return [
            {**l, **r} for l in left for r in right if predicate.evaluate({**l, **r})
        ]
    if query.operator == "project":
        (columns,) = query.args
        return [
            {name: row[name] for name in columns}
            for row in reference_evaluate(query.inputs[0], catalog)
        ]
    raise AssertionError(f"unhandled operator {query.operator}")


def canonical(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 300, key_distinct=20, value_distinct=5),
            TableSpec("s", 500, key_distinct=20, value_distinct=5),
            TableSpec("t", 400, key_distinct=20, value_distinct=5),
        ],
        seed=11,
    )
    return catalog


QUERIES = {
    "scan": lambda: get("r"),
    "selection": lambda: select(get("r"), eq("r.v", 2)),
    "two_way": lambda: join(get("r"), get("s"), eq("r.k", "s.k")),
    "three_way": lambda: join(
        join(
            select(get("r"), eq("r.v", 1)),
            select(get("s"), eq("s.v", 2)),
            eq("r.k", "s.k"),
        ),
        get("t"),
        eq("s.k", "t.k"),
    ),
    "multi_key": lambda: join(
        get("r"), get("s"), conjunction_of([eq("r.k", "s.k"), eq("r.v", "s.v")])
    ),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_volcano_plans_compute_reference_results(catalog, name):
    query = QUERIES[name]()
    expected = canonical(reference_evaluate(query, catalog))
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(query).plan
    assert canonical(execute_plan(plan, catalog)) == expected


@pytest.mark.parametrize("name", ["two_way", "three_way"])
def test_sorted_plans_compute_reference_results(catalog, name):
    query = QUERIES[name]()
    expected = canonical(reference_evaluate(query, catalog))
    result = VolcanoOptimizer(relational_model(), catalog).optimize(
        query, required=sorted_on("r.k")
    )
    rows = execute_plan(result.plan, catalog)
    assert canonical(rows) == expected
    keys = [row["r.k"] for row in rows]
    assert keys == sorted(keys)


@pytest.mark.parametrize("name", ["selection", "two_way", "three_way"])
def test_exodus_plans_compute_reference_results(catalog, name):
    query = QUERIES[name]()
    expected = canonical(reference_evaluate(query, catalog))
    plan = ExodusOptimizer(relational_model(), catalog).optimize(query).plan
    assert canonical(execute_plan(plan, catalog)) == expected


@pytest.mark.parametrize("name", ["two_way", "three_way"])
def test_systemr_plans_compute_reference_results(catalog, name):
    query = QUERIES[name]()
    expected = canonical(reference_evaluate(query, catalog))
    plan = SystemROptimizer(
        relational_model(), catalog, SystemROptions(bushy=True)
    ).optimize(query).plan
    assert canonical(execute_plan(plan, catalog)) == expected


def test_every_memo_plan_is_sound(catalog):
    """Extract several distinct plans from the memo; all must agree.

    Exercises equivalence-class soundness beyond the single winner: the
    same goal optimized with and without pruning, under different
    property requirements, yields plans with identical results.
    """
    query = QUERIES["three_way"]()
    expected = canonical(reference_evaluate(query, catalog))
    variants = [
        VolcanoOptimizer(relational_model(), catalog).optimize(query).plan,
        VolcanoOptimizer(
            relational_model(),
            catalog,
            SearchOptions(branch_and_bound=False, cache_failures=False),
        )
        .optimize(query)
        .plan,
        VolcanoOptimizer(relational_model(), catalog)
        .optimize(query, required=sorted_on("t.k"))
        .plan,
        VolcanoOptimizer(relational_model(), catalog)
        .optimize(query, required=sorted_on("s.k"))
        .plan,
    ]
    for plan in variants:
        assert canonical(execute_plan(plan, catalog)) == expected


def test_estimated_cardinality_tracks_actual(catalog):
    """Invariant 8: estimates within a reasonable factor of actuals."""
    from repro.model.context import OptimizerContext

    query = QUERIES["two_way"]()
    context = OptimizerContext(relational_model(), catalog)
    estimated = context.logical_props(query).cardinality
    actual = len(reference_evaluate(query, catalog))
    assert actual > 0
    assert 0.3 <= estimated / actual <= 3.0
