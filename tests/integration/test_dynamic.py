"""Tests for dynamic plans (incompletely specified queries)."""

import pytest

from repro.algebra.predicates import Comparison, ComparisonOp, col, eq
from repro.algebra.properties import sorted_on
from repro.catalog import Catalog
from repro.dynamic import (
    AssumedSelectivityEstimator,
    Parameter,
    bind_plan,
    bind_predicate,
    optimize_dynamic,
)
from repro.errors import PredicateError, ReproError
from repro.executor import TableSpec, populate_catalog
from repro.models.relational import get, join, relational_model, select


def param_filter(table, parameter="p"):
    """``table.v <= ?p`` — selectivity unknown until bind time."""
    return Comparison(ComparisonOp.LE, col(f"{table}.v"), Parameter(parameter))


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 4800, key_distinct=100, value_distinct=1000),
            TableSpec("s", 4800, key_distinct=100, value_distinct=1000),
        ],
        seed=23,
    )
    return catalog


@pytest.fixture(scope="module")
def spec():
    return relational_model()


def test_parameter_cannot_evaluate_unbound():
    with pytest.raises(PredicateError):
        param_filter("r").evaluate({"r.v": 1})


def test_bind_predicate_substitutes():
    bound = bind_predicate(param_filter("r"), {"p": 42})
    assert bound.evaluate({"r.v": 10})
    assert not bound.evaluate({"r.v": 100})


def test_bind_predicate_missing_value():
    with pytest.raises(PredicateError):
        bind_predicate(param_filter("r"), {})


def test_assumed_estimator_overrides_parameterized_predicates():
    estimator = AssumedSelectivityEstimator(0.07)
    assert estimator.estimate(param_filter("r"), {}) == pytest.approx(0.07)
    # Ordinary predicates still estimate normally.
    assert estimator.estimate(eq("x", 1), {}) == pytest.approx(0.1)


def test_optimize_dynamic_requires_parameters(spec, catalog):
    with pytest.raises(ReproError):
        optimize_dynamic(spec, catalog, select(get("r"), eq("r.v", 1)))


def test_dynamic_plan_structure(spec, catalog):
    query = join(
        select(get("r"), param_filter("r")), get("s"), eq("r.k", "s.k")
    )
    dynamic = optimize_dynamic(spec, catalog, query)
    assert dynamic.parameters == ("p",)
    assert 1 <= len(dynamic.alternatives) <= 5
    # Every bucket is owned by exactly one alternative.
    buckets = sorted(
        value for alt in dynamic.alternatives for value in alt.assumed
    )
    assert buckets == sorted([0.001, 0.01, 0.1, 0.5, 1.0])
    assert "dynamic plan" in dynamic.describe()


def test_dynamic_plan_picks_by_bound_selectivity(spec, catalog):
    query = join(
        select(get("r"), param_filter("r")), get("s"), eq("r.k", "s.k")
    )
    dynamic = optimize_dynamic(spec, catalog, query)
    # v ranges over 0..999: tiny threshold → selective, huge → keep all.
    selective_plan, selective = dynamic.pick(catalog, {"p": 1})
    permissive_plan, permissive = dynamic.pick(catalog, {"p": 999})
    assert selective < 0.05
    assert permissive > 0.9
    # Plans are fully bound: no Parameter remains anywhere.
    for plan in (selective_plan, permissive_plan):
        for node in plan.walk():
            assert "?" not in " ".join(str(arg) for arg in node.args)


def test_dynamic_plan_executes_correctly(spec, catalog):
    query = join(
        select(get("r"), param_filter("r")), get("s"), eq("r.k", "s.k")
    )
    dynamic = optimize_dynamic(spec, catalog, query)
    for threshold in (5, 500, 999):
        rows = dynamic.execute(catalog, {"p": threshold})
        reference = [
            (a, b)
            for a in catalog.table("r").rows
            if a["r.v"] <= threshold
            for b in catalog.table("s").rows
            if a["r.k"] == b["s.k"]
        ]
        assert len(rows) == len(reference)
        assert all(row["r.v"] <= threshold for row in rows)


def test_dynamic_plan_with_required_props(spec, catalog):
    query = join(
        select(get("r"), param_filter("r")), get("s"), eq("r.k", "s.k")
    )
    required = sorted_on("r.k")
    dynamic = optimize_dynamic(spec, catalog, query, required=required)
    plan, _ = dynamic.pick(catalog, {"p": 100})
    assert plan.properties.covers(required)
    rows = dynamic.execute(catalog, {"p": 100})
    keys = [row["r.k"] for row in rows]
    assert keys == sorted(keys)


def test_structurally_identical_winners_are_merged(spec, catalog):
    """With one tiny table, all buckets usually share one plan shape."""
    small = Catalog()
    populate_catalog(small, [TableSpec("t", 100, key_distinct=10)], seed=3)
    dynamic = optimize_dynamic(
        spec, small, select(get("t"), param_filter("t"))
    )
    assert len(dynamic.alternatives) == 1
    assert len(dynamic.alternatives[0].assumed) == 5
