"""The paper's headline claims, asserted at reduced scale.

Each test quotes the claim it checks.  The full-scale numbers live in
EXPERIMENTS.md; these run in seconds so regressions in the *shape* of
the results fail CI, not just the benchmark report.
"""

import time

import pytest

from repro.bench.figure4 import Figure4Config, run_figure4
from repro.exodus import ExodusOptimizer, ExodusOptions
from repro.models.relational import relational_model
from repro.search import SearchOptions, VolcanoOptimizer
from repro.workloads import QueryGenerator, WorkloadOptions


@pytest.fixture(scope="module")
def figure4_small():
    return run_figure4(
        Figure4Config(sizes=(2, 3, 4, 5), queries_per_size=5, seed=1993)
    )


def test_volcano_growth_is_steep_and_monotone(figure4_small):
    """'The increase of Volcano's optimization costs is about exponential.'"""
    times = [row.volcano_time for row in figure4_small.rows]
    assert times == sorted(times)
    assert times[-1] / times[0] > 5


def test_exodus_knee_at_four_relations(figure4_small):
    """'the search effort increases dramatically from 3 to 4 input
    relations' (for EXODUS) — its time ratio versus Volcano crosses 1
    between 3 and 4 relations."""
    by_size = {row.n_relations: row for row in figure4_small.rows}
    small = by_size[3]
    large = by_size[4]
    assert small.exodus_time is not None and large.exodus_time is not None
    ratio_small = small.exodus_time / small.volcano_time
    ratio_large = large.exodus_time / large.volcano_time
    assert ratio_large > ratio_small
    assert ratio_large > 1.5


def test_order_of_magnitude_gap_at_five(figure4_small):
    """'For more complex queries, the EXODUS' and Volcano's optimization
    times differ by about an order of magnitude.'"""
    row = {r.n_relations: r for r in figure4_small.rows}[5]
    assert row.exodus_time is None or row.exodus_time / row.volcano_time > 5


def test_plan_quality_equal_up_to_four(figure4_small):
    """'The plan quality … is equal for moderately complex queries (up
    to 4 input relations).'"""
    for row in figure4_small.rows:
        if row.n_relations <= 4 and row.quality_ratio is not None:
            assert row.quality_ratio == pytest.approx(1.0, abs=0.1)


def test_quality_gap_with_property_goals():
    """'the cost is significantly higher for EXODUS-optimized plans,
    because [its] search engine do[es] not systematically explore and
    exploit physical properties and interesting orderings.'"""
    result = run_figure4(
        Figure4Config(
            sizes=(5,),
            queries_per_size=5,
            seed=1993,
            workload=WorkloadOptions(
                order_by_probability=1.0,
                selectivity_range=(0.5, 1.0),
                key_fraction_range=(0.2, 0.6),
            ),
        )
    )
    (row,) = result.rows
    assert row.quality_ratio is not None
    assert row.quality_ratio > 1.1


def test_mesh_larger_than_memo(figure4_small):
    """'the logical expression … had to be kept twice, resulting in a
    large number of nodes in MESH' vs. Volcano's modest work space."""
    for row in figure4_small.rows:
        if row.exodus_footprint is not None and row.n_relations >= 3:
            assert row.exodus_footprint > row.volcano_footprint
    last = figure4_small.rows[-1]
    if last.exodus_footprint is not None:
        assert last.exodus_footprint / last.volcano_footprint > 5


def test_exodus_aborts_on_complex_queries():
    """'the EXODUS optimizer generator aborted due to lack of memory or
    was aborted because it ran much longer.'"""
    generator = QueryGenerator(WorkloadOptions())
    query = generator.generate(7, seed=55)
    exodus = ExodusOptimizer(
        relational_model(),
        query.catalog,
        ExodusOptions(node_budget=800, transformation_budget=800),
    )
    result = exodus.optimize(query.query)
    assert result.aborted


def test_volcano_handles_what_exodus_cannot():
    """Volcano 'performed exhaustive search for all queries'."""
    generator = QueryGenerator(WorkloadOptions())
    query = generator.generate(8, seed=56)
    volcano = VolcanoOptimizer(
        relational_model(), query.catalog, SearchOptions(check_consistency=False)
    )
    result = volcano.optimize(query.query)
    leaf_tables = {args[0] for args in result.plan.leaf_args()}
    assert leaf_tables == set(query.table_names)
