"""End-to-end parallel model: optimized exchange plans execute correctly."""

import pytest

from repro.algebra.predicates import eq
from repro.catalog import Catalog
from repro.executor import ExecutionStats, TableSpec, execute_plan, populate_catalog
from repro.models.parallel import (
    ParallelModelOptions,
    parallel_relational_model,
    partitioned_on,
)
from repro.models.relational import get, join
from repro.search import VolcanoOptimizer


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("fact", 2000, key_distinct=200),
            TableSpec("dim", 1500, key_distinct=200),
        ],
        seed=31,
    )
    return catalog


def canonical(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def test_partitioned_scan_executes(catalog):
    optimizer = VolcanoOptimizer(parallel_relational_model(), catalog)
    result = optimizer.optimize(
        get("fact"), required=partitioned_on(["fact.k"], 4)
    )
    stats = ExecutionStats()
    rows = execute_plan(result.plan, catalog, stats)
    assert len(rows) == 2000
    assert stats.exchanges == 2000  # every row crossed the exchange


def test_parallel_join_plan_executes_and_matches_serial(catalog):
    from repro.executor import HashJoin  # executes the parallel join too
    from repro.executor.compile import PlanCompiler
    from repro.executor.runtime import ExecutionContext

    fast = ParallelModelOptions(degree=8, cpu_transfer=0.1, startup=10.0)
    optimizer = VolcanoOptimizer(parallel_relational_model(fast), catalog)
    query = join(get("fact"), get("dim"), eq("fact.k", "dim.k"))
    result = optimizer.optimize(query)
    assert "parallel_hash_join" in result.plan.algorithms_used()

    compiler = PlanCompiler(catalog)
    # The parallel join runs as an ordinary hash join over the exchanged
    # (partitioned) streams in this single-process simulation.
    compiler.register(
        "parallel_hash_join",
        lambda c, ctx, plan, inputs: HashJoin(
            ctx,
            inputs[0],
            inputs[1],
            __import__("repro.algebra.predicates", fromlist=["x"]).equi_join_pairs(
                plan.args[0],
                frozenset(inputs[0].output_columns),
                frozenset(inputs[1].output_columns),
            ),
        ),
    )
    context = ExecutionContext(catalog)
    rows = compiler.compile(result.plan, context).drain()

    from repro.models.relational import relational_model

    serial = VolcanoOptimizer(relational_model(), catalog).optimize(query)
    serial_rows = execute_plan(serial.plan, catalog)
    assert canonical(rows) == canonical(serial_rows)
    assert context.stats.exchanges > 0
