"""Tests for the EXPLAIN renderer."""

import pytest

from repro.algebra.properties import sorted_on
from repro.explain import explain, explain_plan
from repro.models.relational import relational_model
from repro.search import VolcanoOptimizer

from tests.helpers import chain_query, make_catalog


@pytest.fixture(scope="module")
def result():
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    return optimizer.optimize(chain_query(["r", "s", "t"]), required=sorted_on("r.k"))


def test_explain_plan_lists_every_operator(result):
    text = explain_plan(result.plan)
    for node in result.plan.walk():
        assert node.algorithm in text


def test_explain_plan_has_header_and_costs(result):
    text = explain_plan(result.plan)
    lines = text.splitlines()
    assert "operator" in lines[0] and "cum. cost" in lines[0]
    assert f"{result.cost.total():.1f}" in text


def test_explain_marks_enforcers(result):
    text = explain_plan(result.plan)
    if any(node.is_enforcer for node in result.plan.walk()):
        assert "(enforcer)" in text


def test_local_costs_sum_to_total(result):
    from repro.explain import _local_costs

    total = sum(_local_costs(node) for node in result.plan.walk())
    assert total == pytest.approx(result.cost.total())


def test_explain_includes_goal_and_stats(result):
    text = explain(result)
    assert "goal:" in text
    assert "search:" in text
    assert "sorted(r.k)" in text
