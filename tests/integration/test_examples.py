"""Every example script must run cleanly (deliverable b)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "sql_to_plan.py",
    "parallel_query.py",
    "oodb_paths.py",
    "setops_orders.py",
    "custom_model.py",
    "dynamic_plans.py",
    "feedback_loop.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_figure4_mini_runs():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "figure4_mini.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "Figure 4" in completed.stdout
