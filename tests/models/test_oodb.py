"""Tests for the OODB model (assembledness property + assembly enforcer)."""

import pytest

from repro.algebra.predicates import eq
from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics
from repro.models.oodb import (
    OodbModelOptions,
    assembled,
    materialize,
    oodb_model,
)
from repro.models.relational import get, select
from repro.search import VolcanoOptimizer


def make_catalog(employee_rows=5000, department_rows=50):
    catalog = Catalog()
    catalog.add_table(
        "employee",
        Schema.of("employee.id", "employee.dept_ref", "employee.salary"),
        TableStatistics(
            employee_rows,
            100,
            columns={
                "employee.id": ColumnStatistics(employee_rows),
                "employee.dept_ref": ColumnStatistics(department_rows),
                "employee.salary": ColumnStatistics(100, 0, 99),
            },
        ),
    )
    catalog.add_table(
        "department",
        Schema.of("department.id", "department.floor"),
        TableStatistics(
            department_rows,
            100,
            columns={
                "department.id": ColumnStatistics(department_rows),
                "department.floor": ColumnStatistics(10, 0, 9),
            },
        ),
    )
    return catalog


PATH = lambda source: materialize(source, "dept_ref", "department")


def test_materialize_props_extend_schema():
    from repro.model.context import OptimizerContext

    spec = oodb_model()
    context = OptimizerContext(spec, make_catalog())
    props = context.logical_props(PATH(get("employee")))
    assert "department.floor" in props.schema
    assert props.cardinality == 5000
    assert "department" in props.tables


def test_large_input_uses_assembly():
    """Many navigations → batch assembly beats random pointer chasing."""
    optimizer = VolcanoOptimizer(oodb_model(), make_catalog(employee_rows=5000))
    result = optimizer.optimize(PATH(get("employee")))
    algorithms = result.plan.algorithms_used()
    assert "assembled_navigate" in algorithms
    assert "assembly" in algorithms


def test_small_input_chases_pointers():
    """A handful of navigations → random reads beat scanning the extent."""
    catalog = make_catalog(employee_rows=5000, department_rows=5000)
    optimizer = VolcanoOptimizer(oodb_model(), catalog)
    # Selective filter first: few employees navigate.
    query = PATH(select(get("employee"), eq("employee.id", 7)))
    result = optimizer.optimize(query)
    assert result.plan.algorithm == "pointer_chase"


def test_assembly_is_an_enforcer_node():
    optimizer = VolcanoOptimizer(oodb_model(), make_catalog())
    result = optimizer.optimize(PATH(get("employee")))
    assembly_nodes = [
        node for node in result.plan.walk() if node.algorithm == "assembly"
    ]
    assert assembly_nodes
    assert all(node.is_enforcer for node in assembly_nodes)
    assert assembly_nodes[0].args == ("department",)


def test_assembled_requirement_satisfied():
    optimizer = VolcanoOptimizer(oodb_model(), make_catalog())
    result = optimizer.optimize(
        get("employee"), required=assembled("department")
    )
    assert result.plan.algorithm == "assembly"
    assert result.plan.properties.covers(assembled("department"))


def test_select_pushed_past_materialize():
    """The OODB rewrite rule filters before navigating."""
    optimizer = VolcanoOptimizer(oodb_model(), make_catalog())
    query = select(PATH(get("employee")), eq("employee.salary", 10))
    result = optimizer.optimize(query)
    # The chosen plan filters employees before following references:
    # the navigation operator sits above the filter.
    algorithms = result.plan.algorithms_used()
    navigate_index = min(
        algorithms.index(name)
        for name in ("assembled_navigate", "pointer_chase")
        if name in algorithms
    )
    filter_index = max(
        index
        for index, name in enumerate(algorithms)
        if name in ("filter", "filter_scan")
    )
    assert navigate_index < filter_index  # pre-order: navigate above filter


def test_select_on_path_column_not_pushed():
    """Predicates on navigated columns cannot move below materialize."""
    optimizer = VolcanoOptimizer(oodb_model(), make_catalog())
    query = select(PATH(get("employee")), eq("department.floor", 3))
    result = optimizer.optimize(query)
    algorithms = result.plan.algorithms_used()
    assert algorithms[0] == "filter"  # the filter stays on top


def test_two_step_path_assembles_both_extents():
    catalog = make_catalog()
    catalog.add_table(
        "building",
        Schema.of("building.id", "building.city"),
        TableStatistics(10, 100, columns={"building.id": ColumnStatistics(10)}),
    )
    optimizer = VolcanoOptimizer(oodb_model(), catalog)
    query = materialize(PATH(get("employee")), "building_ref", "building")
    result = optimizer.optimize(query)
    assemblies = {
        node.args[0]
        for node in result.plan.walk()
        if node.algorithm == "assembly"
    }
    navigates = result.plan.count_algorithm("assembled_navigate")
    chases = result.plan.count_algorithm("pointer_chase")
    assert navigates + chases == 2
    if navigates == 2:
        assert assemblies == {"department", "building"}
