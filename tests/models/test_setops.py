"""Tests for the set-operations model (alternative property vectors)."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.errors import OptimizationFailedError
from repro.model.context import OptimizerContext
from repro.model.spec import AlgorithmNode
from repro.models.relational import get, select
from repro.models.setops import (
    SetOpsModelOptions,
    except_,
    intersect,
    setops_model,
    union,
)
from repro.search import VolcanoOptimizer

from tests.helpers import make_catalog


@pytest.fixture
def catalog():
    # r and s share the same column layout (k, v) so they are
    # union-compatible positionally.
    return make_catalog([("r", 4800), ("s", 4800), ("t", 2400)])


@pytest.fixture
def spec():
    return setops_model()


@pytest.fixture
def optimizer(spec, catalog):
    return VolcanoOptimizer(spec, catalog)


def test_union_all_uses_concatenation(optimizer):
    result = optimizer.optimize(union(get("r"), get("s"), all=True))
    assert result.plan.algorithm == "union_all_concat"


def test_union_distinct_uses_hashing(optimizer):
    result = optimizer.optimize(union(get("r"), get("s"), all=False))
    assert result.plan.algorithm == "hash_union"


def test_intersection_unsorted_uses_hashing(optimizer):
    result = optimizer.optimize(intersect(get("r"), get("s")))
    assert result.plan.algorithm == "hash_intersect"


def test_intersection_sorted_goal_satisfied(optimizer):
    """A sorted goal is met either by merging or by a final sort."""
    result = optimizer.optimize(
        intersect(get("r"), get("s")), required=sorted_on("r.k")
    )
    assert result.plan.properties.covers(sorted_on("r.k"))
    assert result.plan.algorithm in ("merge_intersect", "sort")


def no_hash_spec():
    """The set-ops model without hash implementations: merge must carry."""
    spec = setops_model()
    spec.implementations = [
        rule
        for rule in spec.implementations
        if rule.name not in ("intersect_to_hash", "except_to_hash")
    ]
    return spec


def test_merge_intersect_sorts_both_inputs_the_same_way(catalog):
    """'any sort order of the two inputs will suffice as long as the two
    inputs are sorted in the same way' — both inputs get matching sorts."""
    optimizer = VolcanoOptimizer(no_hash_spec(), catalog)
    result = optimizer.optimize(
        intersect(get("r"), get("s")), required=sorted_on("r.k")
    )
    assert result.plan.algorithm == "merge_intersect"
    assert result.plan.count_algorithm("sort") == 2
    left_sort, right_sort = [
        node for node in result.plan.walk() if node.algorithm == "sort"
    ]
    (left_order,) = left_sort.args
    (right_order,) = right_sort.args
    # Positionally matching orders: r.k ↔ s.k first.
    assert "r.k" in left_order[0] and "s.k" in right_order[0]


def test_merge_intersect_offers_alternative_orders(spec, catalog):
    """The paper's R sorted on (A,B,…) vs (B,A,…) example (Section 3)."""
    context = OptimizerContext(spec, catalog)
    left = context.logical_props(get("r"))
    right = context.logical_props(get("s"))
    node = AlgorithmNode((), left, (left, right))
    alternatives = spec.algorithm("merge_intersect").applicability(
        context, node, ANY_PROPS
    )
    # Two columns (k, v) → 2! = 2 alternative orders offered: (k,v) and
    # (v,k), the paper's "(A,B,C) and (B,A,C)" scenario in miniature.
    assert len(alternatives) == 2
    left_orders = {alt[0].sort_order for alt in alternatives}
    assert len(left_orders) == 2


def test_merge_intersect_picks_the_matching_alternative(catalog):
    """When the goal demands an order, the matching permutation is used."""
    optimizer = VolcanoOptimizer(no_hash_spec(), catalog)
    required = sorted_on("r.v")
    result = optimizer.optimize(intersect(get("r"), get("s")), required=required)
    assert result.plan.algorithm == "merge_intersect"
    # The first sort key pair must align with the required column.
    first_key = result.plan.properties.sort_order[0]
    assert "r.v" in first_key


def test_except_sorted_and_unsorted(optimizer):
    unsorted = optimizer.optimize(except_(get("r"), get("s")))
    assert unsorted.plan.algorithm == "hash_except"
    ordered = optimizer.optimize(
        except_(get("r"), get("s")), required=sorted_on("r.k")
    )
    assert ordered.plan.algorithm in ("merge_except", "sort")


def test_commutativity_rejected_by_consistency_check(catalog):
    """A commute rule for named set ops is a model bug the engine catches.

    Swapping union operands renames the output columns, so the rewritten
    expression is not equivalent; the memo's consistency check (the
    paper's "one of many consistency checks") must reject it.
    """
    from repro.algebra.expressions import LogicalExpression
    from repro.errors import SearchError
    from repro.model.patterns import AnyPattern, OpPattern
    from repro.model.rules import TransformationRule

    spec = setops_model()
    pattern = OpPattern("union", (AnyPattern("l"), AnyPattern("r")), args_as="a")
    spec.add_transformation(
        TransformationRule(
            "union_commute_bug",
            pattern,
            lambda binding, context: LogicalExpression(
                "union", binding["a"], (binding["r"], binding["l"])
            ),
        )
    )
    optimizer = VolcanoOptimizer(spec, catalog)
    with pytest.raises(SearchError):
        optimizer.optimize(union(get("r"), get("s"), all=True))


def test_incompatible_schemas_rejected_by_condition(optimizer, catalog):
    """t has the same layout here, so make an incompatible pair by
    projecting; the condition code must reject non-union-compatible
    inputs, leaving no implementation and thus no plan."""
    from repro.models.relational import project

    bad = intersect(project(get("r"), ["r.k"]), get("s"))
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(bad)


def test_set_operation_cardinality_estimates(spec, catalog):
    context = OptimizerContext(spec, catalog)
    union_props = context.logical_props(union(get("r"), get("s"), all=True))
    assert union_props.cardinality == 9600
    intersect_props = context.logical_props(intersect(get("r"), get("s")))
    assert 0 < intersect_props.cardinality < 4800
    except_props = context.logical_props(except_(get("r"), get("s")))
    assert 0 < except_props.cardinality < 4800


def test_setops_over_selections(optimizer):
    """Set operations compose with the relational operators below."""
    query = intersect(
        select(get("r"), eq("r.v", 1)),
        select(get("s"), eq("s.v", 1)),
    )
    result = optimizer.optimize(query)
    assert result.plan.algorithm in ("hash_intersect", "merge_intersect")
    assert result.plan.count_algorithm("filter_scan") == 2
