"""Tests for the relational model specification (paper Section 4's model)."""

import pytest

from repro.algebra.predicates import TRUE, conjunction_of, eq
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.model.context import OptimizerContext
from repro.model.spec import AlgorithmNode
from repro.models.relational import (
    CostConstants,
    RelationalModelOptions,
    get,
    join,
    project,
    relational_model,
    select,
)
from repro.search import VolcanoOptimizer

from tests.helpers import make_catalog


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])


@pytest.fixture
def spec():
    return relational_model()


@pytest.fixture
def context(spec, catalog):
    return OptimizerContext(spec, catalog)


# -- logical property functions ------------------------------------------------


def test_get_props(context):
    props = context.logical_props(get("r"))
    assert props.cardinality == 1200
    assert props.tables == frozenset({"r"})
    assert set(props.schema.column_names) == {"r.k", "r.v"}


def test_get_props_with_alias(context):
    props = context.logical_props(get("r", "x"))
    assert set(props.schema.column_names) == {"x.r.k", "x.r.v"}
    assert props.tables == frozenset({"x"})


def test_select_props_scale_cardinality(context):
    props = context.logical_props(select(get("r"), eq("r.v", 1)))
    assert props.cardinality == pytest.approx(1200 / 20)


def test_select_props_cap_distincts(context):
    props = context.logical_props(select(get("r"), eq("r.v", 1)))
    assert props.column_stat("r.k").distinct_values <= props.cardinality + 1


def test_join_props_cardinality(context):
    props = context.logical_props(join(get("r"), get("s"), eq("r.k", "s.k")))
    # 1200 × 2400 / max(100, 100)
    assert props.cardinality == pytest.approx(1200 * 2400 / 100)
    assert props.tables == frozenset({"r", "s"})
    assert len(props.schema) == 4


def test_join_props_preserve_leaf_distincts(context):
    """Join stats stay at leaf-level distincts: order-independence of
    logical properties across the equivalence class requires estimates
    that do not depend on which join was applied first."""
    props = context.logical_props(join(get("r"), get("s"), eq("r.k", "s.k")))
    assert props.column_stat("r.k").distinct_values == 100
    assert props.column_stat("s.k").distinct_values == 100


def test_join_props_are_order_independent(context):
    from repro.algebra.predicates import conjunction_of

    star = join(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        get("t"),
        eq("r.k", "t.k"),
    )
    other = join(
        join(get("r"), get("t"), eq("r.k", "t.k")),
        get("s"),
        eq("r.k", "s.k"),
    )
    assert context.logical_props(star).cardinality == pytest.approx(
        context.logical_props(other).cardinality
    )


def test_project_props(context):
    props = context.logical_props(
        project(join(get("r"), get("s"), eq("r.k", "s.k")), ["r.k", "s.v"])
    )
    assert props.schema.column_names == ("r.k", "s.v")
    assert set(props.column_stats) == {"r.k", "s.v"}


# -- algorithm applicability ----------------------------------------------------


def join_node(context, predicate=None):
    tree = join(get("r"), get("s"), predicate or eq("r.k", "s.k"))
    output = context.logical_props(tree)
    inputs = tuple(context.logical_props(node) for node in tree.inputs)
    return AlgorithmNode(tree.args, output, inputs)


def test_merge_join_requires_equi_predicate(spec, context):
    node = join_node(context, predicate=TRUE)
    assert spec.algorithm("merge_join").applicability(context, node, ANY_PROPS) == []


def test_merge_join_demands_sorted_inputs(spec, context):
    node = join_node(context)
    alternatives = spec.algorithm("merge_join").applicability(
        context, node, ANY_PROPS
    )
    assert alternatives
    left_req, right_req = alternatives[0]
    assert left_req.sort_order == (frozenset({"r.k"}),)
    assert right_req.sort_order == (frozenset({"s.k"}),)


def test_merge_join_qualifies_for_sorted_output(spec, context):
    """'merge-join qualifies with the requirement that its inputs be sorted.'"""
    node = join_node(context)
    alternatives = spec.algorithm("merge_join").applicability(
        context, node, sorted_on("r.k")
    )
    assert alternatives


def test_hash_join_disqualified_for_sorted_output(spec, context):
    """'hybrid hash join does not qualify' when output must be sorted."""
    node = join_node(context)
    assert (
        spec.algorithm("hybrid_hash_join").applicability(
            context, node, sorted_on("r.k")
        )
        == []
    )


def test_hash_join_qualified_for_unsorted_output(spec, context):
    node = join_node(context)
    assert spec.algorithm("hybrid_hash_join").applicability(
        context, node, ANY_PROPS
    ) == [(ANY_PROPS, ANY_PROPS)]


def test_merge_join_multi_key_permutations(spec, context):
    predicate = conjunction_of([eq("r.k", "s.k"), eq("r.v", "s.v")])
    node = join_node(context, predicate)
    alternatives = spec.algorithm("merge_join").applicability(
        context, node, ANY_PROPS
    )
    # Two keys → both orders are offered as alternatives (paper Section 3).
    assert len(alternatives) == 2
    first_left = alternatives[0][0].sort_order
    second_left = alternatives[1][0].sort_order
    assert first_left != second_left


def test_merge_join_derives_equivalence_order(spec, context):
    node = join_node(context)
    delivered = spec.algorithm("merge_join").derive_props(
        context, node, (sorted_on("r.k"), sorted_on("s.k"))
    )
    assert delivered.sort_order == (frozenset({"r.k", "s.k"}),)


def test_merge_join_preserves_extra_left_order(spec, context):
    delivered = spec.algorithm("merge_join").derive_props(
        context,
        join_node(context),
        (sorted_on("r.k", "r.v"), sorted_on("s.k")),
    )
    assert delivered.sort_order[0] == frozenset({"r.k", "s.k"})
    assert delivered.sort_order[1] == frozenset({"r.v"})


def test_filter_passes_requirement_through(spec, context):
    tree = select(get("r"), eq("r.v", 1))
    node = AlgorithmNode(
        tree.args,
        context.logical_props(tree),
        (context.logical_props(tree.inputs[0]),),
    )
    required = sorted_on("r.k")
    assert spec.algorithm("filter").applicability(context, node, required) == [
        (required,)
    ]
    assert (
        spec.algorithm("filter").derive_props(context, node, (required,)) == required
    )


def test_sort_enforcer_only_fires_for_sort_requirements(spec, context):
    enforcer = spec.enforcer("sort")
    props = context.logical_props(get("r"))
    assert enforcer.enforce(context, ANY_PROPS, props) == []
    applications = enforcer.enforce(context, sorted_on("r.k"), props)
    assert len(applications) == 1
    application = applications[0]
    assert application.relaxed == ANY_PROPS
    assert application.excluded.sort_order == (frozenset({"r.k"}),)
    assert application.delivered == sorted_on("r.k")


def test_project_derive_props_truncates_lost_columns(spec, context):
    tree = project(join(get("r"), get("s"), eq("r.k", "s.k")), ["r.k"])
    node = AlgorithmNode(
        tree.args,
        context.logical_props(tree),
        (context.logical_props(tree.inputs[0]),),
    )
    delivered = spec.algorithm("project").derive_props(
        context, node, (sorted_on("r.k", "s.v"),)
    )
    # s.v is projected away: the order is only known up to r.k.
    assert delivered.sort_order == (frozenset({"r.k"}),)


# -- cost functions ---------------------------------------------------------------


def test_file_scan_cost_uses_stored_row_width(spec, context):
    node = AlgorithmNode(("r", None), context.logical_props(get("r")), ())
    cost = spec.algorithm("file_scan").cost(context, node)
    # 1200 rows × 100 B at 4096 B pages → 30 pages.
    assert cost.io == 30
    assert cost.cpu == 1200


def test_sort_cost_single_level_merge(spec, context):
    props = context.logical_props(get("r"))
    node = AlgorithmNode(((frozenset({"r.k"}),),), props, (props,))
    cost = spec.enforcer("sort").cost(context, node)
    # Two I/O passes over the data: write runs, read runs.
    pages = 1200 / (4096 // 8)  # schema width: two 4-byte ints
    assert cost.io == 2 * max(1, -(-1200 // (4096 // 8)))
    assert cost.cpu > 0


def test_hash_join_has_no_io(spec, context):
    """'Hash join was presumed to proceed without partition files.'"""
    cost = spec.algorithm("hybrid_hash_join").cost(context, join_node(context))
    assert cost.io == 0


def test_merge_join_cheaper_than_hash_join_locally(spec, context):
    """Pre-sorted merge inputs beat hashing (interesting orders pay off)."""
    node = join_node(context)
    merge_cost = spec.algorithm("merge_join").cost(context, node)
    hash_cost = spec.algorithm("hybrid_hash_join").cost(context, node)
    assert merge_cost < hash_cost


# -- model options -----------------------------------------------------------------


def test_nested_loops_disabled_by_default(spec):
    assert "nested_loops_join" not in spec.algorithms


def test_nested_loops_enabled_by_option(catalog):
    options = RelationalModelOptions(enable_nested_loops=True)
    spec = relational_model(options)
    assert "nested_loops_join" in spec.algorithms
    # A cross product can now be planned.
    optimizer = VolcanoOptimizer(spec, catalog)
    result = optimizer.optimize(join(get("r"), get("s"), TRUE))
    assert result.plan.algorithm == "nested_loops_join"


def test_filter_scan_can_be_disabled(catalog):
    options = RelationalModelOptions(enable_filter_scan=False)
    spec = relational_model(options)
    optimizer = VolcanoOptimizer(spec, catalog)
    result = optimizer.optimize(select(get("r"), eq("r.v", 1)))
    assert result.plan.algorithm == "filter"


def test_select_pushdown_rules(catalog):
    options = RelationalModelOptions(select_pushdown=True)
    spec = relational_model(options)
    optimizer = VolcanoOptimizer(spec, catalog)
    # Selection sits on top of the join; the rules must push it down so
    # the filtered scan is considered.
    query = select(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        conjunction_of([eq("r.v", 1), eq("s.v", 2)]),
    )
    result = optimizer.optimize(query)
    assert result.plan.count_algorithm("filter_scan") == 2


def test_project_over_join_plan(catalog):
    spec = relational_model()
    optimizer = VolcanoOptimizer(spec, catalog)
    query = project(join(get("r"), get("s"), eq("r.k", "s.k")), ["r.k", "s.v"])
    result = optimizer.optimize(query)
    assert result.plan.algorithm == "project"


def test_cost_constants_are_tunable(catalog):
    expensive_io = RelationalModelOptions(cost=CostConstants(io_weight=10_000.0))
    spec = relational_model(expensive_io)
    optimizer = VolcanoOptimizer(spec, catalog)
    result = optimizer.optimize(get("r"))
    assert result.cost.io_weight == 10_000.0


def test_self_join_with_aliases(catalog):
    spec = relational_model()
    optimizer = VolcanoOptimizer(spec, catalog)
    query = join(get("r", "x"), get("r", "y"), eq("x.r.k", "y.r.k"))
    result = optimizer.optimize(query)
    leaf_tables = [args[0] for args in result.plan.leaf_args()]
    assert leaf_tables == ["r", "r"]


def test_merge_join_many_keys_uses_canonical_plus_requirement(spec, context):
    """Beyond the permutation limit, merge join offers the canonical key
    order plus (when the goal names join columns) a requirement-matching
    order, instead of factorially many permutations."""
    from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics

    catalog = Catalog()
    for name in ("l", "r"):
        columns = [f"{name}.c{i}" for i in range(4)]
        catalog.add_table(
            name,
            Schema.of(*columns),
            TableStatistics(
                1000,
                100,
                columns={c: ColumnStatistics(100) for c in columns},
            ),
        )
    from repro.model.context import OptimizerContext

    local_context = OptimizerContext(spec, catalog)
    predicate = conjunction_of(
        [eq(f"l.c{i}", f"r.c{i}") for i in range(4)]
    )
    tree = join(get("l"), get("r"), predicate)
    node = AlgorithmNode(
        tree.args,
        local_context.logical_props(tree),
        tuple(local_context.logical_props(child) for child in tree.inputs),
    )
    merge_join = spec.algorithm("merge_join")
    # Unconstrained: just the canonical order (no factorial blowup).
    assert len(merge_join.applicability(local_context, node, ANY_PROPS)) == 1
    # Constrained on a non-leading key: a matching order is offered too.
    constrained = merge_join.applicability(
        local_context, node, sorted_on("l.c3")
    )
    assert constrained
    for left_req, right_req in constrained:
        assert "l.c3" in left_req.sort_order[0]
