"""Tests for the parallel model (partitioning property + exchange)."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import Partitioning, PhysProps
from repro.errors import OptimizationFailedError
from repro.models.parallel import (
    ParallelModelOptions,
    parallel_relational_model,
    partitioned_on,
)
from repro.models.relational import get, join, select
from repro.search import VolcanoOptimizer

from tests.helpers import make_catalog


@pytest.fixture
def catalog():
    return make_catalog(
        [("r", 7200), ("s", 7200), ("t", 7200)], key_distinct=3600
    )


@pytest.fixture
def optimizer(catalog):
    return VolcanoOptimizer(parallel_relational_model(), catalog)


def test_partitioned_goal_satisfied_by_exchange(optimizer):
    required = partitioned_on(["r.k"], 4)
    result = optimizer.optimize(get("r"), required=required)
    assert result.plan.algorithm == "exchange"
    assert result.plan.is_enforcer
    assert result.plan.properties.covers(required)


def test_exchange_degree_must_match(optimizer):
    result = optimizer.optimize(get("r"), required=partitioned_on(["r.k"], 8))
    partitioning = result.plan.properties.partitioning
    assert partitioning.degree == 8


def test_parallel_join_requires_compatible_partitioning(optimizer):
    """Both inputs exchange onto the join key before a parallel join."""
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = optimizer.optimize(query, required=partitioned_on(["r.k"], 4))
    algorithms = result.plan.algorithms_used()
    if "parallel_hash_join" in algorithms:
        assert result.plan.count_algorithm("exchange") >= 2


def test_parallel_join_chosen_for_big_inputs(catalog):
    """Dividing the join work pays for the exchanges on large inputs."""
    options = ParallelModelOptions(degree=8, cpu_transfer=0.1, startup=10.0)
    optimizer = VolcanoOptimizer(parallel_relational_model(options), catalog)
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = optimizer.optimize(query)
    assert "parallel_hash_join" in result.plan.algorithms_used()


def test_serial_join_chosen_when_transfer_expensive(catalog):
    options = ParallelModelOptions(degree=2, cpu_transfer=50.0, startup=1e6)
    optimizer = VolcanoOptimizer(parallel_relational_model(options), catalog)
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = optimizer.optimize(query)
    assert "parallel_hash_join" not in result.plan.algorithms_used()


def test_partitioning_key_equivalence_propagates(optimizer):
    """Output partitioned on {r.k, s.k} satisfies either column."""
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = optimizer.optimize(query, required=partitioned_on(["s.k"], 4))
    assert result.plan.properties.covers(partitioned_on(["s.k"], 4))


def test_partitioned_and_sorted_goal(optimizer):
    """Two property components at once: sort and partitioning compose."""
    from repro.algebra.properties import sorted_on

    required = partitioned_on(["r.k"], 4).with_sort(["r.k"])
    result = optimizer.optimize(
        select(get("r"), eq("r.v", 1)), required=required
    )
    assert result.plan.properties.covers(required)
    algorithms = result.plan.algorithms_used()
    assert "sort" in algorithms and "exchange" in algorithms


def test_serial_model_cannot_partition(catalog):
    from repro.models.relational import relational_model

    optimizer = VolcanoOptimizer(relational_model(), catalog)
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(get("r"), required=partitioned_on(["r.k"], 4))
