"""Tests for grouping/aggregation (model + SQL + execution)."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.errors import ModelSpecError, SqlError
from repro.model.context import OptimizerContext
from repro.model.spec import AlgorithmNode
from repro.models.aggregates import aggregate, aggregate_model
from repro.models.relational import get, join, select
from repro.search import VolcanoOptimizer

from tests.helpers import make_catalog


@pytest.fixture
def catalog():
    return make_catalog([("r", 2400), ("s", 4800)], key_distinct=50)


@pytest.fixture
def spec():
    return aggregate_model()


@pytest.fixture
def optimizer(spec, catalog):
    return VolcanoOptimizer(spec, catalog)


GROUPED = lambda: aggregate(
    get("r"), ["r.k"], [("n", "count", None), ("total", "sum", "r.v")]
)


# -- logical properties ---------------------------------------------------------


def test_aggregate_props_schema(spec, catalog):
    context = OptimizerContext(spec, catalog)
    props = context.logical_props(GROUPED())
    assert props.schema.column_names == ("r.k", "n", "total")


def test_aggregate_props_cardinality_is_group_count(spec, catalog):
    context = OptimizerContext(spec, catalog)
    props = context.logical_props(GROUPED())
    assert props.cardinality == 50  # distinct r.k values


def test_grand_total_has_one_row(spec, catalog):
    context = OptimizerContext(spec, catalog)
    props = context.logical_props(
        aggregate(get("r"), [], [("n", "count", None)])
    )
    assert props.cardinality == 1
    assert props.schema.column_names == ("n",)


def test_output_types(spec, catalog):
    from repro.catalog.schema import ColumnType

    context = OptimizerContext(spec, catalog)
    props = context.logical_props(
        aggregate(
            get("r"),
            [],
            [("n", "count", None), ("m", "avg", "r.v"), ("x", "max", "r.v")],
        )
    )
    assert props.schema.column("n").type is ColumnType.INTEGER
    assert props.schema.column("m").type is ColumnType.FLOAT
    assert props.schema.column("x").type is ColumnType.INTEGER


def test_unknown_function_rejected():
    with pytest.raises(ModelSpecError):
        aggregate(get("r"), [], [("x", "median", "r.v")])


# -- algorithm choice -------------------------------------------------------------


def test_unsorted_goal_uses_hash_aggregate(optimizer):
    result = optimizer.optimize(GROUPED())
    assert result.plan.algorithm == "hash_aggregate"


def test_sorted_goal_can_stream(optimizer):
    """Sorted output: stream aggregation or hash+sort, whichever wins —
    and the plan must deliver the order either way."""
    result = optimizer.optimize(GROUPED(), required=sorted_on("r.k"))
    assert result.plan.properties.covers(sorted_on("r.k"))
    assert result.plan.algorithm in ("stream_aggregate", "sort")


def test_stream_aggregate_applicability_offers_permutations(spec, catalog):
    context = OptimizerContext(spec, catalog)
    tree = aggregate(get("r"), ["r.k", "r.v"], [("n", "count", None)])
    node = AlgorithmNode(
        tree.args,
        context.logical_props(tree),
        (context.logical_props(get("r")),),
    )
    alternatives = spec.algorithm("stream_aggregate").applicability(
        context, node, ANY_PROPS
    )
    assert len(alternatives) == 2  # both orders of (r.k, r.v)


def test_stream_aggregate_exploits_merge_join_order(spec, catalog):
    """Aggregation on the join key rides the merge join's order for free
    whenever the optimizer picks the merge path at all."""
    query = aggregate(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        ["r.k"],
        [("n", "count", None)],
    )
    result = VolcanoOptimizer(spec, catalog).optimize(
        query, required=sorted_on("r.k")
    )
    algorithms = result.plan.algorithms_used()
    if "merge_join" in algorithms and "stream_aggregate" in algorithms:
        # No sort between the join and the aggregation.
        aggregate_index = algorithms.index("stream_aggregate")
        join_index = algorithms.index("merge_join")
        between = algorithms[aggregate_index + 1 : join_index]
        assert "sort" not in between
    assert result.plan.properties.covers(sorted_on("r.k"))


# -- SQL integration ---------------------------------------------------------------


def test_sql_group_by(optimizer, catalog):
    from repro.sql import translate

    translation = translate(
        "select r.k, count(*), sum(r.v) as total from r group by r.k",
        catalog,
    )
    assert translation.expression.operator == "aggregate"
    result = optimizer.optimize(translation.expression)
    assert result.plan.algorithm in ("hash_aggregate", "stream_aggregate")


def test_sql_grand_total(catalog):
    from repro.sql import translate

    translation = translate("select count(*) from r", catalog)
    group_by, aggregates = translation.expression.args
    assert group_by == ()
    assert aggregates == (("count", "count", None),)


def test_sql_select_list_projection_order(catalog):
    from repro.sql import translate

    translation = translate(
        "select count(*), r.k from r group by r.k", catalog
    )
    # Aggregate output is (r.k, count); the select list wants the
    # reverse, so a projection is wrapped on top.
    assert translation.expression.operator == "project"
    assert translation.expression.args[0] == ("count", "r.k")


def test_sql_non_grouped_column_rejected(catalog):
    from repro.sql import translate

    with pytest.raises(SqlError):
        translate("select r.v, count(*) from r group by r.k", catalog)


def test_sql_star_with_aggregate_rejected(catalog):
    from repro.sql import translate

    with pytest.raises(SqlError):
        translate("select * from r group by r.k", catalog)


def test_sql_sum_star_rejected(catalog):
    from repro.sql import translate

    with pytest.raises(SqlError):
        translate("select sum(*) from r", catalog)


def test_sql_order_by_aggregate_output(catalog):
    from repro.sql import translate

    translation = translate(
        "select r.k, count(*) as n from r group by r.k order by r.k",
        catalog,
    )
    assert translation.required == sorted_on("r.k")


# -- execution ----------------------------------------------------------------------


def test_aggregate_execution_matches_reference(spec):
    from repro.catalog import Catalog
    from repro.executor import TableSpec, execute_plan, populate_catalog

    catalog = Catalog()
    populate_catalog(catalog, [TableSpec("r", 500, key_distinct=7)], seed=13)
    optimizer = VolcanoOptimizer(spec, catalog)
    query = aggregate(
        get("r"), ["r.k"], [("n", "count", None), ("total", "sum", "r.v")]
    )
    for required in (ANY_PROPS, sorted_on("r.k")):
        result = optimizer.optimize(query, required=required)
        rows = execute_plan(result.plan, catalog)
        reference = {}
        for row in catalog.table("r").rows:
            bucket = reference.setdefault(row["r.k"], [0, 0])
            bucket[0] += 1
            bucket[1] += row["r.v"]
        assert len(rows) == len(reference)
        for row in rows:
            n, total = reference[row["r.k"]]
            assert row["n"] == n
            assert row["total"] == total
