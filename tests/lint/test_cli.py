"""Exit-code contract of ``python -m repro.lint``."""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )


def test_all_strict_passes_on_bundled_models():
    completed = run_lint("--all", "--strict")
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "linted 5 model(s)" in completed.stdout
    assert "0 error(s), 0 warning(s)" in completed.stdout


def test_broken_fixture_fails_with_expected_code():
    completed = run_lint("tests.lint.fixture_specs:broken_unknown_algorithm")
    assert completed.returncode == 1, completed.stdout + completed.stderr
    assert "V004" in completed.stdout


def test_warning_fixture_needs_strict_to_fail():
    target = "tests.lint.fixture_specs:broken_growing_cycle"
    assert run_lint(target).returncode == 0
    completed = run_lint(target, "--strict")
    assert completed.returncode == 1
    assert "V201" in completed.stdout


def test_clean_user_module_passes():
    completed = run_lint("tests.lint.fixture_specs:clean_spec")
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_unloadable_target_exits_2():
    completed = run_lint("tests.lint.fixture_specs:does_not_exist")
    assert completed.returncode == 2
    completed = run_lint("no.such.module:thing")
    assert completed.returncode == 2


def test_no_arguments_exits_2():
    assert run_lint().returncode == 2


def test_list_codes_mentions_every_registered_code():
    from repro.lint import CODE_REGISTRY

    completed = run_lint("--list-codes")
    assert completed.returncode == 0
    for code in CODE_REGISTRY:
        assert code in completed.stdout
