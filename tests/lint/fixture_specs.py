"""Purpose-built broken model specifications for linter tests.

Each ``broken_*`` builder returns a specification with exactly one kind
of defect on top of a minimal clean base (so the expected diagnostic
code fires without drowning in unrelated noise).  The specs bypass
``ModelSpecification.validate()`` deliberately — half the point of the
linter is catching what a hand-assembled spec gets wrong before any
engine touches it.

``python -m repro.lint tests.lint.fixture_specs:broken_...`` loads these
through the CLI as well; tests assert the exit codes.
"""

from __future__ import annotations

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import ANY_PROPS, LogicalProperties, PhysProps
from repro.catalog.schema import Schema
from repro.model.cost import Cost, ScalarCost
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule, TransformationRule
from repro.model.spec import (
    AlgorithmDef,
    EnforcerApplication,
    EnforcerDef,
    LogicalOperatorDef,
    ModelSpecification,
)

__all__ = [
    "clean_spec",
    "broken_duplicate_names",
    "broken_unknown_pattern_operator",
    "broken_arity_mismatch",
    "broken_unknown_algorithm",
    "broken_missing_parts",
    "broken_dropped_binding",
    "broken_rewrite_unknown_operator",
    "broken_unimplementable_operator",
    "broken_enforcer_gap",
    "broken_growing_cycle",
    "broken_zero_cost",
    "broken_enforcer_overpromise",
    "broken_enforcer_no_relaxation",
]


# -- minimal clean base -------------------------------------------------------


def _rel_props(context, args, input_props):
    return LogicalProperties(
        schema=Schema.of("c1", "c2"), cardinality=100.0, tables=frozenset({"rel"})
    )


def _combine_props(context, args, input_props):
    left, right = input_props
    return LogicalProperties(
        schema=left.schema,
        cardinality=left.cardinality * right.cardinality * 0.01,
        tables=left.tables | right.tables,
    )


def _any_input_algorithm(name: str, arity: int, unit_cost: float) -> AlgorithmDef:
    def applicability(context, node, required):
        if not ANY_PROPS.covers(required):
            return []
        return [tuple(ANY_PROPS for _ in range(arity))]

    def cost(context, node):
        return ScalarCost(unit_cost * max(1.0, node.output.cardinality))

    def derive_props(context, node, input_props):
        return ANY_PROPS

    return AlgorithmDef(name, applicability, cost, derive_props)


def clean_spec() -> ModelSpecification:
    """The defect-free base every fixture corrupts; lints clean."""
    spec = ModelSpecification(name="fixture")
    spec.add_operator(LogicalOperatorDef("rel", 0, _rel_props))
    spec.add_operator(LogicalOperatorDef("combine", 2, _combine_props))
    spec.add_algorithm(_any_input_algorithm("scan", 0, 1.0))
    spec.add_algorithm(_any_input_algorithm("hash_combine", 2, 2.0))
    spec.add_implementation(
        ImplementationRule(
            "rel_to_scan", OpPattern("rel", (), args_as="a"), "scan"
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "combine_to_hash",
            OpPattern("combine", (AnyPattern("l"), AnyPattern("r")), args_as="a"),
            "hash_combine",
        )
    )
    return spec


def _combine_pattern() -> OpPattern:
    return OpPattern("combine", (AnyPattern("l"), AnyPattern("r")), args_as="a")


# -- one defect per builder ---------------------------------------------------


def broken_duplicate_names() -> ModelSpecification:
    """V001: registry key disagrees with the definition's name."""
    spec = clean_spec()
    misfiled = _any_input_algorithm("other_name", 0, 1.0)
    spec.algorithms["filed_name"] = misfiled
    return spec


def broken_unknown_pattern_operator() -> ModelSpecification:
    """V002: a rule pattern names an undeclared operator."""
    spec = clean_spec()
    spec.transformations.append(
        TransformationRule(
            "frob",
            OpPattern("frobnicate", (AnyPattern("x"),), args_as="a"),
            lambda binding, context: binding["x"],
        )
    )
    return spec


def broken_arity_mismatch() -> ModelSpecification:
    """V003: a pattern gives a binary operator one input."""
    spec = clean_spec()
    spec.transformations.append(
        TransformationRule(
            "lopsided",
            OpPattern("combine", (AnyPattern("x"),), args_as="a"),
            lambda binding, context: binding["x"],
        )
    )
    return spec


def broken_unknown_algorithm() -> ModelSpecification:
    """V004: an implementation rule targets an undeclared algorithm."""
    spec = clean_spec()
    spec.implementations.append(
        ImplementationRule("combine_to_warp", _combine_pattern(), "warp_drive")
    )
    return spec


def broken_missing_parts() -> ModelSpecification:
    """V005: no name and no algorithms at all."""
    spec = ModelSpecification(name="")
    spec.add_operator(LogicalOperatorDef("rel", 0, _rel_props))
    return spec


def broken_dropped_binding() -> ModelSpecification:
    """V006: the rewrite silently discards a bound input."""
    spec = clean_spec()

    def rewrite(binding, context):
        # Forgets ?r entirely — not equivalence-preserving.
        return LogicalExpression("combine", ((),), (binding["l"], binding["l"]))

    spec.transformations.append(
        TransformationRule("forgetful", _combine_pattern(), rewrite)
    )
    return spec


def broken_rewrite_unknown_operator() -> ModelSpecification:
    """V007: the rewrite builds an operator nobody declared."""
    spec = clean_spec()

    def rewrite(binding, context):
        return LogicalExpression("mystery", (), (binding["l"], binding["r"]))

    spec.transformations.append(
        TransformationRule("mysterious", _combine_pattern(), rewrite)
    )
    return spec


def broken_unimplementable_operator() -> ModelSpecification:
    """V101: an operator no rule implements or rewrites away."""
    spec = clean_spec()
    spec.add_operator(LogicalOperatorDef("orphan", 1, _rel_props))
    return spec


def broken_enforcer_gap() -> ModelSpecification:
    """V104: an algorithm requires a component nothing can produce."""
    spec = clean_spec()
    needy = _any_input_algorithm("merge_combine", 2, 1.5)
    needy.requires = frozenset({"sort"})
    spec.add_algorithm(needy)
    spec.add_implementation(
        ImplementationRule("combine_to_merge", _combine_pattern(), "merge_combine")
    )
    return spec


def broken_growing_cycle() -> ModelSpecification:
    """V201: an unguarded rule that strictly grows the expression."""
    spec = clean_spec()

    def rewrite(binding, context):
        inner = LogicalExpression(
            "combine", ((),), (binding["l"], binding["r"])
        )
        return LogicalExpression("combine", ((),), (inner, binding["r"]))

    spec.transformations.append(
        TransformationRule("inflate", _combine_pattern(), rewrite)
    )
    return spec


class _BrokenZeroCost(Cost):
    """z + z != z: accumulates a constant on every addition."""

    def __init__(self, value: float = 0.0):
        self.value = value

    def total(self) -> float:
        return self.value

    def __add__(self, other):
        if other.is_infinite:
            return other
        return _BrokenZeroCost(self.value + other.total() + 1.0)

    def __sub__(self, other):
        return _BrokenZeroCost(self.value - other.total())

    def __repr__(self) -> str:  # pragma: no cover - debug only
        return f"_BrokenZeroCost({self.value})"


def broken_zero_cost() -> ModelSpecification:
    """V301: the zero cost is not a neutral element."""
    spec = clean_spec()
    spec.zero_cost = _BrokenZeroCost
    return spec


def _enforcer_base(name: str, enforce) -> EnforcerDef:
    def cost(context, node):
        return ScalarCost(node.inputs[0].cardinality)

    return EnforcerDef(name, enforce, cost, provides=frozenset({"sort"}))


def broken_enforcer_overpromise() -> ModelSpecification:
    """V401: delivered properties do not cover what was required."""

    def enforce(context, required, output_props):
        if not required.sort_order:
            return []
        return [
            EnforcerApplication(
                args=(),
                delivered=ANY_PROPS,  # claims success, delivers nothing
                relaxed=required.without_sort(),
                excluded=required.only_sort(),
            )
        ]

    spec = clean_spec()
    spec.add_enforcer(_enforcer_base("bad_sort", enforce))
    return spec


def broken_enforcer_no_relaxation() -> ModelSpecification:
    """V402: the relaxed goal equals the original — infinite regress."""

    def enforce(context, required, output_props):
        if not required.sort_order:
            return []
        return [
            EnforcerApplication(
                args=(),
                delivered=required,
                relaxed=required,  # nothing removed: recurses forever
                excluded=PhysProps(),
            )
        ]

    spec = clean_spec()
    spec.add_enforcer(_enforcer_base("lazy_sort", enforce))
    return spec


def broken_nonfinite_promise() -> ModelSpecification:
    """V010: an implementation rule's promise is NaN."""
    spec = clean_spec()
    spec.implementations.append(
        ImplementationRule(
            "combine_to_nan",
            _combine_pattern(),
            "hash_combine",
            promise=float("nan"),
        )
    )
    return spec
