"""Every bundled model lints clean, across its whole option space."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.lint import lint_spec
from repro.models import (
    aggregate_model,
    oodb_model,
    parallel_relational_model,
    relational_model,
    setops_model,
)
from repro.models.oodb import OodbModelOptions
from repro.models.parallel import ParallelModelOptions
from repro.models.relational import RelationalModelOptions
from repro.models.setops import SetOpsModelOptions

BUILDERS = [
    relational_model,
    setops_model,
    parallel_relational_model,
    oodb_model,
    aggregate_model,
]


def assert_strict_clean(spec):
    report = lint_spec(spec)
    problems = report.errors + report.warnings
    assert not problems, "\n".join(d.render() for d in problems)


@pytest.mark.parametrize("builder", BUILDERS, ids=lambda b: b.__name__)
def test_bundled_model_lints_clean(builder):
    assert_strict_clean(builder())


relational_options = st.builds(
    RelationalModelOptions,
    allow_cross_products=st.booleans(),
    enable_nested_loops=st.booleans(),
    enable_filter_scan=st.booleans(),
    select_pushdown=st.booleans(),
    include_project=st.booleans(),
    max_merge_key_permutations=st.integers(1, 4),
).filter(lambda o: o.enable_nested_loops or not o.allow_cross_products)


@settings(max_examples=20, deadline=None)
@given(relational_options)
def test_relational_variants_lint_clean(options):
    assert_strict_clean(relational_model(options))


@settings(max_examples=10, deadline=None)
@given(
    relational_options,
    st.integers(2, 8),
)
def test_parallel_variants_lint_clean(relational, degree):
    options = ParallelModelOptions(degree=degree, relational=relational)
    assert_strict_clean(parallel_relational_model(options))


@settings(max_examples=10, deadline=None)
@given(relational_options, st.integers(1, 4))
def test_setops_variants_lint_clean(relational, permutations):
    options = SetOpsModelOptions(
        max_order_permutations=permutations, relational=relational
    )
    assert_strict_clean(setops_model(options))


@settings(max_examples=10, deadline=None)
@given(relational_options)
def test_oodb_variants_lint_clean(relational):
    assert_strict_clean(oodb_model(OodbModelOptions(relational=relational)))


@settings(max_examples=10, deadline=None)
@given(relational_options)
def test_aggregate_variants_lint_clean(relational):
    assert_strict_clean(aggregate_model(relational))
