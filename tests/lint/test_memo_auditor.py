"""MemoAuditor: silent on honest memos, loud on tampered ones."""

import dataclasses

import pytest

from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.lint import MemoAuditor
from repro.models.relational import relational_model
from repro.search.engine import VolcanoOptimizer
from repro.search.memo import Winner
from repro.search.tasks import TaskBasedOptimizer

from tests.helpers import chain_query, make_catalog


@pytest.fixture(scope="module")
def catalog():
    return make_catalog([("a", 1000), ("b", 5000), ("c", 200)])


def optimize(catalog, engine_cls=VolcanoOptimizer, required=None):
    optimizer = engine_cls(relational_model(), catalog)
    query = chain_query(["a", "b", "c"])
    if required is None:
        return optimizer.optimize(query)
    return optimizer.optimize(query, required)


@pytest.mark.parametrize("engine_cls", [VolcanoOptimizer, TaskBasedOptimizer])
def test_honest_runs_audit_clean(catalog, engine_cls):
    optimizer = engine_cls(relational_model(), catalog)
    auditor = MemoAuditor().attach(optimizer)
    optimizer.optimize(chain_query(["a", "b", "c"]))
    optimizer.optimize(chain_query(["a", "b"]), sorted_on("a.k"))
    assert auditor.audits == 2
    assert auditor.violations == []


def test_attach_runs_via_post_optimize_hook(catalog):
    optimizer = VolcanoOptimizer(relational_model(), catalog)
    auditor = MemoAuditor().attach(optimizer)
    assert auditor.audits == 0
    optimize_result = optimizer.optimize(chain_query(["a", "b"]))
    assert optimize_result is not None
    assert auditor.audits == 1


def test_results_without_memo_audit_clean(catalog):
    result = dataclasses.replace(optimize(catalog), memo=None)
    assert MemoAuditor().audit(result) == []


def _some_winner_entry(memo):
    for group in memo.groups():
        for key, winner in group.winners.items():
            return group, key, winner
    raise AssertionError("no winners in memo")


def test_merge_cycle_detected(catalog):
    result = optimize(catalog)
    memo = result.memo
    ids = [gid for gid in memo._groups][:2]
    memo._groups[ids[0]].merged_into = ids[1]
    memo._groups[ids[1]].merged_into = ids[0]
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M001" in codes


def test_winner_goal_mismatch_detected(catalog):
    result = optimize(catalog, required=sorted_on("a.k"))
    root = result.memo.group(result.root_group)
    for key, winner in list(root.winners.items()):
        if not key[0].is_any:
            bad_plan = dataclasses.replace(winner.plan, properties=ANY_PROPS)
            root.winners[key] = Winner(bad_plan, winner.cost)
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M002" in codes


def test_winner_cost_mismatch_detected(catalog):
    result = optimize(catalog)
    group, key, winner = _some_winner_entry(result.memo)
    group.winners[key] = Winner(winner.plan, winner.cost + winner.cost)
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M003" in codes


def test_nonmonotonic_plan_cost_detected(catalog):
    result = optimize(catalog)
    plan = result.plan
    assert plan.inputs, "root plan should have inputs"
    inflated_child = dataclasses.replace(
        plan.inputs[0], cost=plan.cost + plan.cost
    )
    bad_plan = dataclasses.replace(
        plan, inputs=(inflated_child,) + plan.inputs[1:]
    )
    root = result.memo.group(result.root_group)
    for key, winner in list(root.winners.items()):
        root.winners[key] = Winner(bad_plan, winner.cost)
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M004" in codes


def test_non_minimal_winner_detected(catalog):
    result = optimize(catalog)
    root = result.memo.group(result.root_group)
    ((key, winner),) = [
        (key, winner)
        for key, winner in root.winners.items()
        if key[1] is None and key[0].is_any
    ]
    # Plant a second, cheaper winner whose plan also satisfies ANY.
    cheaper = Winner(
        dataclasses.replace(winner.plan, cost=winner.cost - winner.cost),
        winner.cost - winner.cost,
    )
    root.winners[(sorted_on("a.k"), None)] = cheaper
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M005" in codes


def test_shadowing_failure_detected(catalog):
    result = optimize(catalog)
    root = result.memo.group(result.root_group)
    _, winner = next(iter(root.winners.items()))
    # Claim ANY failed at a limit far above the achieved winner cost.
    root.failures[(ANY_PROPS, None)] = winner.cost + winner.cost
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M006" in codes


def test_excluded_region_failures_are_not_shadowed(catalog):
    result = optimize(catalog)
    root = result.memo.group(result.root_group)
    _, winner = next(iter(root.winners.items()))
    # The winner's own properties fall inside the excluded vector, so it
    # could never have satisfied this goal: no violation.
    excluded = winner.plan.properties
    root.failures[(ANY_PROPS, excluded)] = winner.cost + winner.cost
    codes = [v.code for v in MemoAuditor().audit(result)]
    assert "M006" not in codes


def test_root_requirement_mismatch_detected(catalog):
    result = optimize(catalog)
    bad = dataclasses.replace(result, required=sorted_on("no.such"))
    codes = [v.code for v in MemoAuditor().audit(bad)]
    assert "M007" in codes


def test_figure4_smoke_run_audits_clean():
    from repro.bench.figure4 import Figure4Config, run_figure4

    config = Figure4Config(sizes=(2, 3), queries_per_size=3)
    result = run_figure4(config)
    assert sum(row.audit_violations for row in result.rows) == 0
