"""Every lint check fires on its purpose-built broken fixture."""

import pytest

from repro.lint import Severity, lint_spec

from tests.lint import fixture_specs

EXPECTED = [
    ("broken_duplicate_names", "V001"),
    ("broken_unknown_pattern_operator", "V002"),
    ("broken_arity_mismatch", "V003"),
    ("broken_unknown_algorithm", "V004"),
    ("broken_missing_parts", "V005"),
    ("broken_dropped_binding", "V006"),
    ("broken_rewrite_unknown_operator", "V007"),
    ("broken_nonfinite_promise", "V010"),
    ("broken_unimplementable_operator", "V101"),
    ("broken_enforcer_gap", "V104"),
    ("broken_growing_cycle", "V201"),
    ("broken_zero_cost", "V301"),
    ("broken_enforcer_overpromise", "V401"),
    ("broken_enforcer_no_relaxation", "V402"),
]


def test_clean_base_spec_has_no_diagnostics():
    assert lint_spec(fixture_specs.clean_spec()).codes() == ()


@pytest.mark.parametrize("builder_name,code", EXPECTED)
def test_broken_spec_fires_expected_code(builder_name, code):
    spec = getattr(fixture_specs, builder_name)()
    report = lint_spec(spec)
    assert code in report.codes(), (
        f"{builder_name} should raise {code}, got {report.codes()}"
    )


@pytest.mark.parametrize(
    "builder_name,code",
    [(name, code) for name, code in EXPECTED if not code.startswith("V2")
     and code not in ("V006",)],
)
def test_error_fixtures_fail_without_strict(builder_name, code):
    spec = getattr(fixture_specs, builder_name)()
    assert lint_spec(spec).fails(strict=False)


def test_warning_fixtures_fail_only_under_strict():
    for builder_name in ("broken_dropped_binding", "broken_growing_cycle"):
        report = lint_spec(getattr(fixture_specs, builder_name)())
        assert report.worst() == Severity.WARNING
        assert not report.fails(strict=False)
        assert report.fails(strict=True)


def test_dead_algorithm_is_a_warning():
    spec = fixture_specs.clean_spec()
    spec.add_algorithm(fixture_specs._any_input_algorithm("unused", 2, 9.0))
    report = lint_spec(spec)
    assert "V103" in report.codes()
    assert report.worst() == Severity.WARNING


def test_operator_implemented_through_rewrite_is_not_flagged():
    # An operator with no implementation rule of its own is fine when a
    # probeable transformation rewrites it into an implementable one.
    from repro.algebra.expressions import LogicalExpression
    from repro.model.patterns import AnyPattern, OpPattern
    from repro.model.rules import TransformationRule
    from repro.model.spec import LogicalOperatorDef

    spec = fixture_specs.clean_spec()
    spec.add_operator(
        LogicalOperatorDef("alias", 2, fixture_specs._combine_props)
    )
    spec.add_transformation(
        TransformationRule(
            "alias_to_combine",
            OpPattern("alias", (AnyPattern("l"), AnyPattern("r")), args_as="a"),
            lambda binding, context: LogicalExpression(
                "combine", ((),), (binding["l"], binding["r"])
            ),
        )
    )
    report = lint_spec(spec)
    assert "V101" not in report.codes()
