"""The documentation lists every diagnostic code the linter can emit."""

from pathlib import Path

from repro.lint import CODE_REGISTRY

DOC = Path(__file__).resolve().parents[2] / "docs" / "writing-a-model.md"


def test_every_code_is_documented():
    text = DOC.read_text()
    missing = [code for code in CODE_REGISTRY if f"`{code}`" not in text]
    assert not missing, f"codes absent from writing-a-model.md: {missing}"


def test_codes_are_stable_and_well_formed():
    for code, info in CODE_REGISTRY.items():
        assert code == info.code
        assert code[0] in "VMP"
        assert code[1:].isdigit() and len(code) == 4
        assert info.title and info.hint
