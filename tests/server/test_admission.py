"""Admission control: bounded concurrency, fast-fail, graceful drain."""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import AdmissionError
from repro.options import ServerOptions
from repro.server import (
    AdmissionController,
    ClientError,
    OptimizerServer,
    ServerClient,
    ServerThread,
)

from tests.server.conftest import CHAIN_SQL, PAIR_SQL


def options(**overrides) -> ServerOptions:
    defaults = dict(max_concurrent=1, max_queue_depth=1,
                    queue_timeout_seconds=5.0)
    defaults.update(overrides)
    return ServerOptions(**defaults)


# ---------------------------------------------------------------- unit


def test_grants_up_to_max_concurrent():
    async def scenario():
        ctrl = AdmissionController(options(max_concurrent=2))
        await ctrl.acquire()
        await ctrl.acquire()
        assert ctrl.active == 2
        ctrl.release()
        ctrl.release()
        assert ctrl.active == 0
        assert ctrl.counters()["admitted"] == 2

    asyncio.run(scenario())


def test_queue_full_fast_fails():
    async def scenario():
        ctrl = AdmissionController(options(max_queue_depth=0))
        await ctrl.acquire()
        with pytest.raises(AdmissionError) as caught:
            await ctrl.acquire()
        assert caught.value.reason == "queue_full"
        assert caught.value.status == 429
        assert ctrl.counters()["rejected_busy"] == 1

    asyncio.run(scenario())


def test_queue_wait_times_out():
    async def scenario():
        ctrl = AdmissionController(options())
        await ctrl.acquire()
        with pytest.raises(AdmissionError) as caught:
            await ctrl.acquire(timeout=0.05)
        assert caught.value.reason == "timeout"
        assert ctrl.queued == 0  # the expired waiter left the queue
        assert ctrl.counters()["rejected_timeout"] == 1

    asyncio.run(scenario())


def test_release_transfers_slot_to_oldest_waiter():
    async def scenario():
        ctrl = AdmissionController(options(max_queue_depth=2))
        await ctrl.acquire()
        order = []

        async def waiter(name):
            await ctrl.acquire()
            order.append(name)

        first = asyncio.ensure_future(waiter("first"))
        await asyncio.sleep(0)  # let "first" enqueue before "second"
        second = asyncio.ensure_future(waiter("second"))
        await asyncio.sleep(0)
        assert ctrl.queued == 2
        ctrl.release()
        await first
        ctrl.release()
        await second
        assert order == ["first", "second"]
        assert ctrl.active == 1  # the last transfer is still held
        ctrl.release()
        assert ctrl.active == 0

    asyncio.run(scenario())


def test_drain_waits_for_active_work():
    async def scenario():
        ctrl = AdmissionController(options())
        assert await ctrl.drain(timeout=0.01)  # idle: already drained
        await ctrl.acquire()
        assert not await ctrl.drain(timeout=0.05)  # holder still active

        async def finish_later():
            await asyncio.sleep(0.05)
            ctrl.release()

        task = asyncio.ensure_future(finish_later())
        assert await ctrl.drain(timeout=2.0)
        await task

    asyncio.run(scenario())


# ------------------------------------------------------- through HTTP


def wait_for_active_slot(probe: ServerClient, deadline: float = 5.0) -> None:
    """Block until the server reports an optimization holding a slot.

    ``/stats`` is never admitted through the controller, so it works
    even while the server is saturated — which is exactly when we need
    it.
    """
    waited = 0.0
    while waited < deadline:
        if probe.stats()["admission"]["active"] >= 1:
            return
        time.sleep(0.01)
        waited += 0.01
    raise AssertionError("slow request never occupied a slot")


def test_server_fast_fails_when_saturated(service, counting):
    """One slot, no queue: a second distinct query gets a 429."""
    counting.delay_seconds = 1.0
    server = OptimizerServer(
        service, options=options(max_queue_depth=0, workers=2)
    )
    with ServerThread(server) as harness:
        def slow():
            with ServerClient(harness.address) as c:
                return c.optimize(CHAIN_SQL)

        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(slow)
            with ServerClient(harness.address) as fast:
                wait_for_active_slot(fast)
                with pytest.raises(ClientError) as caught:
                    fast.optimize(PAIR_SQL)
                assert caught.value.status == 429
                assert caught.value.reason == "queue_full"
                assert fast.stats()["admission"]["rejected_busy"] >= 1
            assert future.result()["cost_total"] > 0


def test_server_queue_timeout_maps_to_429(service, counting):
    counting.delay_seconds = 1.0
    server = OptimizerServer(
        service,
        options=options(max_queue_depth=4, queue_timeout_seconds=0.05,
                        workers=2),
    )
    with ServerThread(server) as harness:
        def slow():
            with ServerClient(harness.address) as c:
                return c.optimize(CHAIN_SQL)

        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(slow)
            with ServerClient(harness.address) as fast:
                wait_for_active_slot(fast)
                with pytest.raises(ClientError) as caught:
                    fast.optimize(PAIR_SQL)
                assert caught.value.status == 429
                assert caught.value.reason == "timeout"
            assert future.result()["cost_total"] > 0


def test_shutdown_drains_in_flight_requests(service, counting):
    """A request admitted before shutdown still gets its 200."""
    counting.delay_seconds = 0.4
    server = OptimizerServer(service, options=options(workers=2))
    harness = ServerThread(server)
    harness.start()
    try:
        def slow():
            with ServerClient(harness.address) as c:
                return c.optimize(CHAIN_SQL)

        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(slow)
            with ServerClient(harness.address) as probe:
                wait_for_active_slot(probe)
            harness.stop()
            answer = future.result(timeout=10.0)
            assert answer["cost_total"] > 0
            assert not answer["cached"]
    finally:
        harness.stop()
