"""Shared fixtures for the optimizer-server tests.

Everything is built on the canonical drift scenario
(:func:`repro.feedback.drifted_workload`): a three-table executable
catalog whose plans, costs, and q-errors are seeded and deterministic,
so the tests can assert on guard decisions and counters exactly.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.feedback import drifted_workload
from repro.generator.generate import generate_optimizer
from repro.models.relational import relational_model
from repro.options import ServerOptions
from repro.server import OptimizerServer, ServerClient, ServerThread
from repro.service import OptimizerService, ServiceOptions

CHAIN_SQL = "SELECT * FROM r, s, t WHERE r.k = s.k AND s.k = t.k"
PAIR_SQL = "SELECT * FROM r, s WHERE r.k = s.k"
RANGE_SQL = "SELECT * FROM r WHERE r.v <= 40"


class CountingOptimizer:
    """Delegating wrapper that counts (and can slow down) engine runs.

    Everything except ``optimize`` passes straight through, so the
    service sees an ordinary engine; the tests see exactly how many
    optimizations actually ran.
    """

    def __init__(self, inner, delay_seconds: float = 0.0):
        self._inner = inner
        self.delay_seconds = delay_seconds
        self.runs = 0
        self._lock = threading.Lock()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def optimize(self, *args, **kwargs):
        with self._lock:
            self.runs += 1
        if self.delay_seconds:
            time.sleep(self.delay_seconds)
        return self._inner.optimize(*args, **kwargs)


@pytest.fixture
def scenario():
    return drifted_workload()


@pytest.fixture
def counting(scenario):
    return CountingOptimizer(
        generate_optimizer(relational_model(), scenario.catalog)
    )


@pytest.fixture
def service(counting):
    return OptimizerService(counting, options=ServiceOptions(verify_plans=True))


@pytest.fixture
def server(service):
    return OptimizerServer(
        service,
        options=ServerOptions(max_concurrent=8, workers=8, verify_pins=True),
    )


@pytest.fixture
def harness(server):
    with ServerThread(server) as running:
        yield running


@pytest.fixture
def client(harness):
    with ServerClient(harness.address) as connected:
        yield connected


def corrupt_join_keys(client) -> None:
    """Seed the regressing refresh: join keys claimed non-selective.

    Claiming one distinct value for ``r.k`` and ``s.k`` makes every
    join estimate balloon (~29x on the chain join) and flips the chosen
    plan's structure — a refresh the guard must roll back when the
    incumbent's observed q-error says its estimates were accurate.
    """
    client.update_statistics(
        "r", {"columns": {"r.k": {"distinct_values": 1}}}
    )
    client.update_statistics(
        "s", {"columns": {"s.k": {"distinct_values": 1}}}
    )
