"""Single-flight deduplication: one engine run per concurrent cold key.

The acceptance proof for the server's concurrency story: M requests
for the same cold fingerprint arriving together cost exactly ONE
optimization — the leader runs the engine, the other M−1 wait on its
flight and share the answer byte for byte.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.service import SingleFlight

from tests.server.conftest import CHAIN_SQL

M = 8


def test_concurrent_cold_requests_run_engine_once(service, counting):
    """M≥8 concurrent cold misses → 1 engine run, M−1 shared waits."""
    counting.delay_seconds = 0.25
    prepared = service.prepare(CHAIN_SQL)
    barrier = threading.Barrier(M)

    def request():
        barrier.wait()
        return service.optimize(prepared)

    with ThreadPoolExecutor(max_workers=M) as pool:
        results = [future.result() for future in
                   [pool.submit(request) for _ in range(M)]]

    assert counting.runs == 1
    # Byte-identical plans for every requester.
    renderings = {served.plan.pretty() for served in results}
    assert len(renderings) == 1
    leaders = [served for served in results if not served.cached]
    followers = [served for served in results if served.cached]
    assert len(leaders) == 1 and len(followers) == M - 1
    stats = service.stats
    assert stats.shared_waits == M - 1
    assert stats.misses == M  # every thread's own lookup missed
    assert stats.insertions == 1  # the leader cached exactly once


def test_followers_after_flight_hit_cache(service, counting):
    """Sequential requests after the flight resolve via the cache."""
    service.optimize(CHAIN_SQL)
    again = service.optimize(CHAIN_SQL)
    assert counting.runs == 1
    assert again.cached and not again.parameterized


def test_leader_exception_shared_then_retryable():
    flight: SingleFlight[int] = SingleFlight()
    barrier = threading.Barrier(2)
    boom = RuntimeError("engine exploded")

    def failing():
        barrier.wait()
        raise boom

    errors = []

    def leader():
        try:
            flight.do("k", failing)
        except RuntimeError as error:
            errors.append(error)

    def follower():
        barrier.wait()
        try:
            flight.do("k", lambda: 42)
        except RuntimeError as error:
            errors.append(error)

    t1 = threading.Thread(target=leader)
    t1.start()
    t2 = threading.Thread(target=follower)
    t2.start()
    t1.join()
    t2.join()
    # Either both saw the leader's exception, or the follower arrived
    # after the flight retired and computed fresh — both are legal; what
    # is guaranteed is the leader's error propagated and the key retries.
    assert boom in errors
    assert flight.inflight() == 0
    value, was_leader = flight.do("k", lambda: 7)
    assert value == 7 and was_leader


def test_distinct_keys_do_not_deduplicate():
    flight: SingleFlight[str] = SingleFlight()
    a, leader_a = flight.do("a", lambda: "a")
    b, leader_b = flight.do("b", lambda: "b")
    assert (a, b) == ("a", "b")
    assert leader_a and leader_b


def test_follower_sees_degraded_leader_as_uncached(service, counting):
    """A degraded (budget-tripped) shared answer is not billed as a hit."""
    from repro.options import ResourceBudget

    counting.delay_seconds = 0.25
    budget = ResourceBudget(max_costings=1)
    barrier = threading.Barrier(2)
    prepared = service.prepare(CHAIN_SQL)

    def request():
        barrier.wait()
        return service.optimize(prepared, budget=budget)

    with ThreadPoolExecutor(max_workers=2) as pool:
        first, second = [f.result() for f in
                         [pool.submit(request) for _ in range(2)]]
    assert counting.runs == 1
    for served in (first, second):
        assert served.degraded
        assert not served.cached  # degraded answers are never "hits"
