"""Unit tests for the plan registry: pins, evidence, regression guard."""

from __future__ import annotations

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import ANY_PROPS
from repro.models.relational import get, join
from repro.options import ServerOptions
from repro.server import PlanRegistry, stable_key
from repro.algebra.predicates import eq


def plan(table: str = "r") -> PhysicalPlan:
    return PhysicalPlan("file_scan", (table, table))


def other_plan() -> PhysicalPlan:
    return PhysicalPlan(
        "merge_join", (eq("r.k", "s.k"),), (plan("r"), plan("s"))
    )


def registry(**overrides) -> PlanRegistry:
    defaults = dict(guard_threshold=1.5, guard_slack_cap=16.0)
    defaults.update(overrides)
    return PlanRegistry(options=ServerOptions(**defaults))


def test_stable_key_survives_statistics_versions():
    # Unlike cache fingerprints, the stable key has no version inputs:
    # it is a pure function of (expression, props).
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    assert stable_key(query, ANY_PROPS) == stable_key(query, ANY_PROPS)
    assert stable_key(get("r"), ANY_PROPS) != stable_key(get("s"), ANY_PROPS)


def test_pin_unpin_roundtrip():
    reg = registry()
    pin = reg.pin("k1", plan(), 10.0, ANY_PROPS, reason="test")
    assert reg.pinned("k1") is pin
    assert pin.kind == "user"
    lifted = reg.unpin("k1")
    assert lifted is pin
    assert reg.pinned("k1") is None
    assert reg.unpin("k1") is None
    kinds = [event.kind for event in reg.events()]
    assert kinds == ["pin", "unpin"]


def test_first_answer_adopts():
    reg = registry()
    decision = reg.admit("k", plan(), 10.0, ANY_PROPS)
    assert decision.action == "adopt"
    assert reg.incumbent("k").cost_total == 10.0


def test_same_plan_retains_evidence_and_moves_baseline():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    assert reg.observe("k", plan(), max_q_error=3.0)
    decision = reg.admit("k", plan(), 12.0, ANY_PROPS, statistics_version=5)
    assert decision.action == "retain"
    incumbent = reg.incumbent("k")
    assert incumbent.cost_total == 12.0
    assert incumbent.observed_q_error == 3.0


def test_refresh_without_evidence_is_accepted():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    decision = reg.admit("k", other_plan(), 1000.0, ANY_PROPS)
    assert decision.action == "refresh"
    assert reg.incumbent("k").cost_total == 1000.0


def test_regression_rolls_back_and_pins_incumbent():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    reg.observe("k", plan(), max_q_error=1.0)
    # allowance = 10 * 1.5 * 1.0 = 15; a 100-cost refresh regresses.
    decision = reg.admit("k", other_plan(), 100.0, ANY_PROPS)
    assert decision.action == "rollback"
    assert decision.plan == plan()
    assert decision.cost_total == 10.0
    assert decision.allowed == 15.0
    pinned = reg.pinned("k")
    assert pinned is not None and pinned.kind == "rollback"
    assert reg.quarantined("k").cost_total == 100.0
    assert reg.counters()["rollbacks"] == 1
    assert any(event.kind == "rollback" for event in reg.events())
    # The incumbent still stands.
    assert reg.incumbent("k").cost_total == 10.0


def test_observed_q_error_widens_the_allowance():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    # Estimates were observed off by 8x: genuine drift territory.
    reg.observe("k", plan(), max_q_error=8.0)
    # allowance = 10 * 1.5 * 8 = 120 — a 100-cost refresh is honest.
    decision = reg.admit("k", other_plan(), 100.0, ANY_PROPS)
    assert decision.action == "refresh"
    # Evidence resets for the new incumbent.
    assert reg.incumbent("k").observed_q_error is None


def test_slack_is_capped():
    reg = registry(guard_slack_cap=4.0)
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    reg.observe("k", plan(), max_q_error=1000.0)
    # allowance = 10 * 1.5 * min(1000, 4) = 60 < 100 → rollback.
    decision = reg.admit("k", other_plan(), 100.0, ANY_PROPS)
    assert decision.action == "rollback"


def test_guard_off_always_adopts():
    reg = registry(guard_plans=False)
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    reg.observe("k", plan(), max_q_error=1.0)
    decision = reg.admit("k", other_plan(), 10_000.0, ANY_PROPS)
    assert decision.action == "adopt"


def test_observe_ignores_foreign_plans():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    assert not reg.observe("k", other_plan(), max_q_error=9.0)
    assert reg.incumbent("k").observed_q_error is None
    assert not reg.observe("unknown", plan(), max_q_error=9.0)


def test_worst_q_error_wins():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    reg.observe("k", plan(), max_q_error=4.0)
    reg.observe("k", plan(), max_q_error=2.0)
    assert reg.incumbent("k").observed_q_error == 4.0


def test_unpin_clears_quarantine():
    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    reg.observe("k", plan(), max_q_error=1.0)
    reg.admit("k", other_plan(), 100.0, ANY_PROPS)
    assert reg.quarantined("k") is not None
    reg.unpin("k")
    assert reg.quarantined("k") is None


def test_state_is_json_ready():
    import json

    reg = registry()
    reg.admit("k", plan(), 10.0, ANY_PROPS)
    reg.observe("k", plan(), max_q_error=1.0)
    reg.admit("k", other_plan(), 100.0, ANY_PROPS)
    state = reg.state()
    encoded = json.loads(json.dumps(state))
    assert encoded["counters"]["rollbacks"] == 1
    assert encoded["pins"][0]["kind"] == "rollback"
    assert encoded["quarantined"][0]["cost_total"] == 100.0
