"""End-to-end tests over the wire: optimize, prepare/bind, pins, guard."""

from __future__ import annotations

import http.client
from urllib.parse import urlsplit

import pytest

from repro.generator.generate import generate_optimizer
from repro.models.relational import relational_model
from repro.options import ServerOptions
from repro.search.tasks import TaskBasedOptimizer
from repro.server import ClientError, OptimizerServer, ServerClient, ServerThread
from repro.service import OptimizerService, ServiceOptions

from tests.server.conftest import (
    CHAIN_SQL,
    PAIR_SQL,
    corrupt_join_keys,
)

POINT_SQL = "SELECT * FROM r WHERE r.k = 7"


# ------------------------------------------------------------ plumbing


def test_health(client):
    health = client.health()
    assert health["ok"] is True
    assert "default" in health["engines"]
    assert health["statistics_version"] >= 0


def test_unknown_endpoint_is_404(client):
    with pytest.raises(ClientError) as caught:
        client.request("GET", "/nope")
    assert caught.value.status == 404


def test_wrong_method_is_405(client):
    with pytest.raises(ClientError) as caught:
        client.request("GET", "/optimize")
    assert caught.value.status == 405


def test_missing_field_is_400(client):
    with pytest.raises(ClientError) as caught:
        client.request("POST", "/optimize", {"not_sql": 1})
    assert caught.value.status == 400


def test_malformed_json_is_400(harness):
    parts = urlsplit(harness.address)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=10.0
    )
    try:
        connection.request(
            "POST",
            "/optimize",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        response.read()
        assert response.status == 400
    finally:
        connection.close()


def test_bad_sql_is_400(client):
    with pytest.raises(ClientError) as caught:
        client.optimize("SELECT * FROM nowhere")
    assert caught.value.status == 400


# ----------------------------------------------------- optimize / hints


def test_cold_then_warm_optimize(client):
    cold = client.optimize(CHAIN_SQL)
    assert not cold["cached"]
    assert not cold["degraded"]
    assert cold["cost_total"] > 0
    assert cold["verified"] is True  # verify_plans=True in the fixture
    warm = client.optimize(CHAIN_SQL)
    assert warm["cached"]
    assert warm["sexpr"] == cold["sexpr"]
    assert warm["key"] == cold["key"]


def test_kernel_and_promise_hints_keep_the_plan(client):
    baseline = client.optimize(CHAIN_SQL)
    specialized = client.optimize(PAIR_SQL, kernel="specialized")
    static = client.optimize(PAIR_SQL, promise="static")
    assert specialized["cost_total"] > 0
    assert static["sexpr"] == specialized["sexpr"]
    assert baseline["sexpr"] != specialized["sexpr"]  # different queries


def test_bad_kernel_hint_is_400(client):
    with pytest.raises(ClientError) as caught:
        client.optimize(CHAIN_SQL, kernel="imaginary")
    assert caught.value.status == 400


def test_unknown_engine_hint_is_400(client):
    with pytest.raises(ClientError) as caught:
        client.optimize(CHAIN_SQL, engine="imaginary")
    assert caught.value.status == 400


def test_engine_hint_routes_to_shared_cache(scenario):
    """A task-engine request hits the plan the default engine cached."""
    primary = OptimizerService(
        generate_optimizer(relational_model(), scenario.catalog),
        options=ServiceOptions(verify_plans=True),
    )
    task = OptimizerService(
        TaskBasedOptimizer(relational_model(), scenario.catalog),
        options=ServiceOptions(verify_plans=True),
    )
    server = OptimizerServer(
        primary,
        options=ServerOptions(max_concurrent=8, workers=8),
        engines={"task": task},
    )
    with ServerThread(server) as harness:
        with ServerClient(harness.address) as client:
            cold = client.optimize(CHAIN_SQL)
            assert not cold["cached"]
            via_task = client.optimize(CHAIN_SQL, engine="task")
            assert via_task["cached"]  # both engines share one cache
            assert via_task["sexpr"] == cold["sexpr"]


# ------------------------------------------------------- prepare / bind


def test_prepare_bind_roundtrip(client):
    prepared = client.prepare(POINT_SQL)
    assert prepared["statement"].startswith("stmt-")
    assert prepared["parameterized"]
    assert prepared["parameters"] == {"p0": 7}

    first = client.bind(prepared["statement"], {"p0": 9})
    assert not first["cached"]
    assert first["parameters"] == {"p0": 9}
    # A different equality literal shares the selectivity bucket, so the
    # second bind is a parameterized template hit — no engine run.
    second = client.bind(prepared["statement"], {"p0": 11})
    assert second["cached"] and second["parameterized"]
    assert second["sexpr"] != first["sexpr"]  # literals differ
    assert second["cost_total"] == first["cost_total"]

    # Unbound parameters fall back to the prepared literals.
    default = client.bind(prepared["statement"])
    assert default["parameters"] == {"p0": 7}


def test_bind_unknown_statement_is_404(client):
    with pytest.raises(ClientError) as caught:
        client.bind("stmt-doesnotexist", {"p0": 1})
    assert caught.value.status == 404


def test_bind_unknown_parameter_is_400(client):
    prepared = client.prepare(POINT_SQL)
    with pytest.raises(ClientError) as caught:
        client.bind(prepared["statement"], {"p9": 1})
    assert caught.value.status == 400


# --------------------------------------------------------------- batch


def test_batch_then_cached_batch(client):
    first = client.batch([CHAIN_SQL, PAIR_SQL])
    assert len(first["results"]) == 2
    assert all(r["cost_total"] > 0 for r in first["results"])
    again = client.batch([CHAIN_SQL, PAIR_SQL])
    assert all(r["cached"] for r in again["results"])
    for before, after in zip(first["results"], again["results"]):
        assert after["sexpr"] == before["sexpr"]


# ------------------------------------------------------ pinning / guard


def test_pin_survives_statistics_bump_until_unpinned(client):
    cold = client.optimize(CHAIN_SQL)
    pin = client.pin(CHAIN_SQL, reason="latency SLO")
    assert pin["pinned"] and pin["verified"]

    before = client.health()["statistics_version"]
    bumped = client.update_statistics(
        "t", {"columns": {"t.v": {"distinct_values": 123.0}}}
    )
    assert bumped["statistics_version"] > before

    served = client.optimize(CHAIN_SQL)
    assert served["pinned"]
    assert served["sexpr"] == cold["sexpr"]  # the pin, not a re-optimization

    lifted = client.unpin(sql=CHAIN_SQL)
    assert lifted["unpinned"] and lifted["kind"] == "user"
    fresh = client.optimize(CHAIN_SQL)
    assert not fresh["pinned"]

    registry = client.plans()
    assert registry["counters"]["pinned_hits"] >= 1
    assert [e["kind"] for e in registry["events"]].count("pin") >= 1


def test_unpin_without_pin_is_404(client):
    with pytest.raises(ClientError) as caught:
        client.unpin(sql=CHAIN_SQL)
    assert caught.value.status == 404


def test_pin_refuses_degraded_plan(client):
    with pytest.raises(ClientError) as caught:
        client.pin(CHAIN_SQL, budget={"max_costings": 1})
    assert caught.value.status == 409


def test_regression_guard_rolls_back_seeded_refresh(client):
    """The acceptance scenario: a statistics lie must not evict a good plan."""
    executed = client.execute(CHAIN_SQL)  # adopt + observe real q-error
    assert executed["max_q_error"] is not None
    incumbent_sexpr = executed["sexpr"]

    corrupt_join_keys(client)

    served = client.optimize(CHAIN_SQL)
    assert served["guard"] is not None
    assert served["guard"]["action"] == "rollback"
    assert served["pinned"]
    assert served["sexpr"] == incumbent_sexpr  # incumbent still served

    stats = client.stats()
    registry = stats["registry"]
    assert registry["counters"]["rollbacks"] == 1
    assert any(e["kind"] == "rollback" for e in registry["events"])
    assert registry["quarantined"], "candidate plan was not quarantined"
    worst = registry["quarantined"][0]
    assert worst["cost_total"] > worst["allowed"]

    # Follow-up requests serve the rollback pin without re-optimizing.
    again = client.optimize(CHAIN_SQL)
    assert again["pinned"]
    assert again["sexpr"] == incumbent_sexpr
    assert [p["kind"] for p in registry["pins"]] == ["rollback"]


# --------------------------------------------------------------- stats


def test_stats_shape_and_verification_clean(client):
    client.optimize(CHAIN_SQL)
    client.optimize(CHAIN_SQL)
    stats = client.stats()
    assert set(stats) == {
        "cache", "cache_entries", "admission", "registry", "server",
    }
    assert stats["cache"]["hits"] >= 1
    assert stats["cache"]["verify_violations"] == 0
    assert stats["cache_entries"] >= 1
    assert stats["server"]["requests"] >= 3
    assert stats["admission"]["admitted"] >= 1
