"""Unit tests for the Volcano iterators (open/next/close protocol)."""

import pytest

from repro.algebra.predicates import Comparison, ComparisonOp, col, eq, lit
from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics
from repro.errors import ExecutionError
from repro.executor.iterators import (
    Exchange,
    FileScan,
    Filter,
    FilterScan,
    HashAggregate,
    HashDistinct,
    HashJoin,
    MergeExcept,
    MergeIntersect,
    MergeJoin,
    NestedLoopsJoin,
    Project,
    Sort,
    SortedAggregate,
    UnionAll,
)
from repro.executor.runtime import ExecutionContext


def make_context(tables):
    """Catalog + context from {name: rows(list of dicts)}."""
    catalog = Catalog()
    for name, rows in tables.items():
        columns = tuple(rows[0].keys()) if rows else (f"{name}.k",)
        catalog.add_table(
            name,
            Schema.of(*columns),
            TableStatistics(len(rows), 100),
            rows=rows,
        )
    return ExecutionContext(catalog)


R_ROWS = [{"r.k": k % 3, "r.v": k} for k in range(6)]
S_ROWS = [{"s.k": k % 3, "s.w": 10 + k} for k in range(3)]


@pytest.fixture
def context():
    return make_context({"r": R_ROWS, "s": S_ROWS})


def test_file_scan_emits_all_rows(context):
    rows = FileScan(context, "r").drain()
    assert rows == R_ROWS
    assert context.stats.rows_scanned == 6


def test_file_scan_counts_pages(context):
    # 6 rows of 100 bytes, 40 rows per 4096-byte page → 1 page.
    FileScan(context, "r").drain()
    assert context.stats.pages_read == 1


def test_file_scan_alias_renames_columns(context):
    scan = FileScan(context, "r", alias="x")
    assert scan.output_columns == ("x.r.k", "x.r.v")
    rows = scan.drain()
    assert rows[0]["x.r.k"] == 0


def test_file_scan_requires_rows():
    catalog = Catalog()
    catalog.add_table("empty", Schema.of("e.k"), TableStatistics(5, 100))
    with pytest.raises(ExecutionError):
        FileScan(ExecutionContext(catalog), "empty")


def test_open_twice_rejected(context):
    scan = FileScan(context, "r")
    scan.open()
    with pytest.raises(ExecutionError):
        scan.open()


def test_next_before_open_rejected(context):
    with pytest.raises(ExecutionError):
        FileScan(context, "r").next()


def test_filter(context):
    rows = Filter(context, FileScan(context, "r"), eq("r.k", 1)).drain()
    assert [row["r.v"] for row in rows] == [1, 4]


def test_filter_scan(context):
    rows = FilterScan(context, "r", None, eq("r.k", 1)).drain()
    assert [row["r.v"] for row in rows] == [1, 4]


def test_project(context):
    rows = Project(context, FileScan(context, "r"), ["r.v"]).drain()
    assert rows[0] == {"r.v": 0}


def test_project_missing_column(context):
    iterator = Project(context, FileScan(context, "r"), ["nope"])
    with pytest.raises(ExecutionError):
        iterator.drain()


def test_sort(context):
    rows = Sort(context, FileScan(context, "r"), ["r.k", "r.v"]).drain()
    keys = [(row["r.k"], row["r.v"]) for row in rows]
    assert keys == sorted(keys)
    assert context.stats.rows_sorted == 6
    assert context.stats.pages_written >= 1


def test_merge_join_with_duplicates(context):
    left = Sort(context, FileScan(context, "r"), ["r.k"])
    right = Sort(context, FileScan(context, "s"), ["s.k"])
    rows = MergeJoin(context, left, right, [("r.k", "s.k")]).drain()
    # Every r row matches exactly one s row here (s keys are unique).
    assert len(rows) == 6
    assert all(row["r.k"] == row["s.k"] for row in rows)


def test_merge_join_duplicate_groups_on_both_sides():
    rows_a = [{"a.k": 1}, {"a.k": 1}, {"a.k": 2}]
    rows_b = [{"b.k": 1}, {"b.k": 1}, {"b.k": 3}]
    context = make_context({"a": rows_a, "b": rows_b})
    result = MergeJoin(
        context, FileScan(context, "a"), FileScan(context, "b"), [("a.k", "b.k")]
    ).drain()
    assert len(result) == 4  # 2 × 2 matches on key 1


def test_hash_join(context):
    rows = HashJoin(
        context, FileScan(context, "r"), FileScan(context, "s"), [("r.k", "s.k")]
    ).drain()
    assert len(rows) == 6
    assert context.stats.hash_build_rows == 6
    assert context.stats.hash_probe_rows == 3


def test_hash_join_matches_merge_join(context):
    hashed = HashJoin(
        context, FileScan(context, "r"), FileScan(context, "s"), [("r.k", "s.k")]
    ).drain()
    merged = MergeJoin(
        context,
        Sort(context, FileScan(context, "r"), ["r.k"]),
        Sort(context, FileScan(context, "s"), ["s.k"]),
        [("r.k", "s.k")],
    ).drain()
    canonical = lambda rows: sorted(tuple(sorted(r.items())) for r in rows)
    assert canonical(hashed) == canonical(merged)


def test_nested_loops_join_arbitrary_predicate(context):
    predicate = Comparison(ComparisonOp.LT, col("r.v"), col("s.w"))
    rows = NestedLoopsJoin(
        context, FileScan(context, "r"), FileScan(context, "s"), predicate
    ).drain()
    assert all(row["r.v"] < row["s.w"] for row in rows)
    assert len(rows) == 18  # r.v in 0..5 all < s.w in 10..12


def test_hash_aggregate(context):
    rows = HashAggregate(
        context,
        FileScan(context, "r"),
        ["r.k"],
        [("n", "count", None), ("total", "sum", "r.v"), ("top", "max", "r.v")],
    ).drain()
    by_key = {row["r.k"]: row for row in rows}
    assert by_key[0] == {"r.k": 0, "n": 2, "total": 3, "top": 3}
    assert by_key[1]["total"] == 5
    assert len(rows) == 3


def test_sorted_aggregate_matches_hash_aggregate(context):
    hash_rows = HashAggregate(
        context, FileScan(context, "r"), ["r.k"], [("n", "count", None)]
    ).drain()
    sorted_rows = SortedAggregate(
        context,
        Sort(context, FileScan(context, "r"), ["r.k"]),
        ["r.k"],
        [("n", "count", None)],
    ).drain()
    assert sorted(map(str, hash_rows)) == sorted(map(str, sorted_rows))


def test_aggregate_avg_and_min(context):
    rows = HashAggregate(
        context,
        FileScan(context, "s"),
        [],
        [("lo", "min", "s.w"), ("mean", "avg", "s.w")],
    ).drain()
    assert rows == [{"lo": 10, "mean": 11.0}]


def test_unknown_aggregate_rejected(context):
    with pytest.raises(ExecutionError):
        HashAggregate(context, FileScan(context, "r"), [], [("x", "median", "r.v")])


def test_union_all(context):
    rows = UnionAll(
        context, [FileScan(context, "s"), FileScan(context, "s")]
    ).drain()
    assert len(rows) == 6


def test_hash_distinct():
    rows = [{"a.k": 1}, {"a.k": 1}, {"a.k": 2}]
    context = make_context({"a": rows})
    result = HashDistinct(context, FileScan(context, "a")).drain()
    assert len(result) == 2


def test_merge_intersect():
    rows_a = [{"a.k": 1}, {"a.k": 2}, {"a.k": 2}, {"a.k": 4}]
    rows_b = [{"b.k": 2}, {"b.k": 3}, {"b.k": 4}]
    context = make_context({"a": rows_a, "b": rows_b})
    result = MergeIntersect(
        context, FileScan(context, "a"), FileScan(context, "b"), [("a.k", "b.k")]
    ).drain()
    assert [row["a.k"] for row in result] == [2, 4]


def test_merge_except():
    rows_a = [{"a.k": 1}, {"a.k": 2}, {"a.k": 2}, {"a.k": 4}]
    rows_b = [{"b.k": 2}, {"b.k": 3}]
    context = make_context({"a": rows_a, "b": rows_b})
    result = MergeExcept(
        context, FileScan(context, "a"), FileScan(context, "b"), [("a.k", "b.k")]
    ).drain()
    assert [row["a.k"] for row in result] == [1, 4]


def test_exchange_preserves_rows(context):
    rows = Exchange(context, FileScan(context, "r"), ["r.k"], degree=4).drain()
    assert len(rows) == 6
    assert context.stats.exchanges == 6
    # All rows with the same key land in the same partition (contiguous).
    keys = [row["r.k"] for row in rows]
    seen = set()
    for key in keys:
        if key in seen:
            assert keys[keys.index(key):].count(key) >= 1
        seen.add(key)


def test_exchange_rejects_bad_degree(context):
    with pytest.raises(ExecutionError):
        Exchange(context, FileScan(context, "r"), ["r.k"], degree=0)


def test_operator_open_close_balance(context):
    Filter(context, FileScan(context, "r"), eq("r.k", 0)).drain()
    assert context.stats.operators_opened == context.stats.operators_closed == 2
