"""Tests for the OODB executor: plans with navigation and assembly run."""

import random

import pytest

from repro.algebra.predicates import eq
from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics
from repro.errors import ExecutionError
from repro.executor import ExecutionStats
from repro.executor.oodb import (
    execute_oodb_plan,
    register_oodb,
    _RESIDENT_KEY,
)
from repro.models.oodb import materialize, oodb_model
from repro.models.relational import get, select
from repro.search import VolcanoOptimizer


def build_catalog(employees=400, departments=20, seed=9):
    rng = random.Random(seed)
    catalog = Catalog()
    employee_rows = [
        {
            "employee.id": index,
            "employee.dept_ref": rng.randrange(departments),
            "employee.salary": rng.randrange(100),
        }
        for index in range(employees)
    ]
    department_rows = [
        {"department.id": index, "department.floor": index % 10}
        for index in range(departments)
    ]
    catalog.add_table(
        "employee",
        Schema.of("employee.id", "employee.dept_ref", "employee.salary"),
        TableStatistics(
            employees,
            100,
            columns={
                "employee.id": ColumnStatistics(employees),
                "employee.dept_ref": ColumnStatistics(departments),
                "employee.salary": ColumnStatistics(100, 0, 99),
            },
        ),
        rows=employee_rows,
    )
    catalog.add_table(
        "department",
        Schema.of("department.id", "department.floor"),
        TableStatistics(
            departments,
            100,
            columns={"department.id": ColumnStatistics(departments)},
        ),
        rows=department_rows,
    )
    return catalog


PATH = lambda source: materialize(source, "dept_ref", "department")


def reference_navigation(catalog, rows):
    departments = {
        row["department.id"]: row for row in catalog.table("department").rows
    }
    return [
        {**employee, **departments[employee["employee.dept_ref"]]}
        for employee in rows
        if employee["employee.dept_ref"] in departments
    ]


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


def canonical(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def test_full_extent_navigation_matches_reference(catalog):
    plan = VolcanoOptimizer(oodb_model(), catalog).optimize(PATH(get("employee"))).plan
    rows = execute_oodb_plan(plan, catalog)
    expected = reference_navigation(catalog, catalog.table("employee").rows)
    assert canonical(rows) == canonical(expected)


def test_resident_marker_never_leaks(catalog):
    plan = VolcanoOptimizer(oodb_model(), catalog).optimize(PATH(get("employee"))).plan
    rows = execute_oodb_plan(plan, catalog)
    assert all(_RESIDENT_KEY not in row for row in rows)


def test_assembly_charges_one_extent_scan(catalog):
    plan = VolcanoOptimizer(oodb_model(), catalog).optimize(PATH(get("employee"))).plan
    if "assembly" not in plan.algorithms_used():
        pytest.skip("optimizer chose pointer chasing for this catalog")
    stats = ExecutionStats()
    execute_oodb_plan(plan, catalog, stats)
    # Scans: the employee extent plus exactly one pass over departments.
    employee_pages = catalog.table("employee").statistics.pages(catalog.page_size)
    department_pages = catalog.table("department").statistics.pages(catalog.page_size)
    assert stats.pages_read == employee_pages + department_pages


def test_pointer_chase_charges_per_navigation():
    catalog = build_catalog(employees=50, departments=5000)
    query = PATH(select(get("employee"), eq("employee.salary", 7)))
    plan = VolcanoOptimizer(oodb_model(), catalog).optimize(query).plan
    assert "pointer_chase" in plan.algorithms_used()
    stats = ExecutionStats()
    rows = execute_oodb_plan(plan, catalog, stats)
    employee_pages = catalog.table("employee").statistics.pages(catalog.page_size)
    assert stats.pages_read == employee_pages + len(rows)


def test_both_strategies_agree(catalog):
    """pointer_chase and assembly+navigate compute identical results."""
    from repro.algebra.plans import PhysicalPlan

    base_plan = VolcanoOptimizer(oodb_model(), catalog).optimize(get("employee")).plan
    chase = PhysicalPlan("pointer_chase", ("dept_ref", "department"), (base_plan,))
    assembled = PhysicalPlan(
        "assembled_navigate",
        ("dept_ref", "department"),
        (PhysicalPlan("assembly", ("department",), (base_plan,)),),
    )
    assert canonical(execute_oodb_plan(chase, catalog)) == canonical(
        execute_oodb_plan(assembled, catalog)
    )


def test_navigate_without_assembly_fails(catalog):
    from repro.algebra.plans import PhysicalPlan

    base_plan = VolcanoOptimizer(oodb_model(), catalog).optimize(get("employee")).plan
    bare = PhysicalPlan(
        "assembled_navigate", ("dept_ref", "department"), (base_plan,)
    )
    with pytest.raises(ExecutionError):
        execute_oodb_plan(bare, catalog)


def test_dangling_references_skipped():
    catalog = build_catalog(employees=30, departments=10)
    # Break some references.
    for row in catalog.table("employee").rows[:5]:
        row["employee.dept_ref"] = 999
    plan = VolcanoOptimizer(oodb_model(), catalog).optimize(PATH(get("employee"))).plan
    rows = execute_oodb_plan(plan, catalog)
    assert len(rows) == 25


def test_two_step_path_executes(catalog):
    catalog.replace_table(
        "building",
        Schema.of("building.id", "building.city"),
        TableStatistics(10, 100, columns={"building.id": ColumnStatistics(10)}),
        rows=[
            {"building.id": index, "building.city": f"c{index}"}
            for index in range(10)
        ],
    )
    # Give departments a building reference.
    for row in catalog.table("department").rows:
        row["department.building_ref"] = row["department.id"] % 10
    catalog.table("department").schema = Schema.of(
        "department.id", "department.floor", "department.building_ref"
    )
    query = materialize(PATH(get("employee")), "building_ref", "building")
    plan = VolcanoOptimizer(oodb_model(), catalog).optimize(query).plan
    rows = execute_oodb_plan(plan, catalog)
    assert rows
    assert all("building.city" in row for row in rows)
