"""Tests for the data generator and the plan compiler."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.catalog import Catalog
from repro.errors import ExecutionError, WorkloadError
from repro.executor import (
    ExecutionStats,
    PlanCompiler,
    TableSpec,
    execute_plan,
    generate_table,
    populate_catalog,
)
from repro.models.relational import get, join, project, relational_model, select
from repro.search import VolcanoOptimizer


# -- data generator ------------------------------------------------------------


def test_generate_table_shape():
    schema, statistics, rows = generate_table(
        TableSpec("t", rows=1200, key_distinct=100), seed=7
    )
    assert len(rows) == 1200
    assert statistics.row_count == 1200
    assert statistics.row_width == 100
    assert schema.row_width == 100
    assert set(rows[0].keys()) == {"t.k", "t.v", "t.pad"}


def test_generate_table_statistics_are_exact():
    _, statistics, rows = generate_table(
        TableSpec("t", rows=2000, key_distinct=50), seed=7
    )
    actual_distinct = len({row["t.k"] for row in rows})
    assert statistics.column("t.k").distinct_values == actual_distinct
    assert statistics.column("t.k").min_value == min(row["t.k"] for row in rows)


def test_generate_table_deterministic():
    first = generate_table(TableSpec("t", rows=100), seed=3)
    second = generate_table(TableSpec("t", rows=100), seed=3)
    assert first[2] == second[2]
    different = generate_table(TableSpec("t", rows=100), seed=4)
    assert first[2] != different[2]


def test_generate_table_rejects_bad_spec():
    with pytest.raises(WorkloadError):
        TableSpec("t", rows=-1)
    with pytest.raises(WorkloadError):
        TableSpec("t", rows=10, row_width=4)


def test_populate_catalog():
    catalog = Catalog()
    entries = populate_catalog(
        catalog, [TableSpec("a", 100), TableSpec("b", 200)], seed=1
    )
    assert [entry.name for entry in entries] == ["a", "b"]
    assert catalog.table("a").has_rows


# -- plan compilation -----------------------------------------------------------


@pytest.fixture
def catalog():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 1200, key_distinct=100),
            TableSpec("s", 2400, key_distinct=100),
        ],
        seed=42,
    )
    return catalog


def test_execute_scan_plan(catalog):
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(get("r")).plan
    rows = execute_plan(plan, catalog)
    assert len(rows) == 1200


def test_execute_filter_scan_plan(catalog):
    query = select(get("r"), eq("r.v", 1))
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(query).plan
    rows = execute_plan(plan, catalog)
    assert rows
    assert all(row["r.v"] == 1 for row in rows)


def test_execute_join_plan(catalog):
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(query).plan
    stats = ExecutionStats()
    rows = execute_plan(plan, catalog, stats)
    assert rows
    assert all(row["r.k"] == row["s.k"] for row in rows)
    assert stats.pages_read >= 30 + 60  # both tables scanned at least once


def test_execute_sorted_plan(catalog):
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = VolcanoOptimizer(relational_model(), catalog).optimize(
        query, required=sorted_on("r.k")
    )
    rows = execute_plan(result.plan, catalog)
    keys = [row["r.k"] for row in rows]
    assert keys == sorted(keys)


def test_execute_projected_plan(catalog):
    query = project(join(get("r"), get("s"), eq("r.k", "s.k")), ["r.k", "s.v"])
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(query).plan
    rows = execute_plan(plan, catalog)
    assert set(rows[0].keys()) == {"r.k", "s.v"}


def test_execute_alias_plan(catalog):
    query = join(get("r", "x"), get("r", "y"), eq("x.r.k", "y.r.k"))
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(query).plan
    rows = execute_plan(plan, catalog)
    assert all(row["x.r.k"] == row["y.r.k"] for row in rows)


def test_scan_page_count_matches_cost_model(catalog):
    """DESIGN.md invariant 8: scan I/O counts are exact."""
    plan = VolcanoOptimizer(relational_model(), catalog).optimize(get("r")).plan
    stats = ExecutionStats()
    execute_plan(plan, catalog, stats)
    assert stats.pages_read == plan.cost.io == 30


def test_unknown_algorithm_rejected(catalog):
    from repro.algebra.plans import PhysicalPlan

    with pytest.raises(ExecutionError):
        PlanCompiler(catalog).compile(PhysicalPlan("warp_drive"))


def test_compiler_is_extensible(catalog):
    from repro.algebra.plans import PhysicalPlan
    from repro.executor.iterators import FileScan

    compiler = PlanCompiler(catalog)
    compiler.register(
        "my_scan", lambda c, ctx, plan, inputs: FileScan(ctx, plan.args[0])
    )
    iterator = compiler.compile(PhysicalPlan("my_scan", ("r",)))
    assert len(iterator.drain()) == 1200
