"""Tests for optimizer source-code generation (paper Figure 1)."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.errors import GenerationError
from repro.generator import compile_and_load, generate_optimizer, generate_source
from repro.generator.codegen import render_pattern_code
from repro.model.patterns import AnyPattern, OpPattern
from repro.models.relational import get, join, relational_model, select

from tests.helpers import chain_query, make_catalog

PROVIDER = "repro.models.relational:relational_model"


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])


def test_render_pattern_code_roundtrips():
    pattern = OpPattern(
        "join",
        (OpPattern("join", (AnyPattern("a"), AnyPattern("b")), args_as="p1"),
         AnyPattern("c")),
        args_as="p2",
    )
    code = render_pattern_code(pattern)
    value = eval(code)
    assert value[0] == "join"
    assert value[1] == "p2"
    assert value[2][0][0] == "join"
    assert value[2][1] == ("?", "c")


def test_generated_source_structure():
    source = generate_source(relational_model(), PROVIDER)
    assert "MODEL_NAME = 'relational'" in source
    assert "OPERATORS = {" in source
    assert "'join':" in source
    assert "TRANSFORMATIONS = {" in source
    assert "'join_associate':" in source
    assert "def build_optimizer(" in source
    # Integer codes: every operator appears with a distinct code.
    assert "'get': (0" in source


def test_generated_source_is_valid_python():
    source = generate_source(relational_model(), PROVIDER)
    compile(source, "<generated>", "exec")


def test_generated_source_is_deterministic():
    first = generate_source(relational_model(), PROVIDER)
    second = generate_source(relational_model(), PROVIDER)
    assert first == second


def test_bad_provider_rejected():
    with pytest.raises(GenerationError):
        generate_source(relational_model(), "no-colon-here")
    with pytest.raises(GenerationError):
        generate_source(relational_model(), "module:")


def test_compile_and_load_builds_working_optimizer(tmp_path, catalog):
    module = compile_and_load(
        relational_model(), PROVIDER, tmp_path / "generated_relational.py"
    )
    optimizer = module.build_optimizer(catalog)
    result = optimizer.optimize(join(get("r"), get("s"), eq("r.k", "s.k")))
    assert result.plan.algorithm in ("hybrid_hash_join", "merge_join")


def test_generated_optimizer_matches_direct_construction(tmp_path, catalog):
    """Figure 1's pipeline and direct linking agree plan for plan."""
    module = compile_and_load(
        relational_model(), PROVIDER, tmp_path / "generated_relational.py"
    )
    generated = module.build_optimizer(catalog)
    direct = generate_optimizer(relational_model(), catalog)
    for query, required in [
        (chain_query(["r", "s", "t"]), None),
        (chain_query(["r", "s", "t"]), sorted_on("r.k")),
        (select(get("r"), eq("r.v", 3)), None),
    ]:
        from_generated = generated.optimize(query, required=required)
        from_direct = direct.optimize(query, required=required)
        assert from_generated.cost == from_direct.cost
        assert from_generated.plan.to_sexpr() == from_direct.plan.to_sexpr()


def test_drifted_provider_refused(tmp_path, catalog):
    """Changing the model without re-generating must fail at link time."""
    source = generate_source(relational_model(), PROVIDER)
    # Simulate drift: the generated tables claim an operator that the
    # provider no longer declares.
    drifted = source.replace("MODEL_NAME = 'relational'", "MODEL_NAME = 'other'")
    path = tmp_path / "drifted.py"
    path.write_text(drifted)
    import importlib.util

    spec = importlib.util.spec_from_file_location("drifted_optimizer", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    with pytest.raises(GenerationError):
        module.build_optimizer(catalog)


def test_drifted_pattern_refused(tmp_path, catalog):
    source = generate_source(relational_model(), PROVIDER)
    drifted = source.replace(
        "'join_commute': (", "'join_commute_renamed': (", 1
    )
    path = tmp_path / "drifted2.py"
    path.write_text(drifted)
    import importlib.util

    spec = importlib.util.spec_from_file_location("drifted_optimizer2", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    with pytest.raises(GenerationError):
        module.build_optimizer(catalog)


def test_provider_args_are_embedded(tmp_path, catalog):
    from repro.models.relational import RelationalModelOptions

    spec = relational_model(RelationalModelOptions(enable_filter_scan=False))
    module = compile_and_load(
        spec,
        PROVIDER,
        tmp_path / "generated_nofs.py",
        provider_args=(
            "__import__('repro.models.relational', fromlist=['x'])"
            ".RelationalModelOptions(enable_filter_scan=False)"
        ),
    )
    optimizer = module.build_optimizer(catalog)
    result = optimizer.optimize(select(get("r"), eq("r.v", 1)))
    assert result.plan.algorithm == "filter"


def test_load_failure_is_wrapped(tmp_path):
    # A provider import that cannot resolve must surface as GenerationError.
    spec = relational_model()
    with pytest.raises(GenerationError):
        compile_and_load(
            spec, "repro.no_such_module:nothing", tmp_path / "broken.py"
        )
