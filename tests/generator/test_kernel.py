"""Tests for specialized search-kernel generation (repro.generator.kernel).

Covers the emitted module's shape, the content-hash caches (in-process,
on-disk, ``force=``), the compiled tier's pure-Python fallback on
toolchain-less machines, and the delta enumerator's drift guard.
"""

import pytest

from repro.errors import GenerationError
from repro.generator import (
    KERNEL_TIERS,
    SearchKernel,
    clear_kernel_caches,
    compile_and_load,
    generate_kernel_source,
    kernel_for,
    resolve_kernel,
    source_fingerprint,
    spec_fingerprint,
)
from repro.generator.kernel import _count_inner_ops
from repro.models.relational import RelationalModelOptions, relational_model

PROVIDER = "repro.models.relational:relational_model"


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets a private kernel cache directory."""
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "kernels"))
    clear_kernel_caches()
    yield
    clear_kernel_caches()


# ---------------------------------------------------------------------------
# Generated-source shape
# ---------------------------------------------------------------------------


def test_kernel_source_shape():
    source = generate_kernel_source(relational_model())
    compile(source, "<kernel>", "exec")
    assert "TRANSFORMATION_MATCHERS = (" in source
    assert "IMPLEMENTATION_MATCHERS = (" in source
    # Nested patterns get a delta enumerator; flat ones explicitly none.
    assert "_d(" in source
    assert ", None)," in source
    # The interpreter's pattern walk is gone: matchers loop directly.
    assert "expressions_of(" in source


def test_kernel_source_is_deterministic():
    assert generate_kernel_source(relational_model()) == generate_kernel_source(
        relational_model()
    )


def test_fingerprint_distinguishes_rule_sets():
    base = spec_fingerprint(relational_model())
    trimmed = spec_fingerprint(
        relational_model(RelationalModelOptions(enable_filter_scan=False))
    )
    assert base != trimmed


def test_count_inner_ops():
    spec = relational_model()
    by_name = {rule.name: rule for rule in spec.transformations}
    assert _count_inner_ops(by_name["join_commute"].pattern) == 0
    assert _count_inner_ops(by_name["join_associate"].pattern) == 1


# ---------------------------------------------------------------------------
# kernel_for: tiers, caching, force
# ---------------------------------------------------------------------------


def test_interpreted_tier_is_no_kernel():
    assert kernel_for(relational_model(), "interpreted") is None


def test_unknown_tier_rejected():
    with pytest.raises(GenerationError):
        kernel_for(relational_model(), "jit")


def test_specialized_kernel_builds_and_caches(tmp_path):
    spec = relational_model()
    kernel = kernel_for(spec, "specialized")
    assert isinstance(kernel, SearchKernel)
    assert kernel.tier == "specialized"
    assert kernel.fallback_reason is None
    assert kernel.source_path is not None and kernel.source_path.exists()
    # Same fingerprint -> the module is reused, not regenerated.
    again = kernel_for(spec, "specialized")
    assert again.module is kernel.module
    # force=True rewrites the file but the content hash is unchanged.
    before = kernel.source_path.read_text()
    forced = kernel_for(spec, "specialized", force=True)
    assert forced.fingerprint == kernel.fingerprint
    assert forced.source_path.read_text() == before


def test_dispatch_tables_cover_every_rule():
    spec = relational_model()
    kernel = kernel_for(spec, "specialized")
    listed = [
        rule.name
        for triples in kernel.transformation_dispatch.values()
        for rule, _, _ in triples
    ]
    assert sorted(listed) == sorted(r.name for r in spec.transformations)
    for triples in kernel.implementation_dispatch.values():
        for rule, matcher, _delta in triples:
            assert callable(matcher)
            assert rule.top_operator in kernel.implementation_dispatch


def test_compiled_tier_falls_back_without_toolchain():
    """The container ships no mypyc/Cython: fallback must be recorded."""
    kernel = kernel_for(relational_model(), "compiled")
    assert kernel.requested_tier == "compiled"
    if kernel.tier == "specialized":
        assert kernel.fallback_reason  # names the missing toolchain(s)
    else:  # pragma: no cover - toolchain-equipped machines
        assert kernel.tier == "compiled"


def test_kernel_pickles_to_tier_string():
    import pickle

    kernel = kernel_for(relational_model(), "specialized")
    assert pickle.loads(pickle.dumps(kernel)) == "specialized"


def test_resolve_kernel_rejects_foreign_kernel():
    spec = relational_model()
    other = relational_model(RelationalModelOptions(enable_filter_scan=False))
    kernel = kernel_for(spec, "specialized")
    assert resolve_kernel(spec, kernel).fingerprint == kernel.fingerprint
    with pytest.raises(GenerationError):
        resolve_kernel(other, kernel)
    with pytest.raises(GenerationError):
        resolve_kernel(spec, 42)


# ---------------------------------------------------------------------------
# Drift refusal
# ---------------------------------------------------------------------------


def test_drifted_spec_refused():
    spec = relational_model()
    kernel_for(spec, "specialized")
    drifted = relational_model(RelationalModelOptions(enable_filter_scan=False))
    # A different rule set yields a different fingerprint, hence its own
    # kernel: binding must succeed, not silently reuse the wrong tables.
    other = kernel_for(drifted, "specialized")
    assert other.fingerprint != spec_fingerprint(spec)


# ---------------------------------------------------------------------------
# Delta enumerator drift guard
# ---------------------------------------------------------------------------


def test_delta_guard_trips_on_bad_cache():
    """Consuming fewer cached bindings than were stored must raise."""
    spec = relational_model()
    kernel = kernel_for(spec, "specialized")
    delta = next(
        d
        for triples in kernel.transformation_dispatch.values()
        for rule, _m, d in triples
        if rule.name == "join_associate"
    )
    # One join expression over groups (1, 2); group 1 holds a non-join,
    # so the walk yields nothing — but the stale cache claims a binding.
    expressions = {1: [("get", ("r",), ())], 2: []}
    out = []
    with pytest.raises(RuntimeError, match="drift"):
        list(
            delta(
                None,
                (1, 2),
                lambda gid: expressions[gid],
                lambda gid: 1,
                [{"p1": None}],
                out,
                lambda: True,
            )
        )


def test_delta_guard_suppressed_after_merge():
    """The same walk must degrade silently when a merge intervened."""
    spec = relational_model()
    kernel = kernel_for(spec, "specialized")
    delta = next(
        d
        for triples in kernel.transformation_dispatch.values()
        for rule, _m, d in triples
        if rule.name == "join_associate"
    )
    expressions = {1: [("get", ("r",), ())], 2: []}
    out = []
    produced = list(
        delta(
            None,
            (1, 2),
            lambda gid: expressions[gid],
            lambda gid: 1,
            [{"p1": None}],
            out,
            lambda: False,  # a merge happened mid-walk
        )
    )
    assert produced == []


# ---------------------------------------------------------------------------
# compile_and_load: tier + content-hash caching + force
# ---------------------------------------------------------------------------


def test_compile_and_load_fingerprint_cache(tmp_path):
    spec = relational_model()
    path = tmp_path / "gen.py"
    module = compile_and_load(spec, PROVIDER, path)
    assert module.GENERATED is True
    assert source_fingerprint(path.read_text())
    # Unchanged spec: the file is reused, not rewritten.
    mtime = path.stat().st_mtime_ns
    again = compile_and_load(spec, PROVIDER, path)
    assert again.GENERATED is False
    assert path.stat().st_mtime_ns == mtime
    # force=True regenerates unconditionally.
    forced = compile_and_load(spec, PROVIDER, path, force=True)
    assert forced.GENERATED is True


def test_compile_and_load_keyed_directory(tmp_path):
    spec = relational_model()
    module = compile_and_load(spec, PROVIDER, tmp_path)
    assert module.GENERATED is True
    fingerprint = source_fingerprint(open(module.__file__).read())
    assert f"{spec.name}-{fingerprint}" in module.__file__
    assert compile_and_load(spec, PROVIDER, tmp_path).GENERATED is False


def test_compile_and_load_tier_bakes_kernel_default(tmp_path):
    from repro.algebra.predicates import eq
    from repro.models.relational import get, join

    from tests.helpers import make_catalog

    spec = relational_model()
    module = compile_and_load(
        spec, PROVIDER, tmp_path / "k.py", tier="specialized"
    )
    assert module.KERNEL_TIER == "specialized"
    assert module.KERNEL_STATUS == ("specialized", None)
    optimizer = module.build_optimizer(
        make_catalog([("r", 1200), ("s", 2400)])
    )
    assert optimizer.options.kernel == "specialized"
    result = optimizer.optimize(join(get("r"), get("s"), eq("r.k", "s.k")))
    assert result.cost.total() > 0


def test_compile_and_load_compiled_tier_records_fallback(tmp_path):
    module = compile_and_load(
        relational_model(), PROVIDER, tmp_path / "c.py", tier="compiled"
    )
    effective, reason = module.KERNEL_STATUS
    if effective == "specialized":
        assert reason
    else:  # pragma: no cover - toolchain-equipped machines
        assert effective == "compiled"


def test_compile_and_load_rejects_bad_tier(tmp_path):
    with pytest.raises(GenerationError):
        compile_and_load(
            relational_model(), PROVIDER, tmp_path / "x.py", tier="jit"
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_generator_cli_generates_then_caches(tmp_path, capsys):
    from repro.generator.__main__ import main

    out = tmp_path / "out"
    out.mkdir()
    assert main(["relational", "--tier", "specialized", "--out", str(out)]) == 0
    first = capsys.readouterr().out
    assert "optimizer module generated" in first
    assert "kernel" in first
    assert main(["relational", "--tier", "specialized", "--out", str(out)]) == 0
    assert "optimizer module cached" in capsys.readouterr().out


def test_generator_cli_requires_model_or_all(capsys):
    from repro.generator.__main__ import main

    with pytest.raises(SystemExit):
        main([])
    with pytest.raises(SystemExit):
        main(["relational", "--all"])


def test_kernel_tiers_constant():
    assert KERNEL_TIERS == ("interpreted", "specialized", "compiled")
