"""Source generation round-trips for every bundled model.

Figure 1's pipeline must work for any model specification, not just the
relational test model: generate source, import it, build the optimizer,
and match the directly-constructed optimizer plan for plan.
"""

import pytest

from repro.generator import compile_and_load, generate_optimizer, generate_source

from tests.helpers import make_catalog

MODELS = {
    "relational": (
        "repro.models.relational:relational_model",
        "repro.models.relational",
        "relational_model",
    ),
    "parallel": (
        "repro.models.parallel:parallel_relational_model",
        "repro.models.parallel",
        "parallel_relational_model",
    ),
    "setops": (
        "repro.models.setops:setops_model",
        "repro.models.setops",
        "setops_model",
    ),
    "oodb": (
        "repro.models.oodb:oodb_model",
        "repro.models.oodb",
        "oodb_model",
    ),
    "aggregates": (
        "repro.models.aggregates:aggregate_model",
        "repro.models.aggregates",
        "aggregate_model",
    ),
}


def build_spec(name):
    import importlib

    _, module_name, attribute = MODELS[name]
    return getattr(importlib.import_module(module_name), attribute)()


@pytest.mark.parametrize("name", sorted(MODELS))
def test_source_generates_and_compiles(name, tmp_path):
    provider, _, _ = MODELS[name]
    spec = build_spec(name)
    source = generate_source(spec, provider)
    compile(source, "<generated>", "exec")
    module = compile_and_load(spec, provider, tmp_path / f"gen_{name}.py")
    assert module.MODEL_NAME == spec.name
    assert set(module.ALGORITHMS) == set(spec.algorithms)
    assert set(module.ENFORCERS) == set(spec.enforcers)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_generated_module_optimizes_identically(name, tmp_path):
    from repro.algebra.predicates import eq
    from repro.models.relational import get, join, select

    provider, _, _ = MODELS[name]
    spec = build_spec(name)
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    module = compile_and_load(spec, provider, tmp_path / f"gen2_{name}.py")
    generated = module.build_optimizer(catalog)
    direct = generate_optimizer(build_spec(name), catalog)
    query = join(
        select(get("r"), eq("r.v", 1)), get("s"), eq("r.k", "s.k")
    )
    from_generated = generated.optimize(query)
    from_direct = direct.optimize(query)
    assert from_generated.cost == from_direct.cost
    assert from_generated.plan.to_sexpr() == from_direct.plan.to_sexpr()
