"""Tests for generate_optimizer and specification linting."""

import pytest

from repro.algebra.properties import LogicalProperties
from repro.catalog.schema import Schema
from repro.errors import ModelSpecError
from repro.generator import generate_optimizer, lint_specification
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule, TransformationRule
from repro.model.spec import (
    AlgorithmDef,
    LogicalOperatorDef,
    ModelSpecification,
)
from repro.models.relational import get, relational_model

from tests.helpers import make_catalog


def minimal_spec():
    """A tiny one-operator model used to exercise validation paths."""
    spec = ModelSpecification(name="tiny")

    def props(context, args, input_props):
        return LogicalProperties(Schema.of("x"), 1.0, tables=frozenset({"t"}))

    spec.add_operator(LogicalOperatorDef("thing", 0, props))
    spec.add_algorithm(
        AlgorithmDef(
            "do_thing",
            applicability=lambda context, node, required: [()]
            if required.is_any
            else [],
            cost=lambda context, node: spec.zero_cost(),
            derive_props=lambda context, node, input_props: required_any(),
        )
    )
    spec.add_implementation(
        ImplementationRule("thing_impl", OpPattern("thing"), "do_thing")
    )
    return spec


def required_any():
    from repro.algebra.properties import ANY_PROPS

    return ANY_PROPS


def test_generate_optimizer_validates():
    catalog = make_catalog([("r", 100)])
    spec = ModelSpecification(name="empty")
    with pytest.raises(ModelSpecError):
        generate_optimizer(spec, catalog)


def test_generate_optimizer_links_working_engine():
    catalog = make_catalog([("r", 1200)])
    optimizer = generate_optimizer(relational_model(), catalog)
    result = optimizer.optimize(get("r"))
    assert result.plan.algorithm == "file_scan"


def test_validation_reports_all_problems():
    spec = ModelSpecification(name="broken")
    spec.add_operator(
        LogicalOperatorDef("op", 1, lambda context, args, inputs: None)
    )
    spec.add_algorithm(
        AlgorithmDef(
            "alg",
            applicability=lambda c, n, r: [],
            cost=lambda c, n: None,
            derive_props=lambda c, n, i: None,
        )
    )
    spec.add_implementation(
        ImplementationRule(
            "bad_impl", OpPattern("missing", (AnyPattern("x"),)), "also_missing"
        )
    )
    with pytest.raises(ModelSpecError) as excinfo:
        spec.validate()
    message = str(excinfo.value)
    assert "missing" in message
    assert "also_missing" in message
    assert "op" in message  # op has no implementation rule


def test_validation_checks_pattern_arity():
    spec = minimal_spec()
    spec.add_transformation(
        TransformationRule(
            "bad_arity",
            OpPattern("thing", (AnyPattern("x"),)),  # thing is a leaf operator
            rewrite=lambda binding, context: None,
        )
    )
    with pytest.raises(ModelSpecError) as excinfo:
        spec.validate()
    assert "arity" in str(excinfo.value)


def test_lint_flags_unreachable_algorithm():
    spec = minimal_spec()
    spec.add_algorithm(
        AlgorithmDef(
            "orphan",
            applicability=lambda c, n, r: [],
            cost=lambda c, n: spec.zero_cost(),
            derive_props=lambda c, n, i: required_any(),
        )
    )
    warnings = lint_specification(spec)
    assert any("orphan" in warning for warning in warnings)


def test_lint_flags_missing_enforcers():
    warnings = lint_specification(minimal_spec())
    assert any("enforcer" in warning for warning in warnings)


def test_lint_clean_relational_model():
    warnings = lint_specification(relational_model())
    # select/project have no transformations by default: advisory only.
    assert all("never appear" not in warning for warning in warnings)


def test_duplicate_registrations_rejected():
    spec = minimal_spec()
    with pytest.raises(ModelSpecError):
        spec.add_operator(LogicalOperatorDef("thing", 0, lambda c, a, i: None))
    with pytest.raises(ModelSpecError):
        spec.add_algorithm(
            AlgorithmDef(
                "do_thing",
                applicability=lambda c, n, r: [],
                cost=lambda c, n: None,
                derive_props=lambda c, n, i: None,
            )
        )
