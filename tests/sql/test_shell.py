"""Tests for the interactive SQL shell (driven programmatically)."""

import io

import pytest

from repro.sql.__main__ import Shell, build_demo_catalog, main


@pytest.fixture(scope="module")
def catalog():
    return build_demo_catalog(seed=7)


def make_shell(catalog):
    out = io.StringIO()
    return Shell(catalog, out=out), out


def test_simple_query_executes(catalog):
    shell, out = make_shell(catalog)
    assert shell.run_line("select * from dept where dept.v <= 3")
    text = out.getvalue()
    assert "rows" in text
    assert "goal:" in text  # explain on by default


def test_explain_toggle(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("\\explain off")
    shell.run_line("select * from dept where dept.v <= 3")
    text = out.getvalue()
    assert "goal:" not in text


def test_rows_limit(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("\\explain off")
    shell.run_line("\\rows 2")
    shell.run_line("select * from emp")
    text = out.getvalue()
    assert "showing 2" in text


def test_tables_command(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("\\tables")
    text = out.getvalue()
    assert "emp" in text and "dept" in text and "proj" in text


def test_sql_error_reported_not_raised(catalog):
    shell, out = make_shell(catalog)
    assert shell.run_line("select from nowhere")
    assert "error:" in out.getvalue()


def test_unknown_table_reported(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("select * from missing")
    assert "error:" in out.getvalue()


def test_unknown_command_hint(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("\\bogus")
    assert "unknown command" in out.getvalue()


def test_quit_commands(catalog):
    shell, _ = make_shell(catalog)
    assert shell.run_line("\\quit") is False
    assert shell.run_line("\\q") is False


def test_group_by_through_shell(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("\\explain off")
    shell.run_line("select dept.v, count(*) as n from dept group by dept.v")
    text = out.getvalue()
    assert "n=" in text


def test_join_with_order_by(catalog):
    shell, out = make_shell(catalog)
    shell.run_line("\\explain off")
    shell.run_line(
        "select * from emp join dept on emp.k = dept.k order by emp.k"
    )
    assert "rows" in out.getvalue()


def test_main_command_mode(capsys):
    code = main(["-c", "select * from dept where dept.v <= 1", "--seed", "3"])
    assert code == 0
    captured = capsys.readouterr()
    assert "rows" in captured.out
