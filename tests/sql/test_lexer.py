"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlError
from repro.sql.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.END]


def test_keywords_case_insensitive():
    assert kinds("select FROM Where")[0] == (TokenType.KEYWORD, "SELECT")
    assert kinds("select FROM Where")[2] == (TokenType.KEYWORD, "WHERE")


def test_identifiers_preserve_case():
    assert kinds("MyTable")[0] == (TokenType.IDENT, "MyTable")


def test_qualified_name_tokens():
    assert kinds("r.k") == [
        (TokenType.IDENT, "r"),
        (TokenType.SYMBOL, "."),
        (TokenType.IDENT, "k"),
    ]


def test_numbers():
    assert kinds("42") == [(TokenType.NUMBER, "42")]
    assert kinds("3.14") == [(TokenType.NUMBER, "3.14")]


def test_malformed_number_rejected():
    with pytest.raises(SqlError):
        tokenize("1.2.3")


def test_strings():
    assert kinds("'hello world'") == [(TokenType.STRING, "hello world")]


def test_unterminated_string_rejected():
    with pytest.raises(SqlError) as excinfo:
        tokenize("select 'oops")
    assert excinfo.value.position == 7


def test_two_character_symbols():
    assert kinds("<= >= <> !=") == [
        (TokenType.SYMBOL, "<="),
        (TokenType.SYMBOL, ">="),
        (TokenType.SYMBOL, "<>"),
        (TokenType.SYMBOL, "!="),
    ]


def test_comments_skipped():
    assert kinds("select -- a comment\n x") == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.IDENT, "x"),
    ]


def test_unexpected_character():
    with pytest.raises(SqlError):
        tokenize("select @")


def test_end_token_present():
    tokens = tokenize("x")
    assert tokens[-1].type is TokenType.END
