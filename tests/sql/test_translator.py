"""Unit tests for SQL-to-algebra translation."""

import pytest

from repro.algebra.properties import ANY_PROPS, sorted_on
from repro.errors import SqlError
from repro.executor import TableSpec, execute_plan, populate_catalog
from repro.catalog import Catalog
from repro.models.relational import relational_model
from repro.search import VolcanoOptimizer
from repro.sql import translate


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 300, key_distinct=20),
            TableSpec("s", 400, key_distinct=20),
            TableSpec("t", 200, key_distinct=20),
        ],
        seed=5,
    )
    return catalog


def test_simple_scan(catalog):
    translation = translate("select * from r", catalog)
    assert translation.expression.operator == "get"
    assert translation.required is ANY_PROPS or translation.required.is_any


def test_single_table_selection_pushed(catalog):
    translation = translate("select * from r where r.v = 1", catalog)
    assert translation.expression.operator == "select"
    assert translation.expression.inputs[0].operator == "get"


def test_unqualified_names_resolved(catalog):
    translation = translate("select * from r where v = 1", catalog)
    # r.v and r.pad are unique across the single table.
    (predicate,) = translation.expression.args
    assert "r.v" in predicate.columns()


def test_ambiguous_unqualified_name_rejected(catalog):
    with pytest.raises(SqlError):
        translate("select * from r, s where k = 1", catalog)


def test_unknown_column_rejected(catalog):
    with pytest.raises(SqlError):
        translate("select * from r where zz = 1", catalog)


def test_join_tree_built_from_where(catalog):
    translation = translate(
        "select * from r, s where r.k = s.k and r.v = 1", catalog
    )
    expression = translation.expression
    assert expression.operator == "join"
    # The selection on r sits under the join.
    operators = [node.operator for node in expression.walk()]
    assert operators.count("select") == 1


def test_join_on_syntax_equivalent(catalog):
    from_where = translate("select * from r, s where r.k = s.k", catalog)
    from_join = translate("select * from r join s on r.k = s.k", catalog)
    assert from_where.expression == from_join.expression


def test_three_way_connected_tree(catalog):
    translation = translate(
        "select * from r, s, t where r.k = s.k and s.k = t.k", catalog
    )
    joins = [n for n in translation.expression.walk() if n.operator == "join"]
    assert len(joins) == 2


def test_cross_product_rejected_by_default(catalog):
    with pytest.raises(SqlError):
        translate("select * from r, s", catalog)


def test_cross_product_allowed_when_enabled(catalog):
    translation = translate("select * from r, s", catalog, allow_cross_products=True)
    assert translation.expression.operator == "join"
    assert translation.expression.args[0].is_true


def test_projection(catalog):
    translation = translate("select r.k from r", catalog)
    assert translation.expression.operator == "project"
    assert translation.expression.args[0] == ("r.k",)


def test_order_by_becomes_required_props(catalog):
    translation = translate("select * from r order by r.k", catalog)
    assert translation.required == sorted_on("r.k")


def test_order_by_needs_projected_column(catalog):
    with pytest.raises(SqlError):
        translate("select r.v from r order by r.k", catalog)


def test_select_distinct_rejected(catalog):
    with pytest.raises(SqlError):
        translate("select distinct * from r", catalog)


def test_duplicate_binding_rejected(catalog):
    with pytest.raises(SqlError):
        translate("select * from r, r", catalog)


def test_self_join_with_aliases(catalog):
    translation = translate(
        "select * from r as x, r as y where x.k = y.k", catalog
    )
    assert translation.expression.operator == "join"


def test_set_operation_translation(catalog):
    translation = translate(
        "select r.k from r union select s.k from s", catalog
    )
    assert translation.expression.operator == "union"
    assert translation.expression.args == (False,)


def test_sql_to_executed_plan(catalog):
    """Full pipeline: SQL text → optimize → execute → verify."""
    translation = translate(
        "select * from r, s where r.k = s.k and r.v = 1 order by r.k",
        catalog,
    )
    result = VolcanoOptimizer(relational_model(), catalog).optimize(
        translation.expression, required=translation.required
    )
    rows = execute_plan(result.plan, catalog)
    assert all(row["r.k"] == row["s.k"] and row["r.v"] == 1 for row in rows)
    keys = [row["r.k"] for row in rows]
    assert keys == sorted(keys)
