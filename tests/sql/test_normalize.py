"""Tests for literal normalization and plan parameterization."""

import pytest

from repro.algebra.predicates import (
    Comparison,
    ComparisonOp,
    Conjunction,
    col,
    eq,
    lit,
)
from repro.dynamic import Parameter, bind_plan
from repro.models.relational import get, join, relational_model, select
from repro.search import VolcanoOptimizer
from repro.sql.normalize import normalize_literals, parameterize_plan

from tests.helpers import make_catalog


def le(column, value):
    return Comparison(ComparisonOp.LE, col(column), lit(value))


def query_with_threshold(value):
    return join(
        select(get("r"), le("r.v", value)),
        get("s"),
        eq("r.k", "s.k"),
    )


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400)])


def test_literals_become_parameters(catalog):
    normalized = normalize_literals(query_with_threshold(5), catalog)
    assert normalized.is_parameterized
    assert normalized.bindings == {"p0": 5}
    parameters = [
        scalar
        for node in normalized.template.walk()
        for arg in node.args
        if isinstance(arg, Comparison)
        for scalar in (arg.left, arg.right)
        if isinstance(scalar, Parameter)
    ]
    assert [p.name for p in parameters] == ["p0"]


def test_join_predicates_are_not_parameterized(catalog):
    normalized = normalize_literals(query_with_threshold(5), catalog)
    joins = [n for n in normalized.template.walk() if n.operator == "join"]
    assert joins[0].args[0] == eq("r.k", "s.k")


def test_same_structure_shares_template_and_names(catalog):
    first = normalize_literals(query_with_threshold(5), catalog)
    second = normalize_literals(query_with_threshold(6), catalog)
    assert first.template == second.template
    assert first.bindings != second.bindings


def test_equality_literals_bucket_identically(catalog):
    def q(value):
        return select(get("r"), eq("r.v", value))

    first = normalize_literals(q(3), catalog)
    second = normalize_literals(q(17), catalog)
    # System R prices col = literal at 1/distinct regardless of the value.
    assert first.bucket_key == second.bucket_key
    assert first.template == second.template


def test_range_literals_bucket_by_range_fraction(catalog):
    # r.v spans 0..19 (value_distinct=20): 1 and 19 cut it very differently.
    narrow = normalize_literals(query_with_threshold(1), catalog)
    wide = normalize_literals(query_with_threshold(19), catalog)
    assert narrow.template == wide.template
    assert narrow.bucket_key != wide.bucket_key


def test_unparameterized_query_normalizes_to_itself(catalog):
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    normalized = normalize_literals(query, catalog)
    assert not normalized.is_parameterized
    assert normalized.template == query
    assert normalized.bucket_key == ()


def test_duplicate_comparisons_share_one_parameter(catalog):
    predicate = Conjunction((le("r.v", 7), eq("r.k", 3)))
    query = select(select(get("r"), predicate), le("r.v", 7))
    normalized = normalize_literals(query, catalog)
    # le("r.v", 7) occurs twice but binds a single parameter.
    assert len(normalized.bindings) == 2


def test_parameterize_then_bind_is_exact_round_trip(catalog):
    spec = relational_model()
    query = query_with_threshold(5)
    normalized = normalize_literals(query, catalog)
    result = VolcanoOptimizer(spec, catalog).optimize(query)
    template = parameterize_plan(result.plan, normalized.replacements)
    assert template != result.plan  # the literal was actually lifted
    assert bind_plan(template, normalized.bindings) == result.plan


def test_template_plan_rebinds_to_other_literals(catalog):
    spec = relational_model()
    optimizer = VolcanoOptimizer(spec, catalog)
    first = normalize_literals(query_with_threshold(5), catalog)
    second = normalize_literals(query_with_threshold(6), catalog)
    template = parameterize_plan(
        optimizer.optimize(query_with_threshold(5)).plan, first.replacements
    )
    rebound = bind_plan(template, second.bindings)
    cold = optimizer.optimize(query_with_threshold(6)).plan
    assert rebound.to_sexpr() == cold.to_sexpr()
