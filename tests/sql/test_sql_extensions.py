"""Tests for the SQL extensions: BETWEEN, IN, HAVING, aggregates in SQL."""

import pytest

from repro.algebra.predicates import Conjunction, Disjunction
from repro.catalog import Catalog
from repro.errors import SqlError
from repro.executor import TableSpec, execute_plan, populate_catalog
from repro.models.aggregates import aggregate_model
from repro.search import VolcanoOptimizer
from repro.sql import parse, translate


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 1000, key_distinct=10, value_distinct=100),
            TableSpec("s", 500, key_distinct=10, value_distinct=100),
        ],
        seed=4,
    )
    return catalog


@pytest.fixture(scope="module")
def optimizer(catalog):
    return VolcanoOptimizer(aggregate_model(), catalog)


def run_sql(text, catalog, optimizer):
    translation = translate(text, catalog)
    result = optimizer.optimize(translation.expression, required=translation.required)
    return execute_plan(result.plan, catalog)


# -- parsing -------------------------------------------------------------------


def test_between_desugars_to_range_conjunction():
    statement = parse("select * from r where a between 1 and 5")
    conjuncts = statement.where.conjuncts()
    assert len(conjuncts) == 2


def test_between_binds_tighter_than_and():
    statement = parse("select * from r where a between 1 and 5 and b = 2")
    assert len(statement.where.conjuncts()) == 3


def test_in_list_desugars_to_disjunction():
    statement = parse("select * from r where a in (1, 2, 3)")
    assert isinstance(statement.where, Disjunction)
    assert len(statement.where.parts) == 3


def test_in_single_value_is_equality():
    statement = parse("select * from r where a in (7)")
    from repro.algebra.predicates import Comparison

    assert isinstance(statement.where, Comparison)


def test_having_requires_group_by():
    with pytest.raises(SqlError):
        parse("select a from r having a = 1")


def test_having_parsed():
    statement = parse(
        "select a, count(*) as n from r group by a having n >= 2"
    )
    assert statement.having is not None


# -- translation + execution -----------------------------------------------------


def test_between_execution(catalog, optimizer):
    rows = run_sql(
        "select * from r where r.v between 10 and 20", catalog, optimizer
    )
    assert rows
    assert all(10 <= row["r.v"] <= 20 for row in rows)


def test_in_execution(catalog, optimizer):
    rows = run_sql("select * from r where r.k in (1, 3)", catalog, optimizer)
    assert rows
    assert {row["r.k"] for row in rows} <= {1, 3}


def test_having_filters_groups(catalog, optimizer):
    rows = run_sql(
        "select r.k, count(*) as n from r group by r.k having n >= 90",
        catalog,
        optimizer,
    )
    reference = {}
    for row in catalog.table("r").rows:
        reference[row["r.k"]] = reference.get(row["r.k"], 0) + 1
    expected = {key for key, count in reference.items() if count >= 90}
    assert {row["r.k"] for row in rows} == expected


def test_having_on_grouping_column(catalog, optimizer):
    rows = run_sql(
        "select r.k, count(*) as n from r group by r.k having r.k <= 3",
        catalog,
        optimizer,
    )
    assert rows
    assert all(row["r.k"] <= 3 for row in rows)


def test_having_on_unknown_name_rejected(catalog):
    with pytest.raises(SqlError):
        translate(
            "select r.k, count(*) as n from r group by r.k having r.v = 1",
            catalog,
        )


def test_having_with_order_by(catalog, optimizer):
    rows = run_sql(
        "select r.k, sum(r.v) as total from r group by r.k "
        "having total >= 1 order by r.k",
        catalog,
        optimizer,
    )
    keys = [row["r.k"] for row in rows]
    assert keys == sorted(keys)


def test_aggregate_join_group_having_pipeline(catalog, optimizer):
    rows = run_sql(
        "select r.k, count(*) as n from r join s on r.k = s.k "
        "where s.v between 0 and 80 group by r.k having n >= 100 "
        "order by r.k",
        catalog,
        optimizer,
    )
    # Verify against a direct reference computation.
    s_keys = [
        row["s.k"] for row in catalog.table("s").rows if 0 <= row["s.v"] <= 80
    ]
    counts = {}
    for row in catalog.table("r").rows:
        counts[row["r.k"]] = counts.get(row["r.k"], 0) + s_keys.count(row["r.k"])
    expected = sorted(
        (key, count) for key, count in counts.items() if count >= 100
    )
    assert [(row["r.k"], row["n"]) for row in rows] == expected
