"""Unit tests for the SQL parser."""

import pytest

from repro.algebra.predicates import Comparison, ComparisonOp, Disjunction, Negation
from repro.errors import SqlError
from repro.sql.parser import SelectStatement, SetStatement, parse


def test_minimal_select():
    statement = parse("select * from r")
    assert isinstance(statement, SelectStatement)
    assert statement.columns is None
    assert statement.tables[0].table == "r"
    assert statement.where.is_true


def test_select_list():
    statement = parse("select r.k, v from r")
    assert statement.columns == ["r.k", "v"]


def test_table_alias_forms():
    statement = parse("select * from r as x, s y")
    assert statement.tables[0].alias == "x"
    assert statement.tables[1].alias == "y"
    assert statement.tables[1].binding == "y"


def test_where_conjunction_flattened():
    statement = parse("select * from r where a = 1 and b = 2 and c = 3")
    assert len(statement.where.conjuncts()) == 3


def test_or_and_precedence():
    statement = parse("select * from r where a = 1 or b = 2 and c = 3")
    assert isinstance(statement.where, Disjunction)
    assert len(statement.where.parts) == 2


def test_parentheses_override_precedence():
    statement = parse("select * from r where (a = 1 or b = 2) and c = 3")
    conjuncts = statement.where.conjuncts()
    assert len(conjuncts) == 2
    assert isinstance(conjuncts[0], Disjunction)


def test_not_condition():
    statement = parse("select * from r where not a = 1")
    assert isinstance(statement.where, Negation)


def test_comparison_operators():
    statement = parse("select * from r where a <> 1 and b <= 2 and c >= 'x'")
    ops = [c.op for c in statement.where.conjuncts()]
    assert ops == [ComparisonOp.NE, ComparisonOp.LE, ComparisonOp.GE]


def test_join_on_syntax():
    statement = parse("select * from r join s on r.k = s.k where r.v = 1")
    assert len(statement.tables) == 2
    assert len(statement.where.conjuncts()) == 2


def test_order_by():
    statement = parse("select * from r order by r.k, r.v asc")
    assert statement.order_by == ["r.k", "r.v"]


def test_order_by_desc_rejected():
    with pytest.raises(SqlError):
        parse("select * from r order by r.k desc")


def test_number_and_string_literals():
    statement = parse("select * from r where a = 3.5 and b = 'text'")
    comparisons = statement.where.conjuncts()
    assert comparisons[0].right.value == 3.5
    assert comparisons[1].right.value == "text"


def test_distinct_flag():
    assert parse("select distinct * from r").distinct


def test_set_operations():
    statement = parse("select * from r union select * from s")
    assert isinstance(statement, SetStatement)
    assert statement.operator == "union"
    assert not statement.all


def test_union_all():
    statement = parse("select * from r union all select * from s")
    assert statement.all


def test_set_operations_left_associative():
    statement = parse(
        "select * from r union select * from s intersect select * from t"
    )
    assert statement.operator == "intersect"
    assert isinstance(statement.left, SetStatement)


@pytest.mark.parametrize(
    "text",
    [
        "from r",
        "select from r",
        "select * r",
        "select * from r where",
        "select * from r where a =",
        "select * from r where a 1",
        "select * from r where a = 1 2",
        "select * from r order r.k",
    ],
)
def test_malformed_queries_rejected(text):
    with pytest.raises(SqlError):
        parse(text)
