"""Tests for the System R bottom-up DP baseline."""

import pytest

from repro.algebra.predicates import eq
from repro.algebra.properties import sorted_on
from repro.errors import OptimizationFailedError
from repro.models.relational import get, join, relational_model, select
from repro.search import VolcanoOptimizer
from repro.systemr import (
    SystemROptimizer,
    SystemROptions,
    decompose_join_query,
)

from tests.helpers import chain_query, make_catalog


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800), ("u", 7200)])


def test_decompose_collects_leaves_and_conjuncts():
    query = chain_query(["r", "s", "t"])
    leaves, conjuncts = decompose_join_query(query)
    assert len(leaves) == 3
    assert all(leaf.operator == "select" for leaf in leaves)
    assert len(conjuncts) == 2


def test_single_relation(catalog):
    optimizer = SystemROptimizer(relational_model(), catalog)
    result = optimizer.optimize(select(get("r"), eq("r.v", 1)))
    assert result.plan.algorithm == "filter_scan"


def test_bushy_agrees_with_volcano(catalog):
    """DESIGN.md invariant 6: same cost model → same optimal cost."""
    spec = relational_model()
    volcano = VolcanoOptimizer(spec, catalog)
    systemr = SystemROptimizer(spec, catalog, SystemROptions(bushy=True))
    for names in (["r", "s"], ["r", "s", "t"], ["r", "s", "t", "u"]):
        query = chain_query(names)
        assert systemr.optimize(query).cost.total() == pytest.approx(
            volcano.optimize(query).cost.total()
        )


def test_bushy_agrees_with_volcano_sorted_goal(catalog):
    spec = relational_model()
    query = chain_query(["r", "s", "t"])
    required = sorted_on("r.k")
    volcano_cost = VolcanoOptimizer(spec, catalog).optimize(query, required=required)
    systemr_cost = SystemROptimizer(
        spec, catalog, SystemROptions(bushy=True)
    ).optimize(query, required=required)
    assert systemr_cost.cost.total() == pytest.approx(volcano_cost.cost.total())


def test_left_deep_never_beats_bushy(catalog):
    spec = relational_model()
    query = chain_query(["r", "s", "t", "u"])
    left_deep = SystemROptimizer(spec, catalog, SystemROptions(bushy=False))
    bushy = SystemROptimizer(spec, catalog, SystemROptions(bushy=True))
    assert bushy.optimize(query).cost.total() <= left_deep.optimize(query).cost.total()


def test_left_deep_plans_have_no_composite_inner(catalog):
    spec = relational_model()
    optimizer = SystemROptimizer(spec, catalog, SystemROptions(bushy=False))
    result = optimizer.optimize(chain_query(["r", "s", "t", "u"]))
    for node in result.plan.walk():
        if "join" not in node.algorithm:
            continue
        # At least one side of every join must be a base-relation subplan.
        sides = [
            any("join" in below.algorithm for below in child.walk())
            for child in node.inputs
        ]
        assert not all(sides)


def test_cross_products_rejected_by_default(catalog):
    spec = relational_model()
    optimizer = SystemROptimizer(spec, catalog)
    disconnected = join(get("r"), get("s"), eq("r.k", 1))  # not a join predicate
    with pytest.raises(OptimizationFailedError):
        optimizer.optimize(disconnected)


def test_interesting_orders_kept(catalog):
    """Merge-join outputs occupy their own DP slots (interesting orders)."""
    spec = relational_model()
    optimizer = SystemROptimizer(spec, catalog, SystemROptions(bushy=True))
    result = optimizer.optimize(chain_query(["r", "s", "t"]), required=sorted_on("r.k"))
    assert result.plan.properties.covers(sorted_on("r.k"))


def test_stats_populated(catalog):
    optimizer = SystemROptimizer(relational_model(), catalog)
    result = optimizer.optimize(chain_query(["r", "s", "t", "u"]))
    assert result.stats.subsets_considered > 0
    assert result.stats.joins_costed > 0
    assert result.stats.entries_kept > 0
    assert result.stats.elapsed_seconds > 0
