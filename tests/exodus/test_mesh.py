"""Unit tests for the MESH data structure."""

import pytest

from repro.algebra.properties import LogicalProperties, PhysProps
from repro.catalog.schema import Schema
from repro.errors import MemoryLimitExceededError
from repro.exodus.mesh import Mesh, MeshStats, PhysicalChoice
from repro.model.cost import ScalarCost


def props(name, cardinality=10.0):
    return LogicalProperties(
        Schema.of(f"{name}.x"), cardinality, tables=frozenset({name})
    )


@pytest.fixture
def mesh():
    return Mesh()


def test_intern_creates_and_dedups(mesh):
    first, new_first = mesh.intern("get", ("r",), (), props("r"))
    second, new_second = mesh.intern("get", ("r",), (), props("r"))
    assert new_first and not new_second
    assert first is second
    assert mesh.size() == 1


def test_parents_tracked(mesh):
    leaf, _ = mesh.intern("get", ("r",), (), props("r"))
    parent, _ = mesh.intern("select", ("p",), (leaf.id,), props("r", 5))
    assert parent.id in mesh.nodes[leaf.id].parents


def test_node_budget(mesh):
    mesh.node_budget = 1
    mesh.intern("get", ("r",), (), props("r"))
    with pytest.raises(MemoryLimitExceededError):
        mesh.intern("get", ("s",), (), props("s"))


def test_equivalence_merge_and_members(mesh):
    a, _ = mesh.intern("get", ("r",), (), props("r"))
    b, _ = mesh.intern("get", ("r", "alias"), (), props("r"))
    assert mesh.eq_root(a.eq) != mesh.eq_root(b.eq)
    merged = mesh.merge_eq(a.eq, b.eq)
    assert mesh.eq_root(a.eq) == mesh.eq_root(b.eq) == merged
    assert set(mesh.eq_members(a.eq)) == {a.id, b.id}
    assert mesh.stats.equivalence_merges == 1


def test_merge_is_idempotent(mesh):
    a, _ = mesh.intern("get", ("r",), (), props("r"))
    b, _ = mesh.intern("get", ("s",), (), props("s"))
    mesh.merge_eq(a.eq, b.eq)
    before = mesh.stats.equivalence_merges
    mesh.merge_eq(a.eq, b.eq)
    assert mesh.stats.equivalence_merges == before


def test_eq_best_node_picks_cheapest(mesh):
    a, _ = mesh.intern("get", ("r",), (), props("r"))
    b, _ = mesh.intern("get", ("r", "x"), (), props("r"))
    mesh.merge_eq(a.eq, b.eq)

    def choice(cost):
        return PhysicalChoice(
            "scan", (), ScalarCost(cost), ScalarCost(cost), PhysProps(), (), (), ()
        )

    a.best = choice(10.0)
    b.best = choice(3.0)
    assert mesh.eq_best_node(a.eq) is b


def test_eq_best_node_requires_analysis(mesh):
    a, _ = mesh.intern("get", ("r",), (), props("r"))
    with pytest.raises(RuntimeError):
        mesh.eq_best_node(a.eq)


def test_eq_parents_aggregates_members(mesh):
    a, _ = mesh.intern("get", ("r",), (), props("r"))
    b, _ = mesh.intern("get", ("r", "x"), (), props("r"))
    parent_a, _ = mesh.intern("select", ("p",), (a.id,), props("r", 5))
    parent_b, _ = mesh.intern("select", ("p",), (b.id,), props("r", 5))
    mesh.merge_eq(a.eq, b.eq)
    assert mesh.eq_parents(a.eq) == {parent_a.id, parent_b.id}


def test_insert_tree_resolves_leaves(mesh):
    from repro.algebra.expressions import LogicalExpression, group_leaf

    leaf, _ = mesh.intern("get", ("r",), (), props("r"))
    tree = LogicalExpression("select", ("p",), (group_leaf(leaf.id),))
    node = mesh.insert_tree(tree, lambda op, args, inputs: props("r", 5))
    assert node.inputs == (leaf.id,)


def test_stats_mesh_size():
    stats = MeshStats(nodes_created=10, physical_choices=25)
    assert stats.mesh_size() == 35
    assert "nodes=10" in str(stats)
