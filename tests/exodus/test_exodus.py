"""Tests for the EXODUS baseline optimizer."""

import pytest

from repro.algebra.predicates import eq
from repro.errors import MemoryLimitExceededError, OptimizationFailedError
from repro.exodus import ExodusOptimizer, ExodusOptions
from repro.models.relational import get, join, relational_model, select
from repro.search import VolcanoOptimizer

from tests.helpers import chain_query, make_catalog


@pytest.fixture
def catalog():
    return make_catalog([("r", 1200), ("s", 2400), ("t", 4800), ("u", 7200)])


@pytest.fixture
def exodus(catalog):
    return ExodusOptimizer(relational_model(), catalog)


def test_single_scan(exodus):
    result = exodus.optimize(get("r"))
    assert result.plan.algorithm == "file_scan"
    assert not result.aborted


def test_filter_scan_complex_mapping(exodus):
    result = exodus.optimize(select(get("r"), eq("r.v", 1)))
    assert result.plan.algorithm == "filter_scan"


def test_two_way_join(exodus):
    result = exodus.optimize(join(get("r"), get("s"), eq("r.k", "s.k")))
    assert result.plan.algorithm in ("hybrid_hash_join", "merge_join")
    assert {args[0] for args in result.plan.leaf_args()} == {"r", "s"}


def test_matches_volcano_on_small_queries(catalog):
    """Both engines search the same space exhaustively at small sizes."""
    spec = relational_model()
    volcano = VolcanoOptimizer(spec, catalog)
    exodus = ExodusOptimizer(spec, catalog)
    for names in (["r", "s"], ["r", "s", "t"], ["r", "s", "t", "u"]):
        query = chain_query(names)
        assert exodus.optimize(query).cost.total() == pytest.approx(
            volcano.optimize(query).cost.total()
        )


def test_exodus_does_more_work_than_volcano(catalog):
    """The paper's Figure 4: EXODUS reanalyzes, Volcano memoizes."""
    spec = relational_model()
    query = chain_query(["r", "s", "t", "u"])
    volcano_result = VolcanoOptimizer(spec, catalog).optimize(query)
    exodus_result = ExodusOptimizer(spec, catalog).optimize(query)
    assert exodus_result.stats.reanalyses > 0
    # MESH keeps logical+physical combinations: more memory than the memo.
    assert exodus_result.stats.mesh_size() > volcano_result.stats.memo_footprint()


def test_memory_budget_abort_best_effort(catalog):
    options = ExodusOptions(node_budget=20, best_effort=True)
    exodus = ExodusOptimizer(relational_model(), catalog, options)
    result = exodus.optimize(chain_query(["r", "s", "t", "u"]))
    assert result.aborted
    assert result.abort_reason == "memory"
    # A valid plan is still produced from what was explored.
    assert {args[0] for args in result.plan.leaf_args()} == {"r", "s", "t", "u"}


def test_memory_budget_abort_raises_when_not_best_effort(catalog):
    options = ExodusOptions(node_budget=20, best_effort=False)
    exodus = ExodusOptimizer(relational_model(), catalog, options)
    with pytest.raises(MemoryLimitExceededError):
        exodus.optimize(chain_query(["r", "s", "t", "u"]))


def test_budget_too_small_for_initial_tree_raises(catalog):
    options = ExodusOptions(node_budget=2, best_effort=True)
    exodus = ExodusOptimizer(relational_model(), catalog, options)
    with pytest.raises(MemoryLimitExceededError):
        exodus.optimize(chain_query(["r", "s", "t"]))


def test_transformation_budget(catalog):
    options = ExodusOptions(transformation_budget=3)
    exodus = ExodusOptimizer(relational_model(), catalog, options)
    result = exodus.optimize(chain_query(["r", "s", "t", "u"]))
    assert result.stats.transformations_applied <= 3
    assert result.aborted
    assert result.abort_reason == "transformations"


def test_plan_cost_is_recomputed_consistently(exodus):
    """The reported cost equals the plan's own cumulative cost."""
    result = exodus.optimize(chain_query(["r", "s", "t"]))
    assert result.cost == result.plan.cost
    for node in result.plan.walk():
        for child in node.inputs:
            assert child.cost < node.cost


def test_greedy_property_handling_recorded(exodus):
    """Merge join pays embedded sorts when children are not sorted."""
    # Force merge join consideration by checking the retained choices.
    query = join(get("r"), get("s"), eq("r.k", "s.k"))
    result = exodus.optimize(query)
    # EXODUS retained a merge-join alternative whose cost includes sorts,
    # visible as it being more expensive than the hash join it lost to.
    assert result.plan.algorithm == "hybrid_hash_join"


def test_deterministic(catalog):
    query = chain_query(["r", "s", "t", "u"])
    first = ExodusOptimizer(relational_model(), catalog).optimize(query)
    second = ExodusOptimizer(relational_model(), catalog).optimize(query)
    assert first.cost.total() == second.cost.total()
    assert first.plan.to_sexpr() == second.plan.to_sexpr()


def test_mesh_counters(exodus):
    result = exodus.optimize(chain_query(["r", "s", "t"]))
    stats = result.stats
    assert stats.nodes_created >= 8
    assert stats.physical_choices >= stats.nodes_created
    assert stats.transformations_applied > 0
    assert stats.elapsed_seconds > 0
    assert "nodes=" in str(stats)


def test_unsatisfiable_required_props_raise(catalog):
    """The serial model has no enforcer for partitioning: gluing fails."""
    from repro.algebra.properties import hash_partitioned, PhysProps

    exodus = ExodusOptimizer(relational_model(), catalog)
    with pytest.raises(OptimizationFailedError):
        exodus.optimize(
            get("r"),
            required=PhysProps(partitioning=hash_partitioned(["r.k"], 4)),
        )


def test_required_sort_is_glued_on(catalog):
    """EXODUS satisfies ORDER BY by gluing a sort on the final plan."""
    from repro.algebra.properties import sorted_on

    exodus = ExodusOptimizer(relational_model(), catalog)
    result = exodus.optimize(
        join(get("r"), get("s"), eq("r.k", "s.k")), required=sorted_on("r.k")
    )
    assert result.plan.properties.covers(sorted_on("r.k"))
