"""Shared test fixtures: catalogs, queries, and a brute-force oracle.

The oracle enumerates *every* join tree and algorithm/enforcer choice
directly over expression trees — no memo, no transformation rules, no
pruning — so it is an independent check of the engine's optimality
(DESIGN.md invariant 4).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import (
    Predicate,
    conjunction_of,
    eq,
    equi_join_pairs,
)
from repro.algebra.properties import ANY_PROPS, PhysProps
from repro.catalog import Catalog, ColumnStatistics, Schema, TableStatistics
from repro.model.context import OptimizerContext
from repro.model.cost import INFINITE_COST, Cost
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.models.relational import get, join, select


def make_catalog(
    tables: Sequence[Tuple[str, int]],
    key_distinct: int = 100,
    value_distinct: int = 20,
    row_width: int = 100,
) -> Catalog:
    """A catalog of tables named ``t``: columns ``t.k`` (join key), ``t.v``."""
    catalog = Catalog()
    for name, rows in tables:
        catalog.add_table(
            name,
            Schema.of(f"{name}.k", f"{name}.v"),
            TableStatistics(
                rows,
                row_width,
                columns={
                    f"{name}.k": ColumnStatistics(key_distinct, 0, key_distinct - 1),
                    f"{name}.v": ColumnStatistics(
                        value_distinct, 0, value_distinct - 1
                    ),
                },
            ),
        )
    return catalog


def chain_query(
    names: Sequence[str], with_selections: bool = True
) -> LogicalExpression:
    """A left-deep chain query joining consecutive tables on ``.k``."""
    def leaf(name):
        base = get(name)
        if with_selections:
            return select(base, eq(f"{name}.v", 1))
        return base

    expression = leaf(names[0])
    for previous, name in zip(names, names[1:]):
        expression = join(
            expression, leaf(name), eq(f"{previous}.k", f"{name}.k")
        )
    return expression


# ---------------------------------------------------------------------------
# Brute-force oracle
# ---------------------------------------------------------------------------


class BruteForceOracle:
    """Optimal plan cost by exhaustive enumeration over expression trees.

    ``leaves`` are the per-relation input expressions (e.g. a select over
    a get); ``conjuncts`` the join predicate conjuncts of the whole
    query.  The oracle enumerates every ordered binary join tree whose
    joins carry exactly the conjuncts first decidable at that join
    (cross-product-free), then recursively minimizes over the model's
    algorithms and the sort enforcer.
    """

    def __init__(
        self,
        spec: ModelSpecification,
        catalog: Catalog,
        leaves: Sequence[LogicalExpression],
        conjuncts: Sequence[Predicate],
    ):
        self.spec = spec
        self.context = OptimizerContext(spec, catalog)
        self.leaves = list(leaves)
        self.conjuncts = list(conjuncts)
        self._columns = [
            self.context.logical_props(leaf).column_names for leaf in self.leaves
        ]

    # -- logical enumeration ------------------------------------------------

    def trees(self) -> List[LogicalExpression]:
        """Every cross-product-free ordered join tree over all leaves."""
        return self._trees(frozenset(range(len(self.leaves))))

    def _available(self, indices: FrozenSet[int]) -> FrozenSet[str]:
        columns: FrozenSet[str] = frozenset()
        for index in indices:
            columns |= self._columns[index]
        return columns

    def _predicate_for(
        self, left: FrozenSet[int], right: FrozenSet[int]
    ) -> Predicate:
        left_columns = self._available(left)
        right_columns = self._available(right)
        combined = left_columns | right_columns
        applicable = [
            conjunct
            for conjunct in self.conjuncts
            if conjunct.columns() <= combined
            and not conjunct.columns() <= left_columns
            and not conjunct.columns() <= right_columns
        ]
        return conjunction_of(applicable)

    def _trees(self, indices: FrozenSet[int]) -> List[LogicalExpression]:
        if len(indices) == 1:
            (index,) = indices
            return [self.leaves[index]]
        results = []
        members = sorted(indices)
        for size in range(1, len(members)):
            for left_combo in itertools.combinations(members, size):
                left = frozenset(left_combo)
                right = indices - left
                predicate = self._predicate_for(left, right)
                if predicate.is_true:
                    continue  # cross product: outside the default space
                for left_tree in self._trees(left):
                    for right_tree in self._trees(right):
                        results.append(join(left_tree, right_tree, predicate))
        return results

    # -- physical costing ----------------------------------------------------

    def best_cost(self, required: PhysProps = ANY_PROPS) -> Cost:
        best = INFINITE_COST
        for tree in self.trees():
            cost = self._cost_tree(tree, required, allow_sort=True)
            if cost < best:
                best = cost
        return best

    def _cost_tree(
        self, tree: LogicalExpression, required: PhysProps, allow_sort: bool
    ) -> Cost:
        """Cheapest physical realization of one fixed logical tree."""
        best = INFINITE_COST
        output = self.context.logical_props(tree)
        if tree.operator == "get":
            node = AlgorithmNode(tree.args, output, ())
            algorithm = self.spec.algorithm("file_scan")
            if algorithm.applicability(self.context, node, required):
                best = algorithm.cost(self.context, node)
        elif tree.operator == "select" and tree.inputs[0].operator == "get":
            inner = tree.inputs[0]
            # Combined filter_scan when the model has it, else scan+filter.
            if "filter_scan" in self.spec.algorithms:
                node = AlgorithmNode(inner.args + tree.args, output, ())
                algorithm = self.spec.algorithm("filter_scan")
                if algorithm.applicability(self.context, node, required):
                    candidate = algorithm.cost(self.context, node)
                    if candidate < best:
                        best = candidate
            source = self.context.logical_props(inner)
            node = AlgorithmNode(tree.args, output, (source,))
            algorithm = self.spec.algorithm("filter")
            for (input_required,) in algorithm.applicability(
                self.context, node, required
            ) or ():
                candidate = algorithm.cost(self.context, node) + self._cost_tree(
                    inner, input_required, allow_sort=True
                )
                if candidate < best:
                    best = candidate
        elif tree.operator == "select":
            source = self.context.logical_props(tree.inputs[0])
            node = AlgorithmNode(tree.args, output, (source,))
            algorithm = self.spec.algorithm("filter")
            for (input_required,) in algorithm.applicability(
                self.context, node, required
            ) or ():
                candidate = algorithm.cost(self.context, node) + self._cost_tree(
                    tree.inputs[0], input_required, allow_sort=True
                )
                if candidate < best:
                    best = candidate
        elif tree.operator == "join":
            left, right = tree.inputs
            inputs = (
                self.context.logical_props(left),
                self.context.logical_props(right),
            )
            node = AlgorithmNode(tree.args, output, inputs)
            for name in ("merge_join", "hybrid_hash_join", "nested_loops_join"):
                if name not in self.spec.algorithms:
                    continue
                algorithm = self.spec.algorithm(name)
                for requirements in algorithm.applicability(
                    self.context, node, required
                ) or ():
                    candidate = algorithm.cost(self.context, node)
                    candidate = candidate + self._cost_tree(
                        left, requirements[0], allow_sort=True
                    )
                    candidate = candidate + self._cost_tree(
                        right, requirements[1], allow_sort=True
                    )
                    if candidate < best:
                        best = candidate
        # The sort enforcer, at most once per node (sorting twice in a row
        # can never help).
        if allow_sort and required.sort_order and "sort" in self.spec.enforcers:
            enforcer = self.spec.enforcer("sort")
            node = AlgorithmNode((required.sort_order,), output, (output,))
            candidate = enforcer.cost(self.context, node) + self._cost_tree(
                tree, required.without_sort(), allow_sort=False
            )
            if candidate < best:
                best = candidate
        return best
