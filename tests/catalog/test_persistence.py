"""Tests for catalog JSON persistence."""

import json

import pytest

from repro.catalog import Catalog, load_catalog, save_catalog
from repro.catalog.persistence import catalog_from_dict, catalog_to_dict
from repro.errors import CatalogError
from repro.executor import TableSpec, populate_catalog


@pytest.fixture
def catalog():
    catalog = Catalog(page_size=2048)
    populate_catalog(
        catalog,
        [TableSpec("a", 120, key_distinct=12), TableSpec("b", 60, key_distinct=6)],
        seed=5,
    )
    return catalog


def test_roundtrip_preserves_structure(catalog, tmp_path):
    path = tmp_path / "db.json"
    save_catalog(catalog, path)
    loaded = load_catalog(path)
    assert loaded.page_size == 2048
    assert loaded.table_names() == catalog.table_names()
    for name in catalog.table_names():
        original = catalog.table(name)
        restored = loaded.table(name)
        assert restored.schema == original.schema
        assert restored.statistics.row_count == original.statistics.row_count
        assert restored.statistics.row_width == original.statistics.row_width
        assert (
            restored.statistics.column(f"{name}.k").distinct_values
            == original.statistics.column(f"{name}.k").distinct_values
        )
        assert restored.rows == original.rows


def test_roundtrip_without_rows(catalog, tmp_path):
    path = tmp_path / "stats_only.json"
    save_catalog(catalog, path, include_rows=False)
    loaded = load_catalog(path)
    assert not loaded.table("a").has_rows
    assert loaded.table("a").statistics.row_count == 120


def test_loaded_catalog_optimizes_and_executes(catalog, tmp_path):
    from repro.models.relational import get, join, relational_model
    from repro.algebra.predicates import eq
    from repro.executor import execute_plan
    from repro.search import VolcanoOptimizer

    path = tmp_path / "db.json"
    save_catalog(catalog, path)
    loaded = load_catalog(path)
    optimizer = VolcanoOptimizer(relational_model(), loaded)
    result = optimizer.optimize(join(get("a"), get("b"), eq("a.k", "b.k")))
    rows = execute_plan(result.plan, loaded)
    assert all(row["a.k"] == row["b.k"] for row in rows)


def test_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(CatalogError):
        load_catalog(path)


def test_rejects_future_version(catalog):
    data = catalog_to_dict(catalog)
    data["version"] = 999
    with pytest.raises(CatalogError):
        catalog_from_dict(data)


def test_rejects_missing_file(tmp_path):
    with pytest.raises(CatalogError):
        load_catalog(tmp_path / "nope.json")


def test_shell_accepts_catalog_file(catalog, tmp_path, capsys):
    from repro.sql.__main__ import main

    path = tmp_path / "db.json"
    save_catalog(catalog, path)
    code = main(["--catalog", str(path), "-c", "select * from a where a.v <= 5"])
    assert code == 0
    assert "rows" in capsys.readouterr().out
