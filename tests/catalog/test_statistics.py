"""Unit tests for table and column statistics."""

import pytest

from repro.catalog.statistics import (
    DEFAULT_PAGE_SIZE,
    ColumnStatistics,
    TableStatistics,
    uniform_column,
)
from repro.errors import CatalogError


def test_pages_for_paper_sized_relation():
    # 7,200 records of 100 bytes at 4 KiB pages → 40 rows/page → 180 pages.
    stats = TableStatistics(row_count=7200, row_width=100)
    assert stats.pages(DEFAULT_PAGE_SIZE) == 180


def test_pages_at_least_one():
    stats = TableStatistics(row_count=0, row_width=100)
    assert stats.pages() == 1


def test_pages_rounds_up():
    stats = TableStatistics(row_count=41, row_width=100)
    assert stats.pages(4096) == 2


def test_wide_rows_one_per_page():
    stats = TableStatistics(row_count=10, row_width=8192)
    assert stats.pages(4096) == 10


def test_rejects_bad_row_counts_and_widths():
    with pytest.raises(CatalogError):
        TableStatistics(row_count=-1, row_width=100)
    with pytest.raises(CatalogError):
        TableStatistics(row_count=10, row_width=0)


def test_column_lookup():
    stats = TableStatistics(
        row_count=100, row_width=10, columns={"k": ColumnStatistics(50)}
    )
    assert stats.column("k").distinct_values == 50
    assert stats.column("missing") is None


def test_scaled_distinct_capped_by_rows():
    column = ColumnStatistics(distinct_values=1000)
    assert column.scaled(0.01, row_count=10).distinct_values == 10


def test_scaled_distinct_never_below_one():
    column = ColumnStatistics(distinct_values=5)
    assert column.scaled(0.0, row_count=0).distinct_values == 1


def test_range_fraction_interpolates():
    column = uniform_column(distinct=101, low=0, high=100)
    assert column.range_fraction(25) == pytest.approx(0.25)
    assert column.range_fraction(-5) == 0.0
    assert column.range_fraction(200) == 1.0


def test_range_fraction_none_without_range():
    assert ColumnStatistics(10).range_fraction(5) is None


def test_range_fraction_none_for_non_numeric():
    column = ColumnStatistics(10, min_value="a", max_value="z")
    assert column.range_fraction("m") is None


def test_qualified_columns():
    stats = TableStatistics(
        row_count=10, row_width=8, columns={"k": ColumnStatistics(5)}
    )
    qualified = stats.with_qualified_columns("r")
    assert qualified.column("r.k").distinct_values == 5
    assert qualified.column("k") is None


def test_negative_distinct_rejected():
    with pytest.raises(CatalogError):
        ColumnStatistics(-1)
