"""Unit tests for selectivity estimation."""

import pytest

from repro.algebra.predicates import (
    TRUE,
    Comparison,
    ComparisonOp,
    Conjunction,
    Disjunction,
    Negation,
    col,
    eq,
    lit,
)
from repro.catalog.selectivity import SelectivityDefaults, SelectivityEstimator
from repro.catalog.statistics import ColumnStatistics, uniform_column

STATS = {
    "k": uniform_column(distinct=100, low=0, high=99),
    "v": ColumnStatistics(distinct_values=10),
}


@pytest.fixture
def estimator():
    return SelectivityEstimator()


def test_true_predicate_keeps_everything(estimator):
    assert estimator.estimate(TRUE, STATS) == 1.0


def test_equality_with_literal_uses_distinct(estimator):
    assert estimator.estimate(eq("k", 42), STATS) == pytest.approx(0.01)


def test_equality_literal_on_left_is_normalized(estimator):
    predicate = Comparison(ComparisonOp.EQ, lit(42), col("k"))
    assert estimator.estimate(predicate, STATS) == pytest.approx(0.01)


def test_equality_without_stats_uses_default(estimator):
    assert estimator.estimate(eq("unknown", 1), STATS) == pytest.approx(0.1)


def test_join_selectivity_uses_max_distinct(estimator):
    assert estimator.estimate(eq("k", "v"), STATS) == pytest.approx(1 / 100)


def test_join_selectivity_with_one_side_unknown(estimator):
    assert estimator.estimate(eq("k", "unknown"), STATS) == pytest.approx(1 / 100)


def test_range_interpolation(estimator):
    predicate = Comparison(ComparisonOp.LT, col("k"), lit(25))
    assert estimator.estimate(predicate, STATS) == pytest.approx(25 / 99, abs=0.01)
    predicate = Comparison(ComparisonOp.GE, col("k"), lit(25))
    assert estimator.estimate(predicate, STATS) == pytest.approx(1 - 25 / 99, abs=0.01)


def test_range_without_stats_uses_one_third(estimator):
    predicate = Comparison(ComparisonOp.LT, col("v"), lit(5))
    assert estimator.estimate(predicate, STATS) == pytest.approx(1 / 3)


def test_inequality_complements_distinct(estimator):
    predicate = Comparison(ComparisonOp.NE, col("v"), lit(3))
    assert estimator.estimate(predicate, STATS) == pytest.approx(0.9)


def test_conjunction_multiplies(estimator):
    predicate = Conjunction((eq("k", 1), eq("v", 2)))
    assert estimator.estimate(predicate, STATS) == pytest.approx(0.01 * 0.1)


def test_disjunction_inclusion_exclusion(estimator):
    predicate = Disjunction((eq("v", 1), eq("v", 2)))
    assert estimator.estimate(predicate, STATS) == pytest.approx(1 - 0.9 * 0.9)


def test_negation_complements(estimator):
    predicate = Negation(eq("v", 1))
    assert estimator.estimate(predicate, STATS) == pytest.approx(0.9)


def test_result_clamped_to_unit_interval(estimator):
    # A column with a single distinct value: NE should not go negative.
    stats = {"c": ColumnStatistics(1)}
    predicate = Comparison(ComparisonOp.NE, col("c"), lit(0))
    assert 0.0 <= estimator.estimate(predicate, stats) <= 1.0


def test_custom_defaults_are_used():
    estimator = SelectivityEstimator(SelectivityDefaults(equality=0.5))
    assert estimator.estimate(eq("unknown", 1), {}) == pytest.approx(0.5)
