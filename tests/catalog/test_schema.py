"""Unit tests for schemas and columns."""

import pytest

from repro.catalog.schema import Column, ColumnType, Schema
from repro.errors import SchemaError, UnknownColumnError


def test_column_default_width_by_type():
    assert Column("a", ColumnType.INTEGER).width == 4
    assert Column("a", ColumnType.FLOAT).width == 8
    assert Column("a", ColumnType.STRING).width == 20


def test_column_explicit_width():
    assert Column("a", ColumnType.STRING, width=50).width == 50


def test_column_rejects_empty_name():
    with pytest.raises(SchemaError):
        Column("")


def test_column_rejects_non_positive_width():
    with pytest.raises(SchemaError):
        Column("a", width=0)


def test_column_qualified():
    assert Column("k").qualified("r").name == "r.k"


def test_column_qualified_is_idempotent():
    column = Column("k").qualified("r")
    assert column.qualified("s").name == "r.k"


def test_schema_of_mixed_specs():
    schema = Schema.of("a", ("b", ColumnType.STRING), Column("c", ColumnType.FLOAT))
    assert schema.column_names == ("a", "b", "c")
    assert schema.column("b").type is ColumnType.STRING


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaError):
        Schema.of("a", "a")


def test_schema_row_width_sums_column_widths():
    schema = Schema.of("a", ("b", ColumnType.STRING))
    assert schema.row_width == 4 + 20


def test_schema_contains_and_index():
    schema = Schema.of("a", "b")
    assert "a" in schema
    assert "z" not in schema
    assert schema.index_of("b") == 1


def test_schema_unknown_column_raises():
    schema = Schema.of("a")
    with pytest.raises(UnknownColumnError):
        schema.column("nope")
    with pytest.raises(UnknownColumnError):
        schema.index_of("nope")


def test_schema_project_preserves_requested_order():
    schema = Schema.of("a", "b", "c")
    assert schema.project(["c", "a"]).column_names == ("c", "a")


def test_schema_concat():
    left = Schema.of("a")
    right = Schema.of("b")
    assert left.concat(right).column_names == ("a", "b")


def test_schema_concat_rejects_duplicates():
    with pytest.raises(SchemaError):
        Schema.of("a").concat(Schema.of("a"))


def test_schema_qualified():
    schema = Schema.of("k", "v").qualified("r")
    assert schema.column_names == ("r.k", "r.v")


def test_schema_intersection_names():
    left = Schema.of("a", "b", "c")
    right = Schema.of("c", "b")
    assert left.intersection_names(right) == ("b", "c")


def test_union_compatibility_checks_types_in_order():
    a = Schema.of(("x", ColumnType.INTEGER), ("y", ColumnType.STRING))
    b = Schema.of(("p", ColumnType.INTEGER), ("q", ColumnType.STRING))
    c = Schema.of(("p", ColumnType.STRING), ("q", ColumnType.INTEGER))
    assert a.is_union_compatible(b)
    assert not a.is_union_compatible(c)
    assert not a.is_union_compatible(Schema.of("only"))


def test_resolve_unqualified_name():
    schema = Schema.of("r.k", "s.k", "r.v")
    assert schema.resolve("v") == "r.v"
    assert schema.resolve("r.k") == "r.k"
    with pytest.raises(SchemaError):
        schema.resolve("k")  # ambiguous
    with pytest.raises(UnknownColumnError):
        schema.resolve("missing")


def test_schema_is_hashable_and_iterable():
    schema = Schema.of("a", "b")
    assert len({schema, Schema.of("a", "b")}) == 1
    assert [column.name for column in schema] == ["a", "b"]


def test_describe_mentions_all_columns():
    text = Schema.of("a", ("b", ColumnType.STRING)).describe()
    assert "a integer(4)" in text and "b string(20)" in text
