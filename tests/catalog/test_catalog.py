"""Unit tests for the catalog."""

import pytest

from repro.catalog import Catalog, Schema, TableStatistics
from repro.errors import CatalogError, UnknownTableError


def make_catalog():
    catalog = Catalog()
    catalog.add_table("r", Schema.of("k"), TableStatistics(1200, 100))
    return catalog


def test_add_and_lookup():
    catalog = make_catalog()
    entry = catalog.table("r")
    assert entry.name == "r"
    assert entry.statistics.row_count == 1200
    assert "r" in catalog


def test_unknown_table_raises():
    with pytest.raises(UnknownTableError):
        make_catalog().table("missing")


def test_duplicate_registration_rejected():
    catalog = make_catalog()
    with pytest.raises(CatalogError):
        catalog.add_table("r", Schema.of("k"), TableStatistics(1, 100))


def test_replace_table():
    catalog = make_catalog()
    catalog.replace_table("r", Schema.of("k"), TableStatistics(9, 100))
    assert catalog.table("r").statistics.row_count == 9


def test_drop_table():
    catalog = make_catalog()
    catalog.drop_table("r")
    assert "r" not in catalog
    with pytest.raises(UnknownTableError):
        catalog.drop_table("r")


def test_rows_must_match_statistics():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.add_table(
            "r", Schema.of("k"), TableStatistics(5, 100), rows=[{"k": 1}]
        )


def test_rows_stored_when_consistent():
    catalog = Catalog()
    rows = [{"k": value} for value in range(5)]
    entry = catalog.add_table("r", Schema.of("k"), TableStatistics(5, 100), rows=rows)
    assert entry.has_rows
    assert len(entry.rows) == 5


def test_pages_uses_catalog_page_size():
    catalog = Catalog(page_size=1000)  # 10 rows of width 100 per page
    catalog.add_table("r", Schema.of("k"), TableStatistics(25, 100))
    assert catalog.pages("r") == 3


def test_page_size_must_be_positive():
    with pytest.raises(CatalogError):
        Catalog(page_size=0)


def test_table_names_and_iteration():
    catalog = make_catalog()
    catalog.add_table("s", Schema.of("x"), TableStatistics(10, 50))
    assert catalog.table_names() == ("r", "s")
    assert {entry.name for entry in catalog.tables()} == {"r", "s"}
