"""Unit tests for the optimizer context."""

import pytest

from repro.algebra.expressions import group_leaf
from repro.algebra.predicates import eq
from repro.errors import SearchError
from repro.model.context import OptimizerContext
from repro.models.relational import get, join, relational_model, select

from tests.helpers import make_catalog


@pytest.fixture
def context():
    return OptimizerContext(
        relational_model(), make_catalog([("r", 1200), ("s", 2400)])
    )


def test_logical_props_recursive(context):
    props = context.logical_props(join(get("r"), get("s"), eq("r.k", "s.k")))
    assert props.tables == frozenset({"r", "s"})


def test_logical_props_cached(context):
    expression = select(get("r"), eq("r.v", 1))
    first = context.logical_props(expression)
    second = context.logical_props(expression)
    assert first is second


def test_group_leaf_without_resolver_raises(context):
    with pytest.raises(SearchError):
        context.logical_props(group_leaf(3))


def test_group_leaf_with_resolver(context):
    sentinel = context.logical_props(get("r"))
    context.group_props_resolver = lambda gid: sentinel
    assert context.logical_props(group_leaf(3)) is sentinel


def test_selectivity_delegates_to_estimator(context):
    from repro.catalog.statistics import ColumnStatistics

    stats = {"x": ColumnStatistics(4)}
    assert context.selectivity(eq("x", 1), stats) == pytest.approx(0.25)


def test_derive_logical_props_unknown_operator(context):
    from repro.errors import ModelSpecError

    with pytest.raises(ModelSpecError):
        context.derive_logical_props("warp", (), ())
