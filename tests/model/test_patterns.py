"""Unit tests for rule patterns and matching."""

import pytest

from repro.algebra.expressions import LogicalExpression, group_leaf, is_group_leaf
from repro.algebra.predicates import eq
from repro.errors import PatternError
from repro.model.patterns import (
    AnyPattern,
    OpPattern,
    match_memo,
    match_tree,
    pattern_leaves,
    validate_pattern,
)


def get(table):
    return LogicalExpression("get", (table,))


def join(left, right, predicate):
    return LogicalExpression("join", (predicate,), (left, right))


JOIN_PATTERN = OpPattern(
    "join", (AnyPattern("left"), AnyPattern("right")), args_as="predicate"
)
ASSOC_PATTERN = OpPattern(
    "join",
    (
        OpPattern("join", (AnyPattern("a"), AnyPattern("b")), args_as="p1"),
        AnyPattern("c"),
    ),
    args_as="p2",
)


def test_pattern_leaves_in_order():
    assert pattern_leaves(JOIN_PATTERN) == ("left", "right")
    assert pattern_leaves(ASSOC_PATTERN) == ("a", "b", "c")


def test_validate_rejects_duplicate_names():
    bad = OpPattern("join", (AnyPattern("x"), AnyPattern("x")))
    with pytest.raises(PatternError):
        validate_pattern(bad)


def test_validate_rejects_duplicate_args_as():
    bad = OpPattern("join", (AnyPattern("x"),), args_as="x")
    with pytest.raises(PatternError):
        validate_pattern(bad)


def test_empty_names_rejected():
    with pytest.raises(PatternError):
        AnyPattern("")
    with pytest.raises(PatternError):
        OpPattern("")


def test_match_tree_simple():
    predicate = eq("r.k", "s.k")
    tree = join(get("r"), get("s"), predicate)
    binding = match_tree(JOIN_PATTERN, tree)
    assert binding is not None
    assert binding["left"].args == ("r",)
    assert binding["right"].args == ("s",)
    assert binding["predicate"] == (predicate,)


def test_match_tree_operator_mismatch():
    assert match_tree(JOIN_PATTERN, get("r")) is None


def test_match_tree_nested():
    inner = join(get("r"), get("s"), eq("r.k", "s.k"))
    tree = join(inner, get("t"), eq("s.k", "t.k"))
    binding = match_tree(ASSOC_PATTERN, tree)
    assert binding is not None
    assert binding["a"].args == ("r",)
    assert binding["c"].args == ("t",)
    assert binding["p1"] == (eq("r.k", "s.k"),)


def test_match_tree_nested_mismatch():
    tree = join(get("r"), get("t"), eq("r.k", "t.k"))  # left input not a join
    assert match_tree(ASSOC_PATTERN, tree) is None


def make_memo_view():
    """A tiny fake memo: group id → list of (operator, args, input_groups)."""
    groups = {
        1: [("get", ("r",), ())],
        2: [("get", ("s",), ())],
        3: [
            ("join", (eq("r.k", "s.k"),), (1, 2)),
            ("join", (eq("r.k", "s.k"),), (2, 1)),  # commuted variant
        ],
        4: [("get", ("t",), ())],
    }
    return lambda gid: iter(groups[gid])


def test_match_memo_top_level():
    expressions_of = make_memo_view()
    bindings = list(
        match_memo(JOIN_PATTERN, "join", (eq("r.k", "s.k"),), (1, 2), expressions_of)
    )
    assert len(bindings) == 1
    assert is_group_leaf(bindings[0]["left"])
    assert bindings[0]["left"].args == (1,)
    assert bindings[0]["predicate"] == (eq("r.k", "s.k"),)


def test_match_memo_operator_mismatch_yields_nothing():
    expressions_of = make_memo_view()
    assert list(match_memo(JOIN_PATTERN, "get", ("r",), (), expressions_of)) == []


def test_match_memo_nested_enumerates_group_expressions():
    expressions_of = make_memo_view()
    # Top expression: join(group3, group4) — group 3 holds two join variants,
    # so the associativity pattern must yield two bindings.
    bindings = list(
        match_memo(
            ASSOC_PATTERN, "join", (eq("s.k", "t.k"),), (3, 4), expressions_of
        )
    )
    assert len(bindings) == 2
    firsts = {binding["a"].args[0] for binding in bindings}
    assert firsts == {1, 2}
    for binding in bindings:
        assert binding["c"].args == (4,)
        assert binding["p2"] == (eq("s.k", "t.k"),)


def test_match_memo_nested_requires_inner_operator():
    expressions_of = make_memo_view()
    # group 1 contains only get expressions: no associativity bindings.
    bindings = list(
        match_memo(ASSOC_PATTERN, "join", (eq(1, 1),), (1, 4), expressions_of)
    )
    assert bindings == []


def test_match_memo_binding_isolation():
    """Each yielded binding must be an independent dict."""
    expressions_of = make_memo_view()
    bindings = list(
        match_memo(
            ASSOC_PATTERN, "join", (eq("s.k", "t.k"),), (3, 4), expressions_of
        )
    )
    bindings[0]["a"] = None
    assert bindings[1]["a"] is not None
