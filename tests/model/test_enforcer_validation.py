"""Enforcer contract validation in ``ModelSpecification.enforcer_applications``.

An enforcer whose ``enforce`` returns a property vector it cannot
satisfy (or that fails to relax the goal) must be rejected with a
:class:`~repro.errors.ModelSpecError` naming the enforcer — both when
called directly and when a search engine routes enforcer applications
through the validated accessor.
"""

import pytest

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import sorted_on
from repro.catalog import Catalog
from repro.errors import ModelSpecError
from repro.model.context import OptimizerContext
from repro.models.relational import relational_model
from repro.search.engine import VolcanoOptimizer
from repro.search.tasks import TaskBasedOptimizer

from tests.lint.fixture_specs import (
    _rel_props,
    broken_enforcer_no_relaxation,
    broken_enforcer_overpromise,
)


def make_context(spec):
    return OptimizerContext(spec, Catalog())


def output_props():
    return _rel_props(None, (), ())


def test_overpromising_enforcer_rejected_by_name():
    spec = broken_enforcer_overpromise()
    with pytest.raises(ModelSpecError, match="bad_sort"):
        spec.enforcer_applications(
            "bad_sort", make_context(spec), sorted_on("c1"), output_props()
        )


def test_non_relaxing_enforcer_rejected_by_name():
    spec = broken_enforcer_no_relaxation()
    with pytest.raises(ModelSpecError, match="lazy_sort"):
        spec.enforcer_applications(
            "lazy_sort", make_context(spec), sorted_on("c1"), output_props()
        )


def test_wellbehaved_enforcer_passes_validation():
    spec = relational_model()
    context = make_context(spec)
    applications = spec.enforcer_applications(
        "sort", context, sorted_on("c1"), output_props()
    )
    assert applications
    for application in applications:
        assert application.delivered.covers(sorted_on("c1"))
        assert application.relaxed != sorted_on("c1")


@pytest.mark.parametrize("engine_cls", [VolcanoOptimizer, TaskBasedOptimizer])
@pytest.mark.parametrize(
    "builder,name",
    [
        (broken_enforcer_overpromise, "bad_sort"),
        (broken_enforcer_no_relaxation, "lazy_sort"),
    ],
)
def test_engines_surface_broken_enforcers(engine_cls, builder, name):
    spec = builder()
    optimizer = engine_cls(spec, Catalog())
    query = LogicalExpression("rel", (), ())
    with pytest.raises(ModelSpecError, match=name):
        optimizer.optimize(query, sorted_on("c1"))
