"""Unit tests for the cost abstract data type."""

import pytest

from repro.errors import ModelSpecError
from repro.model.cost import (
    INFINITE_COST,
    CpuIoCost,
    InfiniteCost,
    ResourceCost,
    ScalarCost,
)


def test_scalar_add_sub():
    assert (ScalarCost(1) + ScalarCost(2)).value == 3
    assert (ScalarCost(5) - ScalarCost(2)).value == 3


def test_scalar_compare():
    assert ScalarCost(1) < ScalarCost(2)
    assert ScalarCost(2) <= ScalarCost(2)
    assert ScalarCost(3) > ScalarCost(2)
    assert ScalarCost(2) == ScalarCost(2)


def test_infinite_is_singleton():
    assert InfiniteCost() is INFINITE_COST


def test_infinite_comparisons():
    assert ScalarCost(1e12) < INFINITE_COST
    assert not (INFINITE_COST < ScalarCost(1))
    assert not (INFINITE_COST < INFINITE_COST)
    assert INFINITE_COST == INFINITE_COST
    assert INFINITE_COST >= ScalarCost(5)


def test_infinite_arithmetic_saturates():
    assert ScalarCost(1) + INFINITE_COST is INFINITE_COST
    assert INFINITE_COST + ScalarCost(1) is INFINITE_COST
    assert INFINITE_COST - ScalarCost(1) is INFINITE_COST


def test_subtracting_infinite_is_error():
    with pytest.raises(ModelSpecError):
        ScalarCost(1) - INFINITE_COST


def test_mixed_types_rejected():
    with pytest.raises(ModelSpecError):
        ScalarCost(1) + CpuIoCost(1, 1)


def test_cpu_io_weighted_total():
    cost = CpuIoCost(cpu=10, io=2, io_weight=100)
    assert cost.total() == 10 + 200


def test_cpu_io_add_preserves_weight():
    total = CpuIoCost(1, 1, io_weight=50) + CpuIoCost(2, 3, io_weight=50)
    assert total.cpu == 3 and total.io == 4
    assert total.io_weight == 50


def test_cpu_io_comparison_is_by_total():
    cheap_io = CpuIoCost(cpu=1000, io=0)
    pricey_io = CpuIoCost(cpu=0, io=50)
    assert cheap_io < pricey_io


def test_cpu_io_subtraction():
    diff = CpuIoCost(5, 5) - CpuIoCost(2, 1)
    assert diff.cpu == 3 and diff.io == 4


def test_resource_cost_memory_discounts_io():
    fits = ResourceCost(cpu=0, io=100, working_set=1000, memory_bytes=1 << 30)
    spills = ResourceCost(cpu=0, io=100, working_set=1 << 40, memory_bytes=1 << 20)
    assert fits.total() < spills.total()


def test_resource_cost_add_takes_max_working_set():
    total = ResourceCost(1, 1, working_set=10) + ResourceCost(1, 1, working_set=99)
    assert total.working_set == 99


def test_costs_hashable():
    assert len({ScalarCost(1), ScalarCost(1), ScalarCost(2)}) == 2
    hash(INFINITE_COST)
    hash(CpuIoCost(1, 2))


def test_str_renderings():
    assert str(INFINITE_COST) == "inf"
    assert "cpu=" in str(CpuIoCost(1, 2))
    assert "ws=" in str(ResourceCost(1, 2, 3))
