"""Unit tests for transformation and implementation rules."""

import pytest

from repro.algebra.expressions import LogicalExpression
from repro.errors import RuleError
from repro.model.patterns import AnyPattern, OpPattern
from repro.model.rules import ImplementationRule, TransformationRule


def simple_pattern():
    return OpPattern("join", (AnyPattern("l"), AnyPattern("r")), args_as="p")


def test_transformation_rule_basics():
    rule = TransformationRule(
        "commute", simple_pattern(), rewrite=lambda binding, context: None
    )
    assert rule.top_operator == "join"
    assert rule.applies({}, None)  # no condition → True
    assert "commute" in str(rule)


def test_transformation_rule_condition():
    rule = TransformationRule(
        "guarded",
        simple_pattern(),
        rewrite=lambda binding, context: None,
        condition=lambda binding, context: binding.get("go", False),
    )
    assert not rule.applies({}, None)
    assert rule.applies({"go": True}, None)


def test_transformation_rule_requires_name_and_op_pattern():
    with pytest.raises(RuleError):
        TransformationRule("", simple_pattern(), lambda b, c: None)
    with pytest.raises(RuleError):
        TransformationRule("x", AnyPattern("a"), lambda b, c: None)


def test_transformation_rule_rejects_duplicate_binding_names():
    bad = OpPattern("join", (AnyPattern("x"), AnyPattern("x")))
    with pytest.raises(Exception):
        TransformationRule("dup", bad, lambda b, c: None)


def test_implementation_rule_basics():
    rule = ImplementationRule("impl", simple_pattern(), "hash_join")
    assert rule.top_operator == "join"
    assert rule.input_names == ("l", "r")
    assert "hash_join" in str(rule)


def test_implementation_rule_input_names_for_complex_mapping():
    pattern = OpPattern(
        "project",
        (OpPattern("join", (AnyPattern("a"), AnyPattern("b")), args_as="p"),),
        args_as="cols",
    )
    rule = ImplementationRule("proj_join", pattern, "join_project")
    assert rule.input_names == ("a", "b")


def test_implementation_rule_leaf_pattern_has_no_inputs():
    rule = ImplementationRule("scan", OpPattern("get", (), args_as="t"), "file_scan")
    assert rule.input_names == ()


def test_implementation_rule_validation():
    with pytest.raises(RuleError):
        ImplementationRule("", simple_pattern(), "alg")
    with pytest.raises(RuleError):
        ImplementationRule("x", simple_pattern(), "")
    with pytest.raises(RuleError):
        ImplementationRule("x", AnyPattern("a"), "alg")


def test_rule_default_promises():
    transformation = TransformationRule("t", simple_pattern(), lambda b, c: None)
    implementation = ImplementationRule("i", simple_pattern(), "alg")
    assert transformation.promise == 1.0
    assert implementation.promise == 1.0
    assert transformation.factor == 1.0
