"""Pattern matching beyond two levels (arbitrary-depth rule patterns)."""

from repro.algebra.expressions import LogicalExpression, is_group_leaf
from repro.model.patterns import AnyPattern, OpPattern, match_memo, match_tree


def node(op, *inputs, args=()):
    return LogicalExpression(op, tuple(args), tuple(inputs))


THREE_LEVEL = OpPattern(
    "a",
    (
        OpPattern(
            "b",
            (OpPattern("c", (AnyPattern("x"),), args_as="pc"),),
            args_as="pb",
        ),
    ),
    args_as="pa",
)


def test_three_level_tree_match():
    tree = node("a", node("b", node("c", node("leaf"), args=("cv",)), args=("bv",)), args=("av",))
    binding = match_tree(THREE_LEVEL, tree)
    assert binding is not None
    assert binding["pa"] == ("av",)
    assert binding["pb"] == ("bv",)
    assert binding["pc"] == ("cv",)
    assert binding["x"].operator == "leaf"


def test_three_level_tree_mismatch_inner():
    tree = node("a", node("b", node("WRONG", node("leaf"))))
    assert match_tree(THREE_LEVEL, tree) is None


def test_three_level_memo_match_enumerates_combinations():
    # Group 0: leaves; group 1: two 'c' variants; group 2: two 'b'
    # variants over group 1; top expression: a(group 2).
    groups = {
        0: [("leaf", (), ())],
        1: [("c", ("c1",), (0,)), ("c", ("c2",), (0,))],
        2: [("b", ("b1",), (1,)), ("b", ("b2",), (1,))],
    }
    expressions_of = lambda gid: iter(groups[gid])
    bindings = list(
        match_memo(THREE_LEVEL, "a", ("av",), (2,), expressions_of)
    )
    # 2 'b' variants × 2 'c' variants = 4 bindings.
    assert len(bindings) == 4
    combos = {(binding["pb"], binding["pc"]) for binding in bindings}
    assert combos == {
        (("b1",), ("c1",)),
        (("b1",), ("c2",)),
        (("b2",), ("c1",)),
        (("b2",), ("c2",)),
    }
    for binding in bindings:
        assert is_group_leaf(binding["x"])
        assert binding["x"].args == (0,)


def test_mixed_leaf_and_nested_positions():
    pattern = OpPattern(
        "join",
        (
            AnyPattern("left"),
            OpPattern("join", (AnyPattern("a"), AnyPattern("b"))),
        ),
    )
    groups = {
        0: [("get", ("r",), ())],
        1: [("get", ("s",), ())],
        2: [("join", (), (0, 1)), ("join", (), (1, 0))],
    }
    expressions_of = lambda gid: iter(groups[gid])
    bindings = list(match_memo(pattern, "join", (), (0, 2), expressions_of))
    assert len(bindings) == 2
    for binding in bindings:
        assert binding["left"].args == (0,)
