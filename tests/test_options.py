"""Tests for the shared options contract (frozen, validated, replaceable)."""

import dataclasses

import pytest

from repro.errors import OptionsError
from repro.exodus import ExodusOptions
from repro.search import SearchOptions
from repro.service import ServiceOptions
from repro.systemr import SystemROptions

OPTION_CLASSES = [SearchOptions, ExodusOptions, SystemROptions, ServiceOptions]


@pytest.mark.parametrize("cls", OPTION_CLASSES)
def test_options_are_frozen(cls):
    options = cls()
    field = dataclasses.fields(options)[0].name
    with pytest.raises(dataclasses.FrozenInstanceError):
        setattr(options, field, object())


@pytest.mark.parametrize("cls", OPTION_CLASSES)
def test_options_are_keyword_only(cls):
    first = dataclasses.fields(cls)[0]
    with pytest.raises(TypeError):
        cls(getattr(cls(), first.name))


@pytest.mark.parametrize("cls", OPTION_CLASSES)
def test_replace_returns_validated_copy(cls):
    options = cls()
    field = dataclasses.fields(options)[0].name
    copy = options.replace(**{field: getattr(options, field)})
    assert copy == options
    assert copy is not options


def test_validation_rejects_bad_knobs():
    with pytest.raises(OptionsError):
        SearchOptions(max_groups=0)
    with pytest.raises(OptionsError):
        ExodusOptions(node_budget=-1)
    with pytest.raises(OptionsError):
        ServiceOptions(max_entries=0)
    with pytest.raises(OptionsError):
        ServiceOptions(selectivity_buckets=-3)


def test_replace_revalidates():
    with pytest.raises(OptionsError):
        SearchOptions().replace(max_groups=-5)


def test_options_error_is_repro_error():
    from repro.errors import ReproError

    assert issubclass(OptionsError, ReproError)
