"""Unit tests for logical expression trees."""

import pytest

from repro.algebra.expressions import (
    GROUP_LEAF,
    LogicalExpression,
    group_leaf,
    is_group_leaf,
)
from repro.algebra.predicates import eq
from repro.errors import AlgebraError


def get(table):
    return LogicalExpression("get", (table,))


def join(left, right, predicate):
    return LogicalExpression("join", (predicate,), (left, right))


def test_leaf_expression():
    expression = get("r")
    assert expression.is_leaf
    assert expression.arity == 0
    assert expression.count_nodes() == 1
    assert expression.depth() == 1


def test_tree_shape():
    tree = join(get("r"), join(get("s"), get("t"), eq("s.k", "t.k")), eq("r.k", "s.k"))
    assert tree.arity == 2
    assert tree.count_nodes() == 5
    assert tree.depth() == 3


def test_walk_is_preorder():
    tree = join(get("r"), get("s"), eq("r.k", "s.k"))
    operators = [node.operator for node in tree.walk()]
    assert operators == ["join", "get", "get"]


def test_empty_operator_rejected():
    with pytest.raises(AlgebraError):
        LogicalExpression("")


def test_non_expression_input_rejected():
    with pytest.raises(AlgebraError):
        LogicalExpression("join", (), ("not an expression",))


def test_expressions_hashable_and_equal_by_value():
    a = join(get("r"), get("s"), eq("r.k", "s.k"))
    b = join(get("r"), get("s"), eq("r.k", "s.k"))
    assert a == b
    assert len({a, b}) == 1


def test_with_inputs_replaces_children():
    tree = join(get("r"), get("s"), eq("r.k", "s.k"))
    swapped = tree.with_inputs((tree.inputs[1], tree.inputs[0]))
    assert swapped.inputs[0].args == ("s",)
    assert swapped.args == tree.args


def test_map_leaves():
    tree = join(get("r"), get("s"), eq("r.k", "s.k"))
    renamed = tree.map_leaves(lambda leaf: get(leaf.args[0].upper()))
    assert [node.args[0] for node in renamed.walk() if node.is_leaf] == ["R", "S"]
    assert renamed.args == tree.args


def test_group_leaf_roundtrip():
    leaf = group_leaf(7)
    assert is_group_leaf(leaf)
    assert leaf.operator == GROUP_LEAF
    assert leaf.args == (7,)
    assert not is_group_leaf(get("r"))


def test_to_sexpr_rendering():
    tree = join(get("r"), get("s"), eq("r.k", "s.k"))
    text = tree.to_sexpr()
    assert text.startswith("(join [r.k = s.k]")
    assert "(get [r])" in text


def test_pretty_rendering_indents():
    tree = join(get("r"), get("s"), eq("r.k", "s.k"))
    lines = tree.pretty().splitlines()
    assert lines[0].startswith("join")
    assert lines[1].startswith("  get")


def test_args_normalized_to_tuple():
    expression = LogicalExpression("get", ["r"])
    assert expression.args == ("r",)
