"""Unit tests for the predicate mini-language."""

import pytest

from repro.algebra.predicates import (
    TRUE,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    col,
    conjunction_of,
    eq,
    equi_join_pairs,
    lit,
    split_conjuncts,
)
from repro.errors import PredicateError

ROW = {"a": 1, "b": 2, "c": 1}


def test_column_ref_evaluates_from_row():
    assert col("a").evaluate(ROW) == 1


def test_column_ref_missing_column_raises():
    with pytest.raises(PredicateError):
        col("zzz").evaluate(ROW)


def test_literal_evaluates_to_itself():
    assert lit(42).evaluate(ROW) == 42


@pytest.mark.parametrize(
    "op,left,right,expected",
    [
        (ComparisonOp.EQ, 1, 1, True),
        (ComparisonOp.NE, 1, 1, False),
        (ComparisonOp.LT, 1, 2, True),
        (ComparisonOp.LE, 2, 2, True),
        (ComparisonOp.GT, 1, 2, False),
        (ComparisonOp.GE, 2, 2, True),
    ],
)
def test_comparison_ops(op, left, right, expected):
    assert op.apply(left, right) is expected


def test_comparison_flipped_roundtrip():
    for op in ComparisonOp:
        assert op.flipped.flipped is op


def test_eq_helper_builds_column_and_literal():
    predicate = eq("a", 5)
    assert isinstance(predicate.left, ColumnRef)
    assert isinstance(predicate.right, Literal)
    assert predicate.evaluate({"a": 5})


def test_column_pair_and_column_literal():
    join = eq("a", "b")
    assert join.column_pair() == ("a", "b")
    assert join.column_literal() is None
    selection = eq("a", 7)
    assert selection.column_pair() is None
    assert selection.column_literal() == ("a", ComparisonOp.EQ, 7)


def test_column_literal_normalizes_direction():
    predicate = Comparison(ComparisonOp.LT, lit(10), col("a"))
    assert predicate.column_literal() == ("a", ComparisonOp.GT, 10)


def test_conjunction_evaluation_and_flattening():
    inner = Conjunction((eq("a", 1), eq("b", 2)))
    outer = Conjunction((inner, eq("c", 1)))
    assert outer.evaluate(ROW)
    assert len(outer.conjuncts()) == 3


def test_conjunction_requires_two_parts():
    with pytest.raises(PredicateError):
        Conjunction((TRUE,))


def test_disjunction_evaluation():
    predicate = Disjunction((eq("a", 9), eq("b", 2)))
    assert predicate.evaluate(ROW)
    assert not Disjunction((eq("a", 9), eq("b", 9))).evaluate(ROW)


def test_negation():
    assert Negation(eq("a", 9)).evaluate(ROW)


def test_true_predicate():
    assert TRUE.evaluate({})
    assert TRUE.conjuncts() == ()
    assert TRUE.is_true


def test_conjunction_of_empty_is_true():
    assert conjunction_of([]) is TRUE


def test_conjunction_of_single_is_identity():
    predicate = eq("a", 1)
    assert conjunction_of([predicate]) is predicate


def test_conjunction_of_flattens_nested():
    merged = conjunction_of([Conjunction((eq("a", 1), eq("b", 2))), eq("c", 3)])
    assert len(merged.conjuncts()) == 3


def test_columns_collected_transitively():
    predicate = Conjunction((eq("a", "b"), Negation(eq("c", 1))))
    assert predicate.columns() == frozenset({"a", "b", "c"})


def test_split_conjuncts_routes_by_available_columns():
    predicate = conjunction_of([eq("a", "b"), eq("b", "c"), eq("a", 1)])
    inside, outside = split_conjuncts(predicate, frozenset({"a", "b"}))
    assert inside.columns() == frozenset({"a", "b"})
    assert "c" in outside.columns()


def test_split_conjuncts_all_inside():
    predicate = eq("a", 1)
    inside, outside = split_conjuncts(predicate, frozenset({"a"}))
    assert inside == predicate
    assert outside is TRUE


def test_equi_join_pairs_simple():
    pairs = equi_join_pairs(eq("l", "r"), frozenset({"l"}), frozenset({"r"}))
    assert pairs == (("l", "r"),)


def test_equi_join_pairs_swapped_sides():
    pairs = equi_join_pairs(eq("r", "l"), frozenset({"l"}), frozenset({"r"}))
    assert pairs == (("l", "r"),)


def test_equi_join_pairs_multi_key():
    predicate = conjunction_of([eq("l1", "r1"), eq("l2", "r2")])
    pairs = equi_join_pairs(
        predicate, frozenset({"l1", "l2"}), frozenset({"r1", "r2"})
    )
    assert pairs == (("l1", "r1"), ("l2", "r2"))


def test_equi_join_pairs_rejects_non_equality():
    predicate = Comparison(ComparisonOp.LT, col("l"), col("r"))
    assert equi_join_pairs(predicate, frozenset({"l"}), frozenset({"r"})) is None


def test_equi_join_pairs_rejects_literal_comparison():
    assert equi_join_pairs(eq("l", 3), frozenset({"l"}), frozenset({"r"})) is None


def test_equi_join_pairs_rejects_same_side_columns():
    assert (
        equi_join_pairs(eq("l1", "l2"), frozenset({"l1", "l2"}), frozenset({"r"}))
        is None
    )


def test_equi_join_pairs_rejects_true():
    assert equi_join_pairs(TRUE, frozenset({"l"}), frozenset({"r"})) is None


def test_predicates_are_hashable():
    assert len({eq("a", 1), eq("a", 1), eq("a", 2)}) == 2


def test_string_rendering():
    assert str(eq("a", 1)) == "a = 1"
    assert "and" in str(Conjunction((eq("a", 1), eq("b", 2))))
    assert "or" in str(Disjunction((eq("a", 1), eq("b", 2))))
    assert str(Negation(eq("a", 1))) == "not (a = 1)"
    assert str(lit("x")) == "'x'"
