"""Unit tests for logical properties and physical property vectors."""

import pytest

from repro.algebra.properties import (
    ANY_PROPS,
    LogicalProperties,
    Partitioning,
    PhysProps,
    hash_partitioned,
    sort_key,
    sorted_on,
)
from repro.catalog.schema import Schema
from repro.errors import AlgebraError


# -- sort keys ---------------------------------------------------------------


def test_sort_key_from_string():
    assert sort_key("a") == frozenset({"a"})


def test_sort_key_from_iterable():
    assert sort_key(["a", "b"]) == frozenset({"a", "b"})


def test_sort_key_rejects_empty():
    with pytest.raises(AlgebraError):
        sort_key([])


# -- PhysProps cover ---------------------------------------------------------


def test_any_props_is_any():
    assert ANY_PROPS.is_any
    assert not sorted_on("a").is_any


def test_everything_covers_any():
    assert sorted_on("a").covers(ANY_PROPS)
    assert ANY_PROPS.covers(ANY_PROPS)


def test_any_does_not_cover_sorted():
    assert not ANY_PROPS.covers(sorted_on("a"))


def test_exact_sort_covers_itself():
    assert sorted_on("a", "b").covers(sorted_on("a", "b"))


def test_longer_sort_covers_prefix():
    assert sorted_on("a", "b").covers(sorted_on("a"))


def test_prefix_does_not_cover_longer():
    assert not sorted_on("a").covers(sorted_on("a", "b"))


def test_wrong_order_does_not_cover():
    assert not sorted_on("b", "a").covers(sorted_on("a", "b"))


def test_equivalence_set_covers_singleton():
    # Output of merge join on r.k = s.k is sorted on both names at once.
    provided = PhysProps(sort_order=(frozenset({"r.k", "s.k"}),))
    assert provided.covers(sorted_on("r.k"))
    assert provided.covers(sorted_on("s.k"))
    assert not provided.covers(sorted_on("t.k"))


def test_singleton_does_not_cover_equivalence_set():
    required = PhysProps(sort_order=(frozenset({"r.k", "s.k"}),))
    assert not sorted_on("r.k").covers(required)


def test_partitioning_requirement():
    provided = PhysProps(partitioning=hash_partitioned(["k"], 4))
    assert provided.covers(PhysProps(partitioning=hash_partitioned(["k"], 4)))
    assert not provided.covers(PhysProps(partitioning=hash_partitioned(["k"], 8)))
    assert not ANY_PROPS.covers(PhysProps(partitioning=hash_partitioned(["k"], 4)))
    # No partitioning requirement: a partitioned plan still qualifies.
    assert provided.covers(ANY_PROPS)


def test_partitioning_key_equivalence():
    provided = PhysProps(
        partitioning=Partitioning("hash", (frozenset({"r.k", "s.k"}),), 4)
    )
    assert provided.covers(PhysProps(partitioning=hash_partitioned(["r.k"], 4)))


def test_partitioning_scheme_mismatch():
    provided = PhysProps(partitioning=Partitioning("range", ("k",), 4))
    assert not provided.covers(PhysProps(partitioning=hash_partitioned(["k"], 4)))


def test_partitioning_degree_validation():
    with pytest.raises(AlgebraError):
        Partitioning("hash", ("k",), 0)


def test_flags_cover():
    provided = ANY_PROPS.with_flag("assembled")
    assert provided.covers(PhysProps(flags=frozenset({("assembled", True)})))
    assert not ANY_PROPS.covers(PhysProps(flags=frozenset({("assembled", True)})))
    assert provided.flag("assembled") is True
    assert provided.flag("missing") is None


def test_with_and_without_derivations():
    props = sorted_on("a").with_flag("unique").with_partitioning(
        hash_partitioned(["a"], 2)
    )
    assert props.without_sort().sort_order == ()
    assert props.without_partitioning().partitioning is None
    assert props.without_flag("unique").flags == frozenset()
    assert props.only_sort() == sorted_on("a")


def test_with_sort_normalizes_strings():
    props = ANY_PROPS.with_sort(["a", "b"])
    assert props.sort_order == (frozenset({"a"}), frozenset({"b"}))


def test_props_hashable():
    assert len({sorted_on("a"), sorted_on("a"), sorted_on("b")}) == 2


def test_props_str_readable():
    assert str(ANY_PROPS) == "any"
    assert "sorted(a)" in str(sorted_on("a"))
    assert "partitioned" in str(PhysProps(partitioning=hash_partitioned(["k"], 2)))


# -- LogicalProperties --------------------------------------------------------


def make_props(cardinality, names=("a", "b"), tables=("r",)):
    return LogicalProperties(
        schema=Schema.of(*names), cardinality=cardinality, tables=frozenset(tables)
    )


def test_logical_props_column_names():
    assert make_props(10).column_names == frozenset({"a", "b"})


def test_consistency_same_cardinality():
    assert make_props(10.0).consistent_with(make_props(10.0))


def test_consistency_allows_column_reordering():
    left = make_props(10.0, names=("a", "b"))
    right = make_props(10.0, names=("b", "a"))
    assert left.consistent_with(right)


def test_consistency_rejects_different_cardinality():
    assert not make_props(10.0).consistent_with(make_props(20.0))


def test_consistency_rejects_different_tables():
    assert not make_props(10.0, tables=("r",)).consistent_with(
        make_props(10.0, tables=("s",))
    )


def test_consistency_tolerates_rounding():
    assert make_props(1e9).consistent_with(make_props(1e9 * (1 + 1e-9)))
