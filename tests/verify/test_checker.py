"""verify_plan unit behaviour: shape gates and targeted P-codes.

The corruption matrix lives in tests/verify/test_mutations.py; this
module pins the checker's direct contract — what passes, what each
shape violation reports, and that verification needs no memo and no
catalog (catalog-dependent checks are skipped, not failed).
"""

import dataclasses
import pickle

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import eq
from repro.models.relational import get, join
from repro.verify import KIND_SEARCH, PlanCertificate, VerifyReport, verify_plan

from .conftest import SPEC


def codes(report: VerifyReport):
    return {diagnostic.code for diagnostic in report.diagnostics}


def test_genuine_certificate_verifies(certified_case):
    catalog, query, result = certified_case
    report = verify_plan(
        SPEC, query, result.plan, result.certificate, catalog=catalog
    )
    assert report.ok
    assert result.certificate.kind == KIND_SEARCH


def test_verifies_without_catalog(certified_case):
    # The checker degrades gracefully: statistics-dependent checks are
    # skipped when no catalog is supplied, everything else still runs.
    _, query, result = certified_case
    report = verify_plan(SPEC, query, result.plan, result.certificate)
    assert report.ok


def test_missing_certificate_is_p001(certified_case):
    catalog, query, result = certified_case
    report = verify_plan(SPEC, query, result.plan, None, catalog=catalog)
    assert not report.ok
    assert codes(report) == {"P001"}


def test_wrong_certificate_type_is_p001(certified_case):
    catalog, query, result = certified_case
    report = verify_plan(
        SPEC, query, result.plan, "not a certificate", catalog=catalog
    )
    assert not report.ok
    assert codes(report) == {"P001"}


def test_unknown_kind_is_p001(certified_case):
    catalog, query, result = certified_case
    bogus = dataclasses.replace(result.certificate, kind="hearsay")
    report = verify_plan(SPEC, query, result.plan, bogus, catalog=catalog)
    assert not report.ok
    assert codes(report) == {"P001"}


def test_foreign_source_is_p003(certified_case):
    catalog, query, result = certified_case
    other = join(get("r"), get("s"), eq("r.k", "s.k"))
    report = verify_plan(
        SPEC, other, result.plan, result.certificate, catalog=catalog
    )
    assert not report.ok
    assert "P003" in codes(report)


def test_claim_count_mismatch_is_p002(certified_case):
    catalog, query, result = certified_case
    truncated = dataclasses.replace(
        result.certificate, claims=result.certificate.claims[:-1]
    )
    report = verify_plan(SPEC, query, result.plan, truncated, catalog=catalog)
    assert not report.ok
    assert "P002" in codes(report)


def test_doubled_claimed_cost_is_p3xx(certified_case):
    catalog, query, result = certified_case
    cost = result.certificate.claimed_cost
    inflated = dataclasses.replace(result.certificate, claimed_cost=cost + cost)
    report = verify_plan(SPEC, query, result.plan, inflated, catalog=catalog)
    assert not report.ok
    assert any(code.startswith("P3") for code in codes(report))


def test_reversed_frontier_is_p4xx(certified_case):
    catalog, query, result = certified_case
    frontier = result.certificate.frontier
    swapped = LogicalExpression(
        frontier.operator, frontier.args, tuple(reversed(frontier.inputs))
    )
    mangled = dataclasses.replace(result.certificate, frontier=swapped)
    report = verify_plan(SPEC, query, result.plan, mangled, catalog=catalog)
    assert not report.ok
    assert any(code.startswith("P4") for code in codes(report))


def test_report_is_deterministic(certified_case):
    catalog, query, result = certified_case
    first = verify_plan(
        SPEC, query, result.plan, result.certificate, catalog=catalog
    )
    second = verify_plan(
        SPEC, query, result.plan, result.certificate, catalog=catalog
    )
    assert first.ok and second.ok
    assert [str(d) for d in first.diagnostics] == [
        str(d) for d in second.diagnostics
    ]


def test_certificate_survives_pickle(certified_case):
    catalog, query, result = certified_case
    thawed = pickle.loads(pickle.dumps(result.certificate))
    assert isinstance(thawed, PlanCertificate)
    assert thawed == result.certificate
    assert verify_plan(SPEC, query, result.plan, thawed, catalog=catalog).ok
