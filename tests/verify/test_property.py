"""Property coverage: certificates hold across models, engines, shapes.

Hypothesis drives random catalogs and join chains through the Volcano
engine; every winning plan's certificate must survive a pickle
round-trip and satisfy the independent checker.  A parametrized sweep
extends the same acceptance claim to every bundled model
specification and every engine family the repo ships.
"""

import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.predicates import eq
from repro.models.relational import get, join, select
from repro.search import SearchOptions, TaskBasedOptimizer, VolcanoOptimizer
from repro.search.certify import certify_result
from repro.verify import KIND_DEGRADED, KIND_SEARCH, verify_plan

from tests.generator.test_codegen_all_models import MODELS, build_spec
from tests.helpers import chain_query, make_catalog

from .conftest import SPEC

table_sizes = st.lists(st.integers(100, 7200), min_size=2, max_size=4)


@settings(max_examples=20, deadline=None)
@given(table_sizes, st.booleans())
def test_certificates_verify_and_round_trip(sizes, select_first):
    names = [f"t{i}" for i in range(len(sizes))]
    catalog = make_catalog(list(zip(names, sizes)))
    query = chain_query(names)
    if select_first:
        query = select(query, eq(f"{names[0]}.v", 1))
    engine = VolcanoOptimizer(
        SPEC,
        catalog,
        SearchOptions(check_consistency=False, certificates=True),
    )
    result = engine.optimize(query)
    certificate = result.certificate
    assert certificate is not None
    assert certificate.kind in (KIND_SEARCH, KIND_DEGRADED)
    thawed = pickle.loads(pickle.dumps(certificate))
    assert thawed == certificate
    report = verify_plan(SPEC, query, result.plan, thawed, catalog=catalog)
    assert report.ok, report.render()


@pytest.mark.parametrize("name", sorted(MODELS))
@pytest.mark.parametrize(
    "engine_cls", [VolcanoOptimizer, TaskBasedOptimizer]
)
def test_every_bundled_model_verifies(name, engine_cls):
    # The same relational-shaped query every model supports (see
    # tests/generator/test_codegen_all_models.py).
    spec = build_spec(name)
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    query = join(select(get("r"), eq("r.v", 1)), get("s"), eq("r.k", "s.k"))
    engine = engine_cls(
        spec,
        catalog,
        SearchOptions(check_consistency=False, certificates=True),
    )
    result = engine.optimize(query)
    assert result.certificate is not None
    report = verify_plan(
        spec, query, result.plan, result.certificate, catalog=catalog
    )
    assert report.ok, report.render()


@pytest.mark.parametrize("name", sorted(MODELS))
def test_every_bundled_model_certifies_memo_less_plans(name):
    # The standalone path (used for EXODUS/System R baselines) must
    # also re-derive provenance under every bundled model.
    spec = build_spec(name)
    catalog = make_catalog([("r", 1200), ("s", 2400)])
    query = join(select(get("r"), eq("r.v", 1)), get("s"), eq("r.k", "s.k"))
    engine = VolcanoOptimizer(
        spec, catalog, SearchOptions(check_consistency=False)
    )
    result = engine.optimize(query)

    class _MemoLess:
        plan = result.plan
        required = result.required
        degraded = False

    certificate = certify_result(
        _MemoLess(), spec, query, catalog=catalog, engine="MemoLess"
    )
    report = verify_plan(
        spec, query, result.plan, certificate, catalog=catalog
    )
    assert report.ok, report.render()
