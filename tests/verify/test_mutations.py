"""The mutation harness must catch every seeded plan corruption.

This is the verifier's own test oracle: if a corruption slips through,
the checker has a blind spot and a buggy engine could ship a wrong
plan with a plausible-looking certificate.
"""

import pytest

from repro.verify.mutate import CORRUPTIONS, build_fixture, run_mutations


@pytest.fixture(scope="module")
def fixture():
    return build_fixture()


def test_corruption_matrix_is_broad_enough():
    # The acceptance bar is twelve distinct corruptions; keep headroom.
    assert len(CORRUPTIONS) >= 12
    assert len({c.name for c in CORRUPTIONS}) == len(CORRUPTIONS)


def test_every_corruption_is_detected(fixture):
    outcomes = run_mutations(fixture=fixture)
    missed = [o.corruption.name for o in outcomes if not o.detected]
    assert not missed, f"undetected corruption(s): {missed}"


def test_detections_cite_the_expected_family(fixture):
    # Each corruption targets one check family (P1xx chain, P2xx
    # properties, ...); the verdict must come from that family, not
    # from an incidental downstream failure.
    outcomes = run_mutations(fixture=fixture)
    for outcome in outcomes:
        prefix = outcome.corruption.expected_family[:2]
        assert any(
            code.startswith(prefix) for code in outcome.codes
        ), (
            f"{outcome.corruption.name}: expected a "
            f"{outcome.corruption.expected_family} code, got {outcome.codes}"
        )


def test_uncorrupted_fixture_verifies_clean(fixture):
    from repro.verify import verify_plan

    assert verify_plan(
        fixture.spec,
        fixture.query,
        fixture.plan,
        fixture.certificate,
        catalog=fixture.catalog,
    ).ok
    assert verify_plan(
        fixture.spec,
        fixture.shared_query,
        fixture.shared_plan,
        fixture.shared_certificate,
        catalog=fixture.shared_catalog,
    ).ok
