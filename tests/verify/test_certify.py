"""Certificate production across every engine the repo ships.

Memo engines (Volcano, task-based) record claims during search;
memo-less baselines (EXODUS, System R) are certified after the fact by
re-deriving provenance from a fresh logical closure.  Degraded anytime
plans carry the ``degraded`` kind.  In every case the independent
checker must accept the result.
"""

import pytest

from repro.exodus import ExodusOptimizer
from repro.options import ResourceBudget
from repro.search import SearchOptions, TaskBasedOptimizer, VolcanoOptimizer
from repro.search.certify import certify_result, standalone_certificate
from repro.systemr import SystemROptimizer
from repro.verify import KIND_DEGRADED, KIND_SEARCH, verify_plan

from tests.helpers import chain_query, make_catalog

from .conftest import SPEC

MEMO_ENGINES = [VolcanoOptimizer, TaskBasedOptimizer]


def certified_engine(engine_cls, catalog, **overrides):
    return engine_cls(
        SPEC,
        catalog,
        SearchOptions(
            check_consistency=False, certificates=True, **overrides
        ),
    )


@pytest.fixture(scope="module")
def chain_case():
    names = [f"t{i}" for i in range(5)]
    catalog = make_catalog(
        [(name, 500 + 100 * i) for i, name in enumerate(names)]
    )
    return catalog, chain_query(names)


@pytest.mark.parametrize("engine_cls", MEMO_ENGINES)
def test_memo_engine_certificates_verify(engine_cls, chain_case):
    catalog, query = chain_case
    result = certified_engine(engine_cls, catalog).optimize(query)
    assert result.certificate is not None
    assert result.certificate.kind == KIND_SEARCH
    assert result.certificate.engine == engine_cls.__name__
    report = verify_plan(
        SPEC, query, result.plan, result.certificate, catalog=catalog
    )
    assert report.ok, report.render()


@pytest.mark.parametrize("engine_cls", MEMO_ENGINES)
def test_certificates_off_by_default(engine_cls, chain_case):
    catalog, query = chain_case
    engine = engine_cls(
        SPEC, catalog, SearchOptions(check_consistency=False)
    )
    assert engine.optimize(query).certificate is None


def test_batch_certificates_verify(chain_case):
    catalog, _ = chain_case
    names = ["t0", "t1", "t2"]
    queries = [
        chain_query(names),
        chain_query(names[:2]),
        chain_query(list(reversed(names))),
    ]
    engine = certified_engine(VolcanoOptimizer, catalog)
    results = engine.optimize_batch(queries)
    assert len(results) == len(queries)
    for query, result in zip(queries, results):
        assert result.certificate is not None
        report = verify_plan(
            SPEC, query, result.plan, result.certificate, catalog=catalog
        )
        assert report.ok, report.render()


def test_degraded_plan_carries_degraded_kind(chain_case):
    catalog, query = chain_case
    engine = certified_engine(VolcanoOptimizer, catalog)
    result = engine.optimize(
        query,
        options=engine.options.replace(
            budget=ResourceBudget(max_rule_firings=5)
        ),
    )
    assert result.degraded
    assert result.certificate is not None
    assert result.certificate.kind == KIND_DEGRADED
    report = verify_plan(
        SPEC, query, result.plan, result.certificate, catalog=catalog
    )
    assert report.ok, report.render()


@pytest.mark.parametrize("engine_cls", [ExodusOptimizer, SystemROptimizer])
def test_baseline_engines_certify_after_the_fact(engine_cls, chain_case):
    catalog, query = chain_case
    result = engine_cls(SPEC, catalog).optimize(query)
    certificate = certify_result(
        result, SPEC, query, catalog=catalog, engine=engine_cls.__name__
    )
    assert certificate.kind == KIND_SEARCH
    assert certificate.engine == engine_cls.__name__
    report = verify_plan(
        SPEC, query, result.plan, certificate, catalog=catalog
    )
    assert report.ok, report.render()


def test_standalone_certificate_from_plain_plan(chain_case):
    # No memo, no engine result object — just a plan and the model.
    catalog, query = chain_case
    reference = certified_engine(VolcanoOptimizer, catalog).optimize(query)
    certificate = standalone_certificate(
        SPEC, catalog, query, reference.plan, reference.required
    )
    report = verify_plan(
        SPEC, query, reference.plan, certificate, catalog=catalog
    )
    assert report.ok, report.render()


def test_certificate_cost_matches_result(chain_case):
    catalog, query = chain_case
    result = certified_engine(VolcanoOptimizer, catalog).optimize(query)
    assert result.certificate.claimed_cost == result.cost
