"""Exit-code and output contract of ``python -m repro.verify``."""

from pathlib import Path

from repro.verify.cli import main

GOLDEN = Path(__file__).resolve().parents[1] / "service" / "golden_plans.json"


def test_missing_golden_file_is_usage_error(capsys):
    assert main(["--golden", "/nonexistent/golden.json"]) == 2
    assert "not found" in capsys.readouterr().out


def test_workload_mode_verifies_clean(capsys):
    assert main(["--strict", "--skip-batch"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out
    assert "0 warning(s)" in out


def test_sharing_batch_verifies_clean(capsys):
    assert main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out


def test_golden_mode_verifies_the_committed_snapshots(capsys):
    # The acceptance gate: all 84 (query, engine) golden pairs plus the
    # mqo_sharing batch, strict, zero violations.
    assert GOLDEN.is_file()
    assert main(["--golden", str(GOLDEN), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out
    assert "0 warning(s)" in out


def test_golden_mode_fails_on_tampered_snapshot(tmp_path, capsys):
    import json

    golden = json.loads(GOLDEN.read_text())
    engine = sorted(golden)[0]
    golden[engine][0]["cost"] = golden[engine][0]["cost"] * 2
    tampered = tmp_path / "golden.json"
    tampered.write_text(json.dumps(golden))
    assert main(["--golden", str(tampered), "--skip-batch"]) == 1
    assert "differs from golden" in capsys.readouterr().out
