"""Shared fixtures for the plan-verification tests.

One optimized three-relation query with certificate recording on,
reused module-wide: certificate construction exercises the memo walk,
so building it once keeps the corruption/unit tests fast.
"""

import pytest

from repro.algebra.predicates import eq
from repro.models.relational import get, join, relational_model, select
from repro.search import SearchOptions, VolcanoOptimizer

from tests.helpers import make_catalog

SPEC = relational_model()


@pytest.fixture(scope="package")
def certified_case():
    catalog = make_catalog([("r", 1200), ("s", 2400), ("t", 4800)])
    query = join(
        join(select(get("r"), eq("r.v", 1)), get("s"), eq("r.k", "s.k")),
        get("t"),
        eq("s.k", "t.k"),
    )
    engine = VolcanoOptimizer(
        SPEC,
        catalog,
        SearchOptions(check_consistency=False, certificates=True),
    )
    result = engine.optimize(query)
    assert result.certificate is not None
    return catalog, query, result
