"""Shared machinery for optimizer option blocks and resource budgets.

Every engine in this package is configured through a small frozen
dataclass of knobs (:class:`~repro.search.SearchOptions`,
:class:`~repro.exodus.ExodusOptions`,
:class:`~repro.systemr.SystemROptions`,
:class:`~repro.service.ServiceOptions`).  They share one contract,
factored here:

* **frozen and keyword-only** — an options object is a value; engines
  may hold it across many optimizations without defensive copies, and
  call sites stay readable because every knob is named;
* **validated on construction** — ``__post_init__`` funnels every
  options class through its :meth:`~OptionsBase.validate` hook, so a
  bad knob fails at construction time with :class:`OptionsError`
  instead of deep inside a search;
* **updatable by replacement** — :meth:`~OptionsBase.replace` derives a
  new options value with some fields changed (re-validated), the only
  way to "mutate" one.

This module also defines the resource-governance layer every engine
shares: :class:`ResourceBudget` (the frozen specification: wall-clock
deadline, costing quota, rule-firing quota), :class:`BudgetMeter` (the
per-run tracker that charges work against a budget), and
:class:`BudgetReport` (the typed account of a trip).  The paper's
``FindBestPlan`` already accepts a per-goal cost limit — "the user
interface may permit users to set their own limits to 'catch'
unreasonable queries"; a :class:`ResourceBudget` bounds the *search
effort itself* the same way, so optimization latency stays predictable
under load.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from repro.errors import OptionsError

__all__ = [
    "OptionsBase",
    "check_positive",
    "check_fraction",
    "ResourceBudget",
    "BudgetReport",
    "BudgetMeter",
    "BudgetTripped",
]


def check_positive(name: str, value) -> None:
    """Validation helper: ``value`` must be ``None`` or strictly positive."""
    if value is not None and value <= 0:
        raise OptionsError(f"{name} must be positive, got {value!r}")


def check_fraction(name: str, value) -> None:
    """Validation helper: ``value`` must be ``None`` or within [0, 1]."""
    if value is not None and not 0.0 <= value <= 1.0:
        raise OptionsError(f"{name} must be within [0, 1], got {value!r}")


class OptionsBase:
    """Base class for frozen, keyword-only option dataclasses.

    Subclasses are declared ``@dataclass(frozen=True, kw_only=True)``
    and override :meth:`validate` with their field invariants.
    """

    __slots__ = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""

    def replace(self, **changes) -> "OptionsBase":
        """A copy of these options with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True, kw_only=True)
class ResourceBudget(OptionsBase):
    """A frozen per-query bound on optimization effort.

    Every engine option block carries an optional budget; each limit is
    independent, and the first one hit trips the whole budget.

    ``deadline_seconds``
        Wall-clock bound on the optimization (not the produced plan's
        execution), measured from the engine's entry.
    ``max_costings``
        Quota on cost-function invocations (algorithm + enforcer
        costings), the dominant work unit of the costing phase.
    ``max_rule_firings``
        Quota on transformation-rule firings, the dominant work unit of
        logical exploration.

    The composable memory bound stays where it was: ``max_groups`` on
    :class:`~repro.search.SearchOptions` and ``node_budget`` on
    :class:`~repro.exodus.ExodusOptions`.
    """

    deadline_seconds: Optional[float] = None
    max_costings: Optional[int] = None
    max_rule_firings: Optional[int] = None

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("deadline_seconds", self.deadline_seconds)
        check_positive("max_costings", self.max_costings)
        check_positive("max_rule_firings", self.max_rule_firings)

    @property
    def is_unbounded(self) -> bool:
        """True when no limit is set (the meter becomes a no-op)."""
        return (
            self.deadline_seconds is None
            and self.max_costings is None
            and self.max_rule_firings is None
        )


@dataclasses.dataclass(frozen=True)
class BudgetReport:
    """The typed account of a budget trip.

    ``tripped`` names the limit that fired (``"deadline"``,
    ``"costings"``, or ``"rule_firings"``); ``phase`` says how far the
    search had progressed (``"exploration"`` before any costing,
    ``"costing"`` mid-``FindBestPlan``, ``"forward_chaining"`` /
    ``"enumeration"`` in the baselines).  ``best_cost`` is the
    best-so-far total for the root goal — ``None`` means no complete
    plan existed when the budget tripped (infinite best-so-far), in
    which case a degrading engine fell back to its greedy pass.
    """

    tripped: str
    phase: str
    elapsed_seconds: float
    costings: int
    rule_firings: int
    budget: ResourceBudget
    best_cost: Optional[object] = None

    def __str__(self) -> str:
        best = str(self.best_cost) if self.best_cost is not None else "inf"
        return (
            f"budget tripped: {self.tripped} during {self.phase} "
            f"after {self.elapsed_seconds:.4f}s "
            f"({self.costings} costings, {self.rule_firings} rule firings; "
            f"best-so-far {best})"
        )


class BudgetTripped(Exception):
    """Internal control-flow signal: a budget limit was hit mid-search.

    Deliberately *not* a :class:`~repro.errors.ReproError`: engines
    always catch it at their entry point and either degrade gracefully
    or convert it into the public
    :class:`~repro.errors.BudgetExceededError`.  It must never escape
    an ``optimize()`` call.
    """

    def __init__(self, tripped: str, phase: str):
        super().__init__(f"{tripped} budget tripped during {phase}")
        self.tripped = tripped
        self.phase = phase


class BudgetMeter:
    """Per-run tracker charging work against a :class:`ResourceBudget`.

    One meter is created per ``optimize()`` call (budgets themselves are
    frozen values and shareable).  Engines charge the two work units at
    the sites where the matching :class:`~repro.search.SearchStats`
    counters move, and call :meth:`check` at every move boundary;
    ``check`` raises :class:`BudgetTripped` on the first limit hit and
    keeps raising on subsequent calls (a tripped meter stays tripped).

    With no budget (or an unbounded one) every method is a cheap no-op,
    so metering adds no measurable cost to unbounded searches.
    """

    __slots__ = (
        "budget",
        "started",
        "costings",
        "rule_firings",
        "tripped",
        "armed",
        "_deadline_at",
        "_clock",
    )

    def __init__(
        self,
        budget: Optional[ResourceBudget],
        *,
        clock=time.perf_counter,
    ):
        self.budget = budget
        self._clock = clock
        self.started = clock()
        self.costings = 0
        self.rule_firings = 0
        self.tripped: Optional[str] = None
        self.armed = budget is not None and not budget.is_unbounded
        self._deadline_at = (
            self.started + budget.deadline_seconds
            if self.armed and budget.deadline_seconds is not None
            else None
        )

    def elapsed(self) -> float:
        """Seconds since the meter was armed."""
        return self._clock() - self.started

    def charge_costing(self) -> None:
        """Account one cost-function invocation."""
        self.costings += 1

    def charge_rule_firing(self) -> None:
        """Account one transformation-rule firing."""
        self.rule_firings += 1

    def check(self, phase: str) -> None:
        """Raise :class:`BudgetTripped` when any limit has been hit."""
        if not self.armed:
            return
        if self.tripped is not None:
            raise BudgetTripped(self.tripped, phase)
        budget = self.budget
        if budget.max_costings is not None and self.costings >= budget.max_costings:
            self.tripped = "costings"
        elif (
            budget.max_rule_firings is not None
            and self.rule_firings >= budget.max_rule_firings
        ):
            self.tripped = "rule_firings"
        elif self._deadline_at is not None and self._clock() >= self._deadline_at:
            self.tripped = "deadline"
        if self.tripped is not None:
            raise BudgetTripped(self.tripped, phase)

    def report(self, phase: str, best_cost=None) -> BudgetReport:
        """The typed account of this meter's trip (or current standing)."""
        return BudgetReport(
            tripped=self.tripped if self.tripped is not None else "none",
            phase=phase,
            elapsed_seconds=self.elapsed(),
            costings=self.costings,
            rule_firings=self.rule_firings,
            budget=self.budget if self.budget is not None else ResourceBudget(),
            best_cost=best_cost,
        )
