"""Shared machinery for optimizer option blocks.

Every engine in this package is configured through a small frozen
dataclass of knobs (:class:`~repro.search.SearchOptions`,
:class:`~repro.exodus.ExodusOptions`,
:class:`~repro.systemr.SystemROptions`,
:class:`~repro.service.ServiceOptions`).  They share one contract,
factored here:

* **frozen and keyword-only** — an options object is a value; engines
  may hold it across many optimizations without defensive copies, and
  call sites stay readable because every knob is named;
* **validated on construction** — ``__post_init__`` funnels every
  options class through its :meth:`~OptionsBase.validate` hook, so a
  bad knob fails at construction time with :class:`OptionsError`
  instead of deep inside a search;
* **updatable by replacement** — :meth:`~OptionsBase.replace` derives a
  new options value with some fields changed (re-validated), the only
  way to "mutate" one.
"""

from __future__ import annotations

import dataclasses

from repro.errors import OptionsError

__all__ = ["OptionsBase", "check_positive", "check_fraction"]


def check_positive(name: str, value) -> None:
    """Validation helper: ``value`` must be ``None`` or strictly positive."""
    if value is not None and value <= 0:
        raise OptionsError(f"{name} must be positive, got {value!r}")


def check_fraction(name: str, value) -> None:
    """Validation helper: ``value`` must be ``None`` or within [0, 1]."""
    if value is not None and not 0.0 <= value <= 1.0:
        raise OptionsError(f"{name} must be within [0, 1], got {value!r}")


class OptionsBase:
    """Base class for frozen, keyword-only option dataclasses.

    Subclasses are declared ``@dataclass(frozen=True, kw_only=True)``
    and override :meth:`validate` with their field invariants.
    """

    __slots__ = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""

    def replace(self, **changes) -> "OptionsBase":
        """A copy of these options with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
