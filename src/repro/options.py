"""Shared machinery for optimizer option blocks and resource budgets.

Every engine in this package is configured through a small frozen
dataclass of knobs (:class:`~repro.search.SearchOptions`,
:class:`~repro.exodus.ExodusOptions`,
:class:`~repro.systemr.SystemROptions`,
:class:`~repro.service.ServiceOptions`).  They share one contract,
factored here:

* **frozen and keyword-only** — an options object is a value; engines
  may hold it across many optimizations without defensive copies, and
  call sites stay readable because every knob is named;
* **validated on construction** — ``__post_init__`` funnels every
  options class through its :meth:`~OptionsBase.validate` hook, so a
  bad knob fails at construction time with :class:`OptionsError`
  instead of deep inside a search;
* **updatable by replacement** — :meth:`~OptionsBase.replace` derives a
  new options value with some fields changed (re-validated), the only
  way to "mutate" one.

This module also defines the resource-governance layer every engine
shares: :class:`ResourceBudget` (the frozen specification: wall-clock
deadline, costing quota, rule-firing quota), :class:`BudgetMeter` (the
per-run tracker that charges work against a budget), and
:class:`BudgetReport` (the typed account of a trip).  The paper's
``FindBestPlan`` already accepts a per-goal cost limit — "the user
interface may permit users to set their own limits to 'catch'
unreasonable queries"; a :class:`ResourceBudget` bounds the *search
effort itself* the same way, so optimization latency stays predictable
under load.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from repro.errors import OptionsError

__all__ = [
    "OptionsBase",
    "check_positive",
    "check_fraction",
    "ResourceBudget",
    "BudgetReport",
    "BudgetMeter",
    "BudgetTripped",
    "KERNEL_TIERS",
    "PROMISE_HINTS",
    "QueryHints",
    "ServerOptions",
]

#: The generated-kernel tiers a hint or option may name.
KERNEL_TIERS = ("interpreted", "specialized", "compiled")

#: The promise-model dispositions a per-query hint may name.
PROMISE_HINTS = ("service", "static", "none")


def check_positive(name: str, value) -> None:
    """Validation helper: ``value`` must be ``None`` or strictly positive."""
    if value is not None and value <= 0:
        raise OptionsError(f"{name} must be positive, got {value!r}")


def check_fraction(name: str, value) -> None:
    """Validation helper: ``value`` must be ``None`` or within [0, 1]."""
    if value is not None and not 0.0 <= value <= 1.0:
        raise OptionsError(f"{name} must be within [0, 1], got {value!r}")


class OptionsBase:
    """Base class for frozen, keyword-only option dataclasses.

    Subclasses are declared ``@dataclass(frozen=True, kw_only=True)``
    and override :meth:`validate` with their field invariants.
    """

    __slots__ = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""

    def replace(self, **changes) -> "OptionsBase":
        """A copy of these options with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True, kw_only=True)
class ResourceBudget(OptionsBase):
    """A frozen per-query bound on optimization effort.

    Every engine option block carries an optional budget; each limit is
    independent, and the first one hit trips the whole budget.

    ``deadline_seconds``
        Wall-clock bound on the optimization (not the produced plan's
        execution), measured from the engine's entry.
    ``max_costings``
        Quota on cost-function invocations (algorithm + enforcer
        costings), the dominant work unit of the costing phase.
    ``max_rule_firings``
        Quota on transformation-rule firings, the dominant work unit of
        logical exploration.

    The composable memory bound stays where it was: ``max_groups`` on
    :class:`~repro.search.SearchOptions` and ``node_budget`` on
    :class:`~repro.exodus.ExodusOptions`.
    """

    deadline_seconds: Optional[float] = None
    max_costings: Optional[int] = None
    max_rule_firings: Optional[int] = None

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("deadline_seconds", self.deadline_seconds)
        check_positive("max_costings", self.max_costings)
        check_positive("max_rule_firings", self.max_rule_firings)

    @property
    def is_unbounded(self) -> bool:
        """True when no limit is set (the meter becomes a no-op)."""
        return (
            self.deadline_seconds is None
            and self.max_costings is None
            and self.max_rule_firings is None
        )


@dataclasses.dataclass(frozen=True)
class BudgetReport:
    """The typed account of a budget trip.

    ``tripped`` names the limit that fired (``"deadline"``,
    ``"costings"``, or ``"rule_firings"``); ``phase`` says how far the
    search had progressed (``"exploration"`` before any costing,
    ``"costing"`` mid-``FindBestPlan``, ``"forward_chaining"`` /
    ``"enumeration"`` in the baselines).  ``best_cost`` is the
    best-so-far total for the root goal — ``None`` means no complete
    plan existed when the budget tripped (infinite best-so-far), in
    which case a degrading engine fell back to its greedy pass.
    """

    tripped: str
    phase: str
    elapsed_seconds: float
    costings: int
    rule_firings: int
    budget: ResourceBudget
    best_cost: Optional[object] = None

    def __str__(self) -> str:
        best = str(self.best_cost) if self.best_cost is not None else "inf"
        return (
            f"budget tripped: {self.tripped} during {self.phase} "
            f"after {self.elapsed_seconds:.4f}s "
            f"({self.costings} costings, {self.rule_firings} rule firings; "
            f"best-so-far {best})"
        )


class BudgetTripped(Exception):
    """Internal control-flow signal: a budget limit was hit mid-search.

    Deliberately *not* a :class:`~repro.errors.ReproError`: engines
    always catch it at their entry point and either degrade gracefully
    or convert it into the public
    :class:`~repro.errors.BudgetExceededError`.  It must never escape
    an ``optimize()`` call.
    """

    def __init__(self, tripped: str, phase: str):
        super().__init__(f"{tripped} budget tripped during {phase}")
        self.tripped = tripped
        self.phase = phase


class BudgetMeter:
    """Per-run tracker charging work against a :class:`ResourceBudget`.

    One meter is created per ``optimize()`` call (budgets themselves are
    frozen values and shareable).  Engines charge the two work units at
    the sites where the matching :class:`~repro.search.SearchStats`
    counters move, and call :meth:`check` at every move boundary;
    ``check`` raises :class:`BudgetTripped` on the first limit hit and
    keeps raising on subsequent calls (a tripped meter stays tripped).

    With no budget (or an unbounded one) every method is a cheap no-op,
    so metering adds no measurable cost to unbounded searches.
    """

    __slots__ = (
        "budget",
        "started",
        "costings",
        "rule_firings",
        "tripped",
        "armed",
        "_deadline_at",
        "_clock",
    )

    def __init__(
        self,
        budget: Optional[ResourceBudget],
        *,
        clock=time.perf_counter,
    ):
        self.budget = budget
        self._clock = clock
        self.started = clock()
        self.costings = 0
        self.rule_firings = 0
        self.tripped: Optional[str] = None
        self.armed = budget is not None and not budget.is_unbounded
        self._deadline_at = (
            self.started + budget.deadline_seconds
            if self.armed and budget.deadline_seconds is not None
            else None
        )

    def elapsed(self) -> float:
        """Seconds since the meter was armed."""
        return self._clock() - self.started

    def charge_costing(self) -> None:
        """Account one cost-function invocation."""
        self.costings += 1

    def charge_rule_firing(self) -> None:
        """Account one transformation-rule firing."""
        self.rule_firings += 1

    def check(self, phase: str) -> None:
        """Raise :class:`BudgetTripped` when any limit has been hit."""
        if not self.armed:
            return
        if self.tripped is not None:
            raise BudgetTripped(self.tripped, phase)
        budget = self.budget
        if budget.max_costings is not None and self.costings >= budget.max_costings:
            self.tripped = "costings"
        elif (
            budget.max_rule_firings is not None
            and self.rule_firings >= budget.max_rule_firings
        ):
            self.tripped = "rule_firings"
        elif self._deadline_at is not None and self._clock() >= self._deadline_at:
            self.tripped = "deadline"
        if self.tripped is not None:
            raise BudgetTripped(self.tripped, phase)

    def report(self, phase: str, best_cost=None) -> BudgetReport:
        """The typed account of this meter's trip (or current standing)."""
        return BudgetReport(
            tripped=self.tripped if self.tripped is not None else "none",
            phase=phase,
            elapsed_seconds=self.elapsed(),
            costings=self.costings,
            rule_firings=self.rule_firings,
            budget=self.budget if self.budget is not None else ResourceBudget(),
            best_cost=best_cost,
        )


@dataclasses.dataclass(frozen=True, kw_only=True)
class QueryHints(OptionsBase):
    """Per-request steering of one optimization through the service.

    The production plan-management knob set: a client (or the server's
    request deserializer) attaches hints to a single query, and the
    service folds them into the engine options for that one run — the
    service's own defaults and the engine's construction-time options
    are untouched.

    ``engine``
        Which named engine serves the request.  Interpreted by the
        server (:mod:`repro.server`), which validates it against its
        configured engine set; the service itself ignores it (it wraps
        exactly one engine).
    ``kernel``
        A generated-kernel tier (one of :data:`KERNEL_TIERS`) for this
        run.  Unlike :attr:`~repro.service.ServiceOptions.kernel`, a
        hint *overrides* an engine-pinned kernel — an explicit
        per-query hint outranks construction-time defaults.  Plans are
        byte-identical across tiers, so this only trades compilation
        and dispatch cost.
    ``budget``
        A :class:`ResourceBudget` for this run, same semantics as the
        per-request ``budget=`` argument of
        :meth:`~repro.service.OptimizerService.optimize` (which wins
        when both are given).
    ``promise``
        Promise-model disposition: ``"service"`` (explicit default —
        the service's configured model, if any), ``"static"`` (force
        the identity :data:`~repro.search.promise.STATIC_PROMISE`,
        bit-for-bit historical move ordering), or ``"none"`` (force
        *no* promise model for this run, even one pinned in the
        engine's own options).

    Hints only steer *fresh* optimizations: a cache or pin hit serves
    the stored plan regardless (the plan would be identical anyway —
    kernel and promise never change answers, only effort).
    """

    engine: Optional[str] = None
    kernel: Optional[str] = None
    budget: Optional[ResourceBudget] = None
    promise: Optional[str] = None

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        if self.kernel is not None and self.kernel not in KERNEL_TIERS:
            raise OptionsError(
                f"kernel hint must be one of {KERNEL_TIERS}, got {self.kernel!r}"
            )
        if self.promise is not None and self.promise not in PROMISE_HINTS:
            raise OptionsError(
                f"promise hint must be one of {PROMISE_HINTS}, "
                f"got {self.promise!r}"
            )

    @property
    def is_empty(self) -> bool:
        """True when no hint is set (the request carries no steering)."""
        return (
            self.engine is None
            and self.kernel is None
            and self.budget is None
            and self.promise is None
        )


@dataclasses.dataclass(frozen=True, kw_only=True)
class ServerOptions(OptionsBase):
    """Policy knobs of the long-lived optimizer server (:mod:`repro.server`).

    **Admission control** — the server never lets unbounded concurrent
    optimizations pile onto the shared cache:

    ``max_concurrent``
        Optimization-triggering requests allowed in flight at once
        (each occupies one worker thread).
    ``max_queue_depth``
        Requests allowed to *wait* for a slot beyond that; one more and
        the server fast-fails the request with a 429 instead of
        building an invisible backlog.
    ``queue_timeout_seconds``
        How long a queued request may wait for a slot before it is
        429'd (a per-request ``deadline_seconds`` tightens this and,
        once admitted, the remainder becomes the optimization's
        wall-clock budget).

    **Plan management** — the regression guard's evidence thresholds:

    ``guard_plans``
        Whether the plan-regression guard is active: a refreshed plan
        (same query, new statistics) whose estimated cost regresses
        beyond what the incumbent's *observed* execution evidence
        supports is rolled back and quarantined
        (:class:`~repro.server.PlanRegistry`).
    ``guard_threshold``
        Base tolerated estimated-cost growth factor of a refresh over
        its incumbent.
    ``guard_slack_cap``
        Upper bound on the evidence slack: an incumbent whose own
        estimates were off by q (its observed q-error) licenses a
        refresh up to ``threshold * min(q, cap)`` — genuine drift
        produces honestly-costlier plans, and the guard must not roll
        those back.
    ``verify_pins``
        Re-check a plan's provenance certificate through
        :func:`repro.verify.verify_plan` when it is pinned; a failing
        certificate refuses the pin.

    **Lifecycle**:

    ``workers``
        Size of the thread pool optimizations run on (at least
        ``max_concurrent``).
    ``drain_seconds``
        Graceful-shutdown patience: how long to wait for in-flight
        requests to finish before the event loop is torn down anyway.
    ``request_timeout_seconds``
        Idle read timeout on an open connection.
    """

    max_concurrent: int = 4
    max_queue_depth: int = 16
    queue_timeout_seconds: float = 10.0
    guard_plans: bool = True
    guard_threshold: float = 1.5
    guard_slack_cap: float = 16.0
    verify_pins: bool = True
    workers: int = 4
    drain_seconds: float = 10.0
    request_timeout_seconds: float = 60.0

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("max_concurrent", self.max_concurrent)
        if self.max_queue_depth < 0:
            raise OptionsError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth!r}"
            )
        check_positive("queue_timeout_seconds", self.queue_timeout_seconds)
        check_positive("workers", self.workers)
        check_positive("drain_seconds", self.drain_seconds)
        check_positive("request_timeout_seconds", self.request_timeout_seconds)
        if self.guard_threshold < 1.0:
            raise OptionsError(
                f"guard_threshold must be >= 1.0, got {self.guard_threshold!r}"
            )
        if self.guard_slack_cap < 1.0:
            raise OptionsError(
                f"guard_slack_cap must be >= 1.0, got {self.guard_slack_cap!r}"
            )
        if self.workers < self.max_concurrent:
            raise OptionsError(
                f"workers ({self.workers}) must cover max_concurrent "
                f"({self.max_concurrent}) admission slots"
            )
