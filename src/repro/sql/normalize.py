"""Literal normalization for parameterized plan caching.

Two queries that differ only in the constants of their column–literal
comparisons (``emp.v <= 40`` vs. ``emp.v <= 45``) almost always deserve
the same plan: the optimizer's choice depends on the predicate's
*selectivity*, not its constant.  This module canonicalizes such queries
to a shared **template** in which every column–literal comparison holds
a :class:`~repro.dynamic.Parameter` placeholder instead of the literal,
plus the literal values to re-bind and a **selectivity bucket key** that
captures how selective each replaced comparison is.

The :class:`~repro.service.OptimizerService` caches plans under
``(template, bucket key)``: queries with differing literals share one
cache entry exactly when each replaced comparison lands in the same
selectivity bucket — equality predicates always do (System R estimates
``1/distinct`` regardless of the constant), range predicates do when
their constants cut the column's value range at nearby fractions.

Parameter names are assigned in pre-order traversal of the expression,
so structurally identical queries produce byte-identical templates.
Structurally *equal* comparisons occurring in several places (a
predicate duplicated by pushdown, say) share one parameter, which keeps
the original → parameterized mapping unambiguous and makes
:func:`parameterize_plan` + :func:`~repro.dynamic.bind_plan` an exact
round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Predicate,
)
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.dynamic import Parameter, bind_plan

__all__ = [
    "NormalizedQuery",
    "normalize_literals",
    "parameterize_plan",
    "bind_expression",
    "selectivity_bucket",
]


@dataclass(frozen=True)
class NormalizedQuery:
    """A query split into its parameterized template and its constants.

    ``template``
        The logical expression with every column–literal comparison
        parameterized.  Queries differing only in those literals share a
        template.
    ``bucket_key``
        One ``(parameter, op, bucket)`` triple per parameter, in
        parameter order.  Part of the cache key: two normalized queries
        are plan-compatible when their templates *and* bucket keys match.
    ``bindings``
        Parameter name → the original literal value, for re-binding a
        cached template plan to this query's constants.
    ``replacements``
        Original comparison → its parameterized form, for translating a
        freshly optimized plan into a cacheable template
        (:func:`parameterize_plan`).
    """

    template: LogicalExpression
    bucket_key: Tuple[Tuple[str, str, int], ...]
    bindings: Mapping[str, object] = field(hash=False)
    replacements: Mapping[Comparison, Comparison] = field(hash=False)

    @property
    def is_parameterized(self) -> bool:
        """Whether any literal was lifted into a parameter."""
        return bool(self.bindings)

    def bind(self, plan: PhysicalPlan) -> PhysicalPlan:
        """Substitute this query's literals into a template plan."""
        return bind_plan(plan, self.bindings)


def _column_stats(catalog: Catalog) -> Dict[str, object]:
    """All column statistics in the catalog, keyed by qualified name."""
    stats: Dict[str, object] = {}
    for entry in catalog.tables():
        stats.update(entry.statistics.columns)
    return stats


def selectivity_bucket(selectivity: float, buckets: int) -> int:
    """Map a selectivity in [0, 1] to one of ``buckets`` equal bins.

    The shared bucketing scheme: plan-cache keys (here) and the
    execution-feedback store (:mod:`repro.feedback`) both bin predicates
    with this function, so feedback aggregates align with the cache's
    notion of plan-compatible selectivities.
    """
    return min(buckets - 1, int(selectivity * buckets))


_bucket = selectivity_bucket


def normalize_literals(
    query: LogicalExpression,
    catalog: Catalog,
    buckets: int = 10,
    estimator: Optional[SelectivityEstimator] = None,
) -> NormalizedQuery:
    """Replace column–literal comparisons with parameters, bucketed.

    Every comparison of a column against a :class:`Literal` becomes a
    comparison against a fresh :class:`~repro.dynamic.Parameter`
    (``?p0``, ``?p1``, … in pre-order); its selectivity — estimated from
    the catalog's statistics with the System R rules — is quantized into
    ``buckets`` bins to form the bucket key.  Queries with no such
    comparisons normalize to themselves with an empty key.
    """
    estimator = estimator or SelectivityEstimator()
    column_stats = _column_stats(catalog)
    bindings: Dict[str, object] = {}
    replacements: Dict[Comparison, Comparison] = {}
    key: list = []

    def parameterize(comparison: Comparison) -> Comparison:
        if comparison in replacements:
            return replacements[comparison]
        name = f"p{len(bindings)}"
        parameter = Parameter(name)
        if isinstance(comparison.right, Literal):
            value = comparison.right.value
            replaced = Comparison(comparison.op, comparison.left, parameter)
        else:
            value = comparison.left.value
            replaced = Comparison(comparison.op, parameter, comparison.right)
        selectivity = estimator.estimate(comparison, column_stats)
        bindings[name] = value
        replacements[comparison] = replaced
        key.append((name, comparison.op.value, _bucket(selectivity, buckets)))
        return replaced

    def rewrite_predicate(predicate: Predicate) -> Predicate:
        if isinstance(predicate, Comparison):
            if predicate.column_literal() is not None:
                return parameterize(predicate)
            return predicate
        if isinstance(predicate, Conjunction):
            return Conjunction(tuple(rewrite_predicate(p) for p in predicate.parts))
        if isinstance(predicate, Disjunction):
            return Disjunction(tuple(rewrite_predicate(p) for p in predicate.parts))
        if isinstance(predicate, Negation):
            return Negation(rewrite_predicate(predicate.part))
        return predicate

    def rewrite_expression(node: LogicalExpression) -> LogicalExpression:
        args = tuple(
            rewrite_predicate(arg) if isinstance(arg, Predicate) else arg
            for arg in node.args
        )
        inputs = tuple(rewrite_expression(child) for child in node.inputs)
        return LogicalExpression(node.operator, args, inputs)

    template = rewrite_expression(query)
    return NormalizedQuery(
        template=template,
        bucket_key=tuple(key),
        bindings=bindings,
        replacements=replacements,
    )


def parameterize_plan(
    plan: PhysicalPlan, replacements: Mapping[Comparison, Comparison]
) -> PhysicalPlan:
    """Rewrite a plan's predicates into template (parameterized) form.

    ``replacements`` is the original → parameterized comparison mapping
    of the :class:`NormalizedQuery` whose optimization produced ``plan``.
    Binding the result with the query's literals is an exact round trip:
    ``bind_plan(parameterize_plan(plan, r), bindings) == plan``.
    """

    def rewrite_predicate(predicate: Predicate) -> Predicate:
        if isinstance(predicate, Comparison):
            return replacements.get(predicate, predicate)
        if isinstance(predicate, Conjunction):
            return Conjunction(tuple(rewrite_predicate(p) for p in predicate.parts))
        if isinstance(predicate, Disjunction):
            return Disjunction(tuple(rewrite_predicate(p) for p in predicate.parts))
        if isinstance(predicate, Negation):
            return Negation(rewrite_predicate(predicate.part))
        return predicate

    args = tuple(
        rewrite_predicate(arg) if isinstance(arg, Predicate) else arg
        for arg in plan.args
    )
    return PhysicalPlan(
        plan.algorithm,
        args,
        tuple(parameterize_plan(child, replacements) for child in plan.inputs),
        properties=plan.properties,
        cost=plan.cost,
        is_enforcer=plan.is_enforcer,
    )


def bind_expression(
    template: LogicalExpression, values: Mapping[str, object]
) -> LogicalExpression:
    """Substitute literal ``values`` into a parameterized template.

    The logical-expression counterpart of
    :func:`~repro.dynamic.bind_plan`: every
    :class:`~repro.dynamic.Parameter` named in ``values`` becomes the
    given :class:`~repro.algebra.predicates.Literal` constant.  The
    server's prepared-statement ``bind`` endpoint uses it to turn a
    stored template back into a concrete query, which then resolves
    through the ordinary parameterized plan cache.  A parameter missing
    from ``values`` raises :class:`~repro.errors.PredicateError`.
    """
    from repro.dynamic import bind_predicate

    def rewrite(node: LogicalExpression) -> LogicalExpression:
        args = tuple(
            bind_predicate(arg, values) if isinstance(arg, Predicate) else arg
            for arg in node.args
        )
        inputs = tuple(rewrite(child) for child in node.inputs)
        return LogicalExpression(node.operator, args, inputs)

    return rewrite(template)
