"""SQL front-end: lexer, parser, translator to the logical algebra (S15)."""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.normalize import (
    NormalizedQuery,
    normalize_literals,
    parameterize_plan,
)
from repro.sql.parser import (
    SelectStatement,
    SetStatement,
    Statement,
    TableRef,
    parse,
)
from repro.sql.translator import Translation, Translator, translate

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "SelectStatement",
    "SetStatement",
    "Statement",
    "TableRef",
    "parse",
    "Translation",
    "Translator",
    "translate",
    "NormalizedQuery",
    "normalize_literals",
    "parameterize_plan",
]
