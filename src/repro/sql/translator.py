"""Translate parsed SQL into the logical algebra plus required properties.

The translator performs the pre-optimizer work a real DBMS front-end
does: name resolution against the catalog, pushing single-table
conjuncts into per-table selections, assembling a connected (left-deep)
join tree — the optimizer then reorders it — and converting ``ORDER BY``
into the physical property vector of the optimization goal ("physical
properties as requested by the user (for example, sort order as in the
ORDER BY clause of SQL)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import (
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    conjunction_of,
)
from repro.algebra.properties import ANY_PROPS, PhysProps, sorted_on
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import SqlError, UnknownColumnError
from repro.models.aggregates import aggregate
from repro.models.relational import get, join, project, select
from repro.sql.parser import (
    SelectStatement,
    SetStatement,
    Statement,
    TableRef,
    parse,
)

__all__ = ["Translation", "Translator", "translate"]


@dataclass
class Translation:
    """A logical query plus the goal properties the user requested."""

    expression: LogicalExpression
    required: PhysProps


class Translator:
    """Catalog-aware SQL → logical algebra translation."""

    def __init__(self, catalog: Catalog, allow_cross_products: bool = False):
        self.catalog = catalog
        self.allow_cross_products = allow_cross_products

    # ------------------------------------------------------------------

    def translate(self, text: str) -> Translation:
        """Parse and translate SQL text."""
        return self.translate_statement(parse(text))

    def translate_statement(self, statement: Statement) -> Translation:
        """Translate a parsed statement."""
        if isinstance(statement, SetStatement):
            return self._translate_set(statement)
        return self._translate_select(statement)

    # ------------------------------------------------------------------

    def _translate_set(self, statement: SetStatement) -> Translation:
        left = self.translate_statement(statement.left)
        right = self.translate_statement(statement.right)
        if not left.required.is_any or not right.required.is_any:
            raise SqlError("ORDER BY must appear after the last set operand")
        operator = statement.operator
        args = (statement.all,) if operator == "union" else ()
        expression = LogicalExpression(
            operator, args, (left.expression, right.expression)
        )
        return Translation(expression, ANY_PROPS)

    def _translate_select(self, statement: SelectStatement) -> Translation:
        scopes = self._resolve_tables(statement.tables)
        combined = self._combined_schema(scopes)
        predicate = self._resolve_predicate(statement.where, combined, scopes)

        # Split conjuncts: single-table ones become selections.
        per_table: Dict[str, List[Predicate]] = {
            ref.binding: [] for ref, _ in scopes
        }
        join_conjuncts: List[Predicate] = []
        for conjunct in predicate.conjuncts():
            owner = self._owning_table(conjunct, scopes)
            if owner is not None:
                per_table[owner].append(conjunct)
            else:
                join_conjuncts.append(conjunct)

        leaves: Dict[str, LogicalExpression] = {}
        for ref, schema in scopes:
            leaf = get(ref.table, ref.alias)
            table_predicate = conjunction_of(per_table[ref.binding])
            if not table_predicate.is_true:
                leaf = select(leaf, table_predicate)
            leaves[ref.binding] = leaf

        expression = self._join_tree(scopes, leaves, join_conjuncts)

        if statement.distinct:
            raise SqlError("SELECT DISTINCT is not supported by the relational model")

        if statement.group_by or statement.aggregates:
            expression, output_columns = self._apply_aggregation(
                statement, expression, combined, scopes
            )
        else:
            output_columns = None
            if statement.columns is not None:
                output_columns = [
                    self._resolve_column(name, combined, scopes)
                    for name in statement.columns
                ]
                expression = project(expression, output_columns)

        required = ANY_PROPS
        if statement.order_by:
            order = []
            for name in statement.order_by:
                if output_columns is not None and name in output_columns:
                    order.append(name)  # an aggregate output or exact name
                else:
                    order.append(self._resolve_column(name, combined, scopes))
            if output_columns is not None and any(
                name not in output_columns for name in order
            ):
                raise SqlError("ORDER BY columns must appear in the select list")
            required = sorted_on(*order)
        return Translation(expression, required)

    def _apply_aggregation(self, statement, expression, combined, scopes):
        """GROUP BY / aggregate handling: wrap the tree in an aggregate."""
        if statement.columns is None:
            raise SqlError("SELECT * cannot be combined with aggregation")
        group_columns = [
            self._resolve_column(name, combined, scopes)
            for name in statement.group_by
        ]
        plain = [
            self._resolve_column(name, combined, scopes)
            for name in statement.plain_columns
        ]
        stray = [name for name in plain if name not in group_columns]
        if stray:
            raise SqlError(
                f"column(s) {', '.join(stray)} must appear in GROUP BY"
            )
        aggregate_specs = []
        for item in statement.aggregates:
            column = (
                self._resolve_column(item.column, combined, scopes)
                if item.column is not None
                else None
            )
            aggregate_specs.append((item.output_name, item.function, column))
        expression = aggregate(expression, group_columns, aggregate_specs)
        # The aggregate's output: group columns then aggregates; project
        # when the select list orders or subsets them differently.
        natural = group_columns + [spec[0] for spec in aggregate_specs]
        if statement.having is not None:
            having = self._resolve_having(
                statement.having, natural, combined, scopes
            )
            expression = select(expression, having)
        selected = []
        for item in statement.columns:
            if isinstance(item, str):
                selected.append(self._resolve_column(item, combined, scopes))
            else:
                selected.append(item.output_name)
        if selected != natural:
            expression = project(expression, selected)
        return expression, selected

    def _resolve_having(self, predicate, output_names, combined, scopes):
        """Resolve HAVING references against the aggregate's output.

        Names may be aggregate output names/aliases (kept as-is) or
        grouping columns (resolved through the catalog scopes).
        """
        from repro.algebra.predicates import ColumnRef as _ColumnRef

        def resolve_scalar(scalar):
            if not isinstance(scalar, _ColumnRef):
                return scalar
            if scalar.name in output_names:
                return scalar
            resolved = self._resolve_column(scalar.name, combined, scopes)
            if resolved not in output_names:
                raise SqlError(
                    f"HAVING references {scalar.name!r}, which is neither an "
                    f"aggregate output nor a grouping column"
                )
            return _ColumnRef(resolved)

        if isinstance(predicate, Comparison):
            return Comparison(
                predicate.op,
                resolve_scalar(predicate.left),
                resolve_scalar(predicate.right),
            )
        if isinstance(predicate, Conjunction):
            return Conjunction(
                tuple(
                    self._resolve_having(p, output_names, combined, scopes)
                    for p in predicate.parts
                )
            )
        if isinstance(predicate, Disjunction):
            return Disjunction(
                tuple(
                    self._resolve_having(p, output_names, combined, scopes)
                    for p in predicate.parts
                )
            )
        if isinstance(predicate, Negation):
            return Negation(
                self._resolve_having(predicate.part, output_names, combined, scopes)
            )
        return predicate

    # ------------------------------------------------------------------

    def _resolve_tables(
        self, refs: List[TableRef]
    ) -> List[Tuple[TableRef, Schema]]:
        scopes = []
        seen = set()
        for ref in refs:
            if ref.binding in seen:
                raise SqlError(f"duplicate table binding {ref.binding!r}")
            seen.add(ref.binding)
            entry = self.catalog.table(ref.table)
            schema = entry.schema
            if ref.alias is not None:
                schema = schema.prefixed(ref.alias)
            scopes.append((ref, schema))
        return scopes

    def _combined_schema(self, scopes) -> Schema:
        combined = Schema(())
        for _, schema in scopes:
            combined = combined.concat(schema)
        return combined

    def _resolve_column(self, name: str, combined: Schema, scopes=None) -> str:
        from repro.errors import SchemaError

        try:
            return combined.resolve(name)
        except UnknownColumnError:
            pass
        except SchemaError as error:
            # Ambiguous as a bare suffix; a qualifier may disambiguate.
            if "." not in name:
                raise SqlError(str(error)) from None
        # Qualified form: 'binding.column' against that table's own schema.
        if "." in name and scopes:
            qualifier, _, column = name.partition(".")
            for ref, schema in scopes:
                if ref.binding != qualifier:
                    continue
                try:
                    return schema.resolve(column)
                except (UnknownColumnError, SchemaError):
                    break
        raise SqlError(f"unknown column {name!r}")

    def _resolve_predicate(
        self, predicate: Predicate, combined: Schema, scopes
    ) -> Predicate:
        """Rewrite every column reference to its resolved qualified name."""
        if isinstance(predicate, Comparison):
            return Comparison(
                predicate.op,
                self._resolve_scalar(predicate.left, combined, scopes),
                self._resolve_scalar(predicate.right, combined, scopes),
            )
        if isinstance(predicate, Conjunction):
            return Conjunction(
                tuple(
                    self._resolve_predicate(p, combined, scopes)
                    for p in predicate.parts
                )
            )
        if isinstance(predicate, Disjunction):
            return Disjunction(
                tuple(
                    self._resolve_predicate(p, combined, scopes)
                    for p in predicate.parts
                )
            )
        if isinstance(predicate, Negation):
            return Negation(self._resolve_predicate(predicate.part, combined, scopes))
        return predicate

    def _resolve_scalar(self, scalar, combined: Schema, scopes):
        if isinstance(scalar, ColumnRef):
            return ColumnRef(self._resolve_column(scalar.name, combined, scopes))
        return scalar

    def _owning_table(self, conjunct: Predicate, scopes) -> Optional[str]:
        """The single table binding a conjunct references, if exactly one."""
        columns = conjunct.columns()
        owners = set()
        for ref, schema in scopes:
            if any(name in schema for name in columns):
                owners.add(ref.binding)
        if len(owners) == 1:
            return owners.pop()
        return None

    def _join_tree(self, scopes, leaves, conjuncts) -> LogicalExpression:
        """A connected left-deep join tree; the optimizer reorders it."""
        if len(scopes) == 1:
            expression = leaves[scopes[0][0].binding]
            if conjuncts:
                expression = select(expression, conjunction_of(conjuncts))
            return expression
        bindings = {ref.binding: schema for ref, schema in scopes}
        joined = {scopes[0][0].binding}
        expression = leaves[scopes[0][0].binding]
        available = set(bindings[scopes[0][0].binding].column_names)
        remaining = list(conjuncts)
        unjoined = [ref.binding for ref, _ in scopes[1:]]
        while unjoined:
            progress = False
            for binding in list(unjoined):
                candidate_columns = available | set(bindings[binding].column_names)
                applicable = [
                    conjunct
                    for conjunct in remaining
                    if conjunct.columns() <= candidate_columns
                ]
                if applicable:
                    expression = join(
                        expression, leaves[binding], conjunction_of(applicable)
                    )
                    for conjunct in applicable:
                        remaining.remove(conjunct)
                    available = candidate_columns
                    joined.add(binding)
                    unjoined.remove(binding)
                    progress = True
                    break
            if not progress:
                if not self.allow_cross_products:
                    raise SqlError(
                        "query requires a Cartesian product (missing join "
                        "predicate); enable cross products to allow it"
                    )
                binding = unjoined.pop(0)
                expression = join(expression, leaves[binding], conjunction_of([]))
                available |= set(bindings[binding].column_names)
                joined.add(binding)
        if remaining:
            expression = select(expression, conjunction_of(remaining))
        return expression


def translate(
    text: str, catalog: Catalog, allow_cross_products: bool = False
) -> Translation:
    """Convenience: parse and translate query text."""
    return Translator(catalog, allow_cross_products).translate(text)
