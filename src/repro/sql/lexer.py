"""Tokenizer for the small SQL dialect of the front-end.

The paper assumes a parser upstream of the optimizer ("The translation
from a user interface into a logical algebra expression must be
performed by the parser and is not discussed here"); this package is
that parser, so the examples and benchmarks can start from query text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import SqlError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical categories of the SQL dialect."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "JOIN",
        "ON",
        "AS",
        "ORDER",
        "GROUP",
        "HAVING",
        "BETWEEN",
        "IN",
        "BY",
        "ASC",
        "DESC",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "ALL",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "(", ")", ",", "*", "=", "<", ">", ".")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def __str__(self) -> str:
        if self.type is TokenType.END:
            return "end of input"
        return f"{self.value!r}"


def tokenize(text: str) -> List[Token]:
    """Turn query text into tokens; raises SqlError with a position."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        character = text[position]
        if character.isspace():
            position += 1
            continue
        if character == "-" and text[position : position + 2] == "--":
            newline = text.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if character.isalpha() or character == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if character.isdigit():
            start = position
            while position < length and (
                text[position].isdigit() or text[position] == "."
            ):
                position += 1
            number = text[start:position]
            if number.count(".") > 1:
                raise SqlError(f"malformed number {number!r}", start)
            tokens.append(Token(TokenType.NUMBER, number, start))
            continue
        if character == "'":
            start = position
            position += 1
            pieces = []
            while position < length and text[position] != "'":
                pieces.append(text[position])
                position += 1
            if position >= length:
                raise SqlError("unterminated string literal", start)
            position += 1
            tokens.append(Token(TokenType.STRING, "".join(pieces), start))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, position):
                tokens.append(Token(TokenType.SYMBOL, symbol, position))
                position += len(symbol)
                break
        else:
            raise SqlError(f"unexpected character {character!r}", position)
    tokens.append(Token(TokenType.END, "", length))
    return tokens
