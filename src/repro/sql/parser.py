"""Recursive-descent parser for the small SQL dialect.

Grammar (keywords case-insensitive)::

    statement   := select ( (UNION | INTERSECT | EXCEPT) [ALL] select )*
    select      := SELECT [DISTINCT] select_list
                   FROM table_ref ( ',' table_ref | JOIN table_ref ON cond )*
                   [WHERE cond]
                   [GROUP BY column_ref (',' column_ref)*] [HAVING cond]
                   [ORDER BY order_item (',' order_item)*]
    select_list := '*' | select_item (',' select_item)*
    select_item := column_ref
                 | (COUNT|SUM|MIN|MAX|AVG) '(' (column_ref | '*') ')' [AS IDENT]
    table_ref   := IDENT [[AS] IDENT]
    cond        := and_cond (OR and_cond)*
    and_cond    := not_cond (AND not_cond)*
    not_cond    := [NOT] primary
    primary     := '(' cond ')'
                 | operand compare_op operand
                 | operand BETWEEN operand AND operand
                 | operand IN '(' operand (',' operand)* ')'
    operand     := column_ref | NUMBER | STRING
    column_ref  := IDENT ('.' IDENT)*
    order_item  := column_ref [ASC]

The parser produces an AST; name resolution and algebra construction
happen in :mod:`repro.sql.translator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.algebra.predicates import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    Predicate,
    Scalar,
    conjunction_of,
)
from repro.errors import SqlError
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = [
    "AggregateItem",
    "TableRef",
    "SelectStatement",
    "SetStatement",
    "Statement",
    "parse",
]

AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "min", "max", "avg"})

_COMPARE_OPS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


@dataclass(frozen=True)
class AggregateItem:
    """An aggregate in the select list: ``func(column)`` or ``count(*)``."""

    function: str
    column: Optional[str]  # None for count(*)
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.column is None:
            return self.function
        return f"{self.function}_{self.column.replace('.', '_')}"


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is known by in the query."""
        return self.alias or self.table


@dataclass
class SelectStatement:
    # None means '*'; items are column names (str) or AggregateItem.
    columns: Optional[List[Union[str, AggregateItem]]]
    tables: List[TableRef]
    where: Predicate
    order_by: List[str] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    having: Optional[Predicate] = None
    distinct: bool = False

    @property
    def aggregates(self) -> List[AggregateItem]:
        return [
            item for item in (self.columns or []) if isinstance(item, AggregateItem)
        ]

    @property
    def plain_columns(self) -> List[str]:
        return [item for item in (self.columns or []) if isinstance(item, str)]


@dataclass
class SetStatement:
    operator: str  # 'union' | 'intersect' | 'except'
    left: "Statement"
    right: "Statement"
    all: bool = False


Statement = Union[SelectStatement, SetStatement]


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SqlError(f"expected {word}, found {self.current}", self.current.position)
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if (
            self.current.type is not TokenType.SYMBOL
            or self.current.value != symbol
        ):
            raise SqlError(
                f"expected {symbol!r}, found {self.current}", self.current.position
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.type is TokenType.SYMBOL and self.current.value == symbol:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        if self.current.type is not TokenType.IDENT:
            raise SqlError(
                f"expected identifier, found {self.current}", self.current.position
            )
        return self.advance().value

    # -- grammar ---------------------------------------------------------------

    def parse_statement(self) -> Statement:
        statement: Statement = self.parse_select()
        while self.current.type is TokenType.KEYWORD and self.current.value in (
            "UNION",
            "INTERSECT",
            "EXCEPT",
        ):
            operator = self.advance().value.lower()
            all_flag = self.accept_keyword("ALL")
            right = self.parse_select()
            statement = SetStatement(operator, statement, right, all=all_flag)
        if self.current.type is not TokenType.END:
            raise SqlError(
                f"unexpected trailing input: {self.current}", self.current.position
            )
        return statement

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        columns = self.parse_select_list()
        self.expect_keyword("FROM")
        tables = [self.parse_table_ref()]
        where_parts: List[Predicate] = []
        while True:
            if self.accept_symbol(","):
                tables.append(self.parse_table_ref())
            elif self.current.is_keyword("JOIN"):
                self.advance()
                tables.append(self.parse_table_ref())
                self.expect_keyword("ON")
                where_parts.append(self.parse_condition())
            else:
                break
        if self.accept_keyword("WHERE"):
            where_parts.append(self.parse_condition())
        group_by: List[str] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_name())
            while self.accept_symbol(","):
                group_by.append(self.parse_column_name())
        if self.accept_keyword("HAVING"):
            if not group_by:
                raise SqlError("HAVING requires GROUP BY", self.current.position)
            having = self.parse_condition()
        order_by: List[str] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_item())
        return SelectStatement(
            columns=columns,
            tables=tables,
            where=conjunction_of(where_parts),
            order_by=order_by,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def parse_select_list(self):
        if self.accept_symbol("*"):
            return None
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self):
        """A column name or an aggregate call ``func(col)`` / ``count(*)``."""
        token = self.current
        next_token = self.tokens[self.position + 1]
        is_call = (
            token.type is TokenType.IDENT
            and token.value.lower() in AGGREGATE_FUNCTIONS
            and next_token.type is TokenType.SYMBOL
            and next_token.value == "("
        )
        if not is_call:
            return self.parse_column_name()
        function = self.advance().value.lower()
        self.expect_symbol("(")
        if self.accept_symbol("*"):
            if function != "count":
                raise SqlError(
                    f"{function}(*) is not valid; only count(*)",
                    self.current.position,
                )
            column = None
        else:
            column = self.parse_column_name()
        self.expect_symbol(")")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return AggregateItem(function, column, alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return TableRef(table, alias)

    def parse_column_name(self) -> str:
        name = self.expect_ident()
        # Qualified names may have several segments: alias.table.column.
        while self.accept_symbol("."):
            name = f"{name}.{self.expect_ident()}"
        return name

    def parse_order_item(self) -> str:
        column = self.parse_column_name()
        if self.accept_keyword("DESC"):
            raise SqlError(
                "descending sort is not supported by the sort-order property",
                self.current.position,
            )
        self.accept_keyword("ASC")
        return column

    # Conditions -----------------------------------------------------------------

    def parse_condition(self) -> Predicate:
        parts = [self.parse_and_condition()]
        while self.accept_keyword("OR"):
            parts.append(self.parse_and_condition())
        if len(parts) == 1:
            return parts[0]
        return Disjunction(tuple(parts))

    def parse_and_condition(self) -> Predicate:
        parts = [self.parse_not_condition()]
        while self.accept_keyword("AND"):
            parts.append(self.parse_not_condition())
        return conjunction_of(parts)

    def parse_not_condition(self) -> Predicate:
        if self.accept_keyword("NOT"):
            return Negation(self.parse_not_condition())
        if self.accept_symbol("("):
            condition = self.parse_condition()
            self.expect_symbol(")")
            return condition
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        left = self.parse_operand()
        if self.accept_keyword("BETWEEN"):
            low = self.parse_operand()
            self.expect_keyword("AND")
            high = self.parse_operand()
            return Conjunction(
                (
                    Comparison(ComparisonOp.GE, left, low),
                    Comparison(ComparisonOp.LE, left, high),
                )
            )
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            values = [self.parse_operand()]
            while self.accept_symbol(","):
                values.append(self.parse_operand())
            self.expect_symbol(")")
            comparisons = tuple(
                Comparison(ComparisonOp.EQ, left, value) for value in values
            )
            if len(comparisons) == 1:
                return comparisons[0]
            return Disjunction(comparisons)
        token = self.current
        if token.type is not TokenType.SYMBOL or token.value not in _COMPARE_OPS:
            raise SqlError(
                f"expected comparison operator, found {token}", token.position
            )
        self.advance()
        right = self.parse_operand()
        return Comparison(_COMPARE_OPS[token.value], left, right)

    def parse_operand(self) -> Scalar:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.IDENT:
            return ColumnRef(self.parse_column_name())
        raise SqlError(f"expected operand, found {token}", token.position)


def parse(text: str) -> Statement:
    """Parse query text into an AST; raises SqlError on malformed input."""
    return _Parser(text).parse_statement()
