"""An interactive SQL shell over the generated optimizer.

    python -m repro.sql

Starts with a synthetic demo database (three joinable tables in the
paper's 1,200–7,200-row range), optimizes each entered query with the
relational+aggregation model, prints the EXPLAIN report, executes the
plan on the Volcano iterator engine, and shows the first rows.

Commands:
  \\tables           list tables and their statistics
  \\explain on|off   toggle plan output (default on)
  \\rows N           how many result rows to print (default 5)
  \\quit             exit

Everything else is parsed as SQL (SELECT … FROM … [WHERE …]
[GROUP BY …] [ORDER BY …], set operations, aggregates).
"""

from __future__ import annotations

import argparse
import sys

from repro.catalog import Catalog
from repro.errors import ReproError
from repro.executor import ExecutionStats, TableSpec, execute_plan, populate_catalog
from repro.explain import explain
from repro.generator import generate_optimizer
from repro.models.aggregates import aggregate_model
from repro.sql.translator import Translator

DEMO_TABLES = (
    TableSpec("emp", rows=2400, key_distinct=240, value_distinct=50),
    TableSpec("dept", rows=1200, key_distinct=240, value_distinct=20),
    TableSpec("proj", rows=7200, key_distinct=240, value_distinct=100),
)


def build_demo_catalog(seed: int) -> Catalog:
    catalog = Catalog()
    populate_catalog(catalog, DEMO_TABLES, seed=seed)
    return catalog


class Shell:
    def __init__(self, catalog: Catalog, out=None):
        self.catalog = catalog
        # Resolve stdout lazily so output capture (tests, redirection)
        # set up after import still applies.
        self.out = out if out is not None else sys.stdout
        self.optimizer = generate_optimizer(aggregate_model(), catalog)
        self.translator = Translator(catalog)
        self.show_explain = True
        self.row_limit = 5

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def run_line(self, line: str) -> bool:
        """Handle one input line; returns False when the shell should exit."""
        line = line.strip()
        if not line:
            return True
        if line.startswith("\\"):
            return self._command(line)
        self._query(line)
        return True

    def _command(self, line: str) -> bool:
        parts = line.split()
        command = parts[0].lower()
        if command in ("\\quit", "\\q", "\\exit"):
            return False
        if command == "\\tables":
            for entry in self.catalog.tables():
                statistics = entry.statistics
                self.write(
                    f"  {entry.name:<8} {int(statistics.row_count):>6} rows  "
                    f"{entry.schema.describe()}"
                )
            return True
        if command == "\\explain" and len(parts) == 2:
            self.show_explain = parts[1].lower() == "on"
            self.write(f"explain {'on' if self.show_explain else 'off'}")
            return True
        if command == "\\rows" and len(parts) == 2:
            try:
                self.row_limit = max(0, int(parts[1]))
            except ValueError:
                self.write("usage: \\rows N")
            return True
        self.write(f"unknown command: {line}  (try \\tables, \\explain, \\rows, \\quit)")
        return True

    def _query(self, text: str) -> None:
        try:
            translation = self.translator.translate(text)
            result = self.optimizer.optimize(
                translation.expression, translation.required
            )
        except ReproError as error:
            self.write(f"error: {error}")
            return
        if self.show_explain:
            self.write(explain(result))
            self.write()
        stats = ExecutionStats()
        try:
            rows = execute_plan(result.plan, self.catalog, stats)
        except ReproError as error:
            self.write(f"execution error: {error}")
            return
        shown = rows[: self.row_limit]
        for row in shown:
            cells = ", ".join(
                f"{name}={value}"
                for name, value in row.items()
                if not name.endswith(".pad")
            )
            self.write("  " + cells)
        suffix = f" (showing {len(shown)})" if len(rows) > len(shown) else ""
        self.write(f"→ {len(rows)} rows{suffix}; executor: {stats}")
        self.write()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sql",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=7, help="demo data seed")
    parser.add_argument(
        "--catalog",
        default=None,
        help="load this catalog JSON (see repro.catalog.save_catalog) "
        "instead of the synthetic demo database",
    )
    parser.add_argument(
        "-c",
        "--command",
        action="append",
        default=None,
        help="run this SQL (repeatable) and exit instead of reading stdin",
    )
    arguments = parser.parse_args(argv)
    if arguments.catalog:
        from repro.catalog import load_catalog

        catalog = load_catalog(arguments.catalog)
    else:
        catalog = build_demo_catalog(arguments.seed)
    shell = Shell(catalog)
    if arguments.command:
        for text in arguments.command:
            shell.run_line(text)
        return 0
    shell.write("repro SQL shell — the Volcano optimizer generator demo")
    shell.write("tables: " + ", ".join(catalog.table_names()) + "   (\\tables for details)")
    shell.write("type SQL, or \\quit to exit")
    while True:
        try:
            line = input("sql> ")
        except EOFError:
            return 0
        except KeyboardInterrupt:
            shell.write()
            return 0
        if not shell.run_line(line):
            return 0


if __name__ == "__main__":
    sys.exit(main())
