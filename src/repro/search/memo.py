"""The memo: a hash table of expressions and equivalence classes.

"In order to prevent redundant optimization effort by detecting redundant
(i.e., multiple equivalent) derivations of the same logical expressions
and plans during optimization, expressions and plans are captured in a
hash table of expressions and equivalence classes.  An equivalence class
represents two collections, one of equivalent logical and one of physical
expressions (plans).  […]  For each combination of physical properties
for which an equivalence class has already been optimized, e.g.,
unsorted, sorted on A, and sorted on B, the best plan found is kept."
(paper, Section 3)

Groups additionally memoize *failures* ("'Interesting' is defined with
respect to possible future use, which includes both plans optimal for
given physical properties as well as failures that can save future
optimization effort").

When a transformation derives an expression that already exists in a
*different* group, the two groups are provably equivalent and are merged
(the flip side of Figure 3, where associativity *creates* a new class).
Merging invalidates cached winners and failures of the merged class, so
the engine performs all logical exploration before any costing.

Performance internals (see docs/search-internals.md):

* **Hash-consing.**  :class:`GroupExpression` precomputes its structural
  hash, and the memo *interns* every canonical group expression — one
  object per structural form — so hash-table probes run at pointer
  speed and equality checks short-circuit on identity.
* **Derivation caches.**  Logical-property derivation, transformation-
  rule binding enumeration, and the per-group implementation-move lists
  are memoized.  Each cache is invalidated *exactly*: binding and move
  caches record which groups they probed (with content versions) and
  the ``_invalidate_ancestors`` machinery clears per-group caches
  whenever new logical knowledge appears below a group.
* **Union-find path compression** in :meth:`Memo.canonical` keeps merge
  chains O(α); ``SearchStats.canonical_hops`` counts chain links
  actually chased, so tests can assert the amortized bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.algebra.expressions import GROUP_LEAF, LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import LogicalProperties, PhysProps
from repro.errors import SearchError
from repro.model.context import OptimizerContext
from repro.model.cost import Cost
from repro.model.patterns import match_memo
from repro.search.tracing import SearchStats

__all__ = ["GroupExpression", "Winner", "Group", "Memo", "GoalKey"]


@dataclass(frozen=True, eq=False)
class GroupExpression:
    """A logical expression whose inputs are equivalence classes.

    Structural equality; the hash is precomputed at construction (these
    are the memo's hash-table keys, probed on every insertion), and the
    memo interns canonical instances so most equality checks are
    identity checks.
    """

    operator: str
    args: Tuple
    input_groups: Tuple[int, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self, "_hash", hash((self.operator, self.args, self.input_groups))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, GroupExpression):
            return NotImplemented
        if self._hash != other._hash:  # type: ignore[attr-defined]
            return False
        return (
            self.operator == other.operator
            and self.args == other.args
            and self.input_groups == other.input_groups
        )

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        object.__setattr__(
            self, "_hash", hash((self.operator, self.args, self.input_groups))
        )

    def __str__(self) -> str:
        inputs = " ".join(f"g{gid}" for gid in self.input_groups)
        args = ", ".join(str(arg) for arg in self.args)
        body = " ".join(part for part in (f"[{args}]" if args else "", inputs) if part)
        return f"({self.operator} {body})" if body else f"({self.operator})"


@dataclass(frozen=True)
class Winner:
    """The best plan found for one (group, physical properties) goal."""

    plan: PhysicalPlan
    cost: Cost


# A goal key: required properties plus the excluding vector (None outside
# enforcer inputs).  Winners and failures are memoized per goal key, so a
# plan found under an excluding vector never leaks into ordinary lookups.
GoalKey = Tuple[PhysProps, Optional[PhysProps]]


class Group:
    """One equivalence class."""

    __slots__ = (
        "id",
        "expressions",
        "expression_set",
        "logical_props",
        "winners",
        "failures",
        "applied",
        "explored",
        "exploring",
        "in_progress",
        "merged_into",
        "version",
        "structure_version",
    )

    def __init__(self, group_id: int, logical_props: LogicalProperties):
        self.id = group_id
        self.expressions: List[GroupExpression] = []
        self.expression_set: Set[GroupExpression] = set()
        self.logical_props = logical_props
        self.winners: Dict[GoalKey, Winner] = {}
        self.failures: Dict[GoalKey, Cost] = {}
        # Fingerprints of rule applications already performed, so that a
        # rule never fires twice on the same binding (this also detects
        # inverse rule pairs: re-deriving an existing expression is a
        # no-op thanks to the hash table).
        self.applied: Set = set()
        self.explored = False
        self.exploring = False
        # Goal keys currently on the search stack (reference counted);
        # the paper marks goals "in progress" to break cycles.
        self.in_progress: Dict[GoalKey, int] = {}
        self.merged_into: Optional[int] = None
        # Content version: bumped whenever the expression list changes.
        # Derivation caches record (group id, version) pairs for every
        # group they read, so a version mismatch — or a merge — is the
        # exact signal that a cached result may be stale.
        self.version = 0
        # Structure version: bumped only when the expression list
        # changes by something other than an append (merges rewrite and
        # re-home expressions).  While it holds still, any version drift
        # is pure append-only growth — the condition under which a
        # stale binding enumeration can be *delta-resumed* over just the
        # new expressions instead of re-walked (see rule_bindings).
        self.structure_version = 0

    def mark_in_progress(self, key: GoalKey) -> None:
        """Push an in-progress mark for a goal (reference counted)."""
        self.in_progress[key] = self.in_progress.get(key, 0) + 1

    def unmark_in_progress(self, key: GoalKey) -> None:
        """Pop one in-progress mark for a goal."""
        count = self.in_progress.get(key, 0)
        if count <= 1:
            self.in_progress.pop(key, None)
        else:
            self.in_progress[key] = count - 1

    def is_in_progress(self, key: GoalKey) -> bool:
        """True while the goal is on the search stack."""
        return self.in_progress.get(key, 0) > 0

    def __repr__(self) -> str:
        return f"Group({self.id}, {len(self.expressions)} exprs)"


class Memo:
    """The hash table of expressions and equivalence classes."""

    def __init__(
        self,
        context: OptimizerContext,
        stats: Optional[SearchStats] = None,
        check_consistency: bool = True,
        max_groups: Optional[int] = None,
    ):
        self.context = context
        self.stats = stats if stats is not None else SearchStats()
        self.check_consistency = check_consistency
        self.max_groups = max_groups
        self._groups: Dict[int, Group] = {}
        self._table: Dict[GroupExpression, int] = {}
        # Reverse index: group id → expressions that reference it as an
        # input, needed to rewrite the table when groups merge.
        self._parents: Dict[int, Set[GroupExpression]] = {}
        self._next_id = 0
        # Hash-consing tables: one canonical GroupExpression instance per
        # structural form, and one canonical GoalKey tuple per goal, so
        # the hot dict lookups resolve on identity instead of structure.
        self._interned: Dict[GroupExpression, GroupExpression] = {}
        self._goal_keys: Dict[GoalKey, GoalKey] = {}
        # Derivation caches (exact invalidation via probe records; see
        # rule_bindings / cached_moves below).
        self._props_cache: Dict[GroupExpression, LogicalProperties] = {}
        self._binding_cache: Dict[
            Tuple, Tuple[Dict[int, Tuple[int, int, int]], List[dict]]
        ] = {}
        self._moves_cache: Dict[
            int, Tuple[Dict[int, Tuple[int, int, int]], tuple]
        ] = {}
        # Batch scoping: the root group of every query optimized against
        # this memo, in insertion order (ids as registered; ``roots``
        # resolves them through the union-find on read).
        self._roots: List[int] = []

    # -- basic access --------------------------------------------------------

    def canonical(self, group_id: int) -> int:
        """Resolve a (possibly merged-away) group id to its representative."""
        target = self._groups[group_id].merged_into
        if target is None:
            return group_id
        seen = []
        while target is not None:
            seen.append(group_id)
            group_id = target
            target = self._groups[group_id].merged_into
        self.stats.canonical_hops += len(seen)
        for stale in seen:  # path compression
            self._groups[stale].merged_into = group_id
        return group_id

    def goal_key(
        self, required: PhysProps, excluded: Optional[PhysProps] = None
    ) -> GoalKey:
        """The interned (required, excluded) key for winner/failure tables.

        One tuple instance per distinct goal, so the per-goal dict
        lookups that dominate ``FindBestPlan`` compare keys by identity.
        """
        key = (required, excluded)
        interned = self._goal_keys.get(key)
        if interned is None:
            self._goal_keys[key] = key
            return key
        return interned

    def group(self, group_id: int) -> Group:
        """The live group for an id (following merges)."""
        group = self._groups[group_id]
        if group.merged_into is None:
            return group
        return self._groups[self.canonical(group_id)]

    def group_count(self) -> int:
        """Number of live (unmerged) groups."""
        return sum(1 for group in self._groups.values() if group.merged_into is None)

    def expression_count(self) -> int:
        """Total expressions across live groups."""
        return sum(
            len(group.expressions)
            for group in self._groups.values()
            if group.merged_into is None
        )

    def groups(self) -> Iterator[Group]:
        """All live (unmerged) groups."""
        for group in self._groups.values():
            if group.merged_into is None:
                yield group

    def logical_props(self, group_id: int) -> LogicalProperties:
        """The logical properties of a group."""
        return self.group(group_id).logical_props

    def reachable(self, root: int) -> List[int]:
        """Canonical ids of all groups reachable from ``root`` (pre-order)."""
        root = self.canonical(root)
        seen: List[int] = []
        seen_set: Set[int] = set()
        stack = [root]
        while stack:
            gid = self.canonical(stack.pop())
            if gid in seen_set:
                continue
            seen_set.add(gid)
            seen.append(gid)
            # gid is already canonical: index the group table directly
            # instead of re-resolving through the union-find.
            for mexpr in self._groups[gid].expressions:
                for input_gid in mexpr.input_groups:
                    stack.append(input_gid)
        return seen

    # -- batch roots ---------------------------------------------------------

    def register_root(self, group_id: int) -> None:
        """Mark a group as the root goal of one query in a batch.

        A single-query optimization has exactly one root; a batch-scoped
        memo (``VolcanoOptimizer.optimize_batch``) accumulates one per
        query, giving cross-root passes — the sharing detector, the
        MemoAuditor's batch invariants — their entry points into the
        shared AND-OR DAG.
        """
        self._roots.append(group_id)

    @property
    def roots(self) -> List[int]:
        """Canonical root group ids, one per registered query, in order.

        Duplicate queries in one batch resolve to the same canonical id;
        duplicates are preserved so roots stay parallel to the batch.
        """
        return [self.canonical(gid) for gid in self._roots]

    # -- insertion -----------------------------------------------------------

    def insert_expression(self, expression: LogicalExpression) -> int:
        """Intern a logical expression tree; returns its group's id.

        Group leaves resolve to their (canonical) group.  Identical
        subexpressions share groups through the hash table.
        """
        if expression.operator == GROUP_LEAF:
            return self.canonical(expression.args[0])
        input_groups = tuple(
            [self.insert_expression(node) for node in expression.inputs]
        )
        mexpr = GroupExpression(expression.operator, expression.args, input_groups)
        group_id, _ = self._intern(mexpr, target_group=None)
        return group_id

    def add_expression_to_group(
        self, expression: LogicalExpression, group_id: int
    ) -> bool:
        """Integrate a (rewritten) expression as a member of ``group_id``.

        Used when a transformation rule proves ``expression`` equivalent
        to the group.  Returns True when the memo changed (a new
        expression appeared or groups merged).
        """
        group_id = self.canonical(group_id)
        if expression.operator == GROUP_LEAF:
            # The rewrite returned a bare input: the whole group is
            # equivalent to one of its subexpressions' groups.
            other = self.canonical(expression.args[0])
            if other == group_id:
                return False
            self._merge(group_id, other)
            return True
        input_groups = tuple(
            [self.insert_expression(node) for node in expression.inputs]
        )
        mexpr = GroupExpression(expression.operator, expression.args, input_groups)
        _, changed = self._intern(mexpr, target_group=group_id)
        return changed

    def _intern(
        self, mexpr: GroupExpression, target_group: Optional[int]
    ) -> Tuple[int, bool]:
        """Intern one group expression; returns ``(group_id, changed)``."""
        mexpr = self._canonical_mexpr(mexpr)
        existing = self._table.get(mexpr)
        if existing is not None:
            existing = self.canonical(existing)
            if target_group is not None and existing != target_group:
                # Two derivations of the same expression in different
                # classes: the classes are equivalent — merge them.
                self._merge(target_group, existing)
                return self.canonical(target_group), True
            return existing, False
        if target_group is None:
            group = self._new_group(mexpr)
        else:
            group = self.group(target_group)
            if self.check_consistency:
                self._check_consistency(group, mexpr)
        self._attach(mexpr, group)
        return group.id, True

    def _new_group(self, mexpr: GroupExpression) -> Group:
        if self.max_groups is not None and len(self._groups) >= self.max_groups:
            raise SearchError(
                f"memo exceeded the configured limit of {self.max_groups} groups"
            )
        props = self._derive_props(mexpr)
        group = Group(self._next_id, props)
        self._next_id += 1
        self._groups[group.id] = group
        self.stats.groups_created += 1
        return group

    def _attach(self, mexpr: GroupExpression, group: Group) -> None:
        group.expressions.append(mexpr)
        group.expression_set.add(mexpr)
        group.version += 1
        self._table[mexpr] = group.id
        for input_gid in set(mexpr.input_groups):
            self._parents.setdefault(input_gid, set()).add(mexpr)
        self.stats.expressions_created += 1
        # New logical knowledge: the group may support new rule bindings —
        # and so may every group whose rule patterns can reach into this
        # one (nested patterns match against input groups' expressions).
        group.explored = False
        self._invalidate_ancestors(group.id)

    def _invalidate_ancestors(self, gid: int) -> None:
        """Clear the ``explored`` flag of every group reachable upward.

        Binding and move caches need no explicit treatment here: they
        record (group, version) probes, and the version bump on the
        changed group invalidates exactly the entries that read it.
        """
        # Hot on the exploration fixpoint's attach path: locals bound,
        # canonical() skipped for unmerged owners (the common case).
        # Pushed ids are canonical and the walk itself never merges, so
        # popped ids need no re-canonicalization.
        groups = self._groups
        parents_get = self._parents.get
        table_get = self._table.get
        stack = [self.canonical(gid)]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for mexpr in parents_get(current, ()):
                owner = table_get(mexpr)
                if owner is None:
                    continue  # the expression was rewritten away by a merge
                owner_group = groups[owner]
                if owner_group.merged_into is not None:
                    owner_group = groups[self.canonical(owner)]
                owner_group.explored = False
                stack.append(owner_group.id)

    def _canonical_mexpr(self, mexpr: GroupExpression) -> GroupExpression:
        groups = self._groups
        for gid in mexpr.input_groups:
            if groups[gid].merged_into is not None:
                canonical_inputs = tuple(
                    self.canonical(g) for g in mexpr.input_groups
                )
                mexpr = GroupExpression(mexpr.operator, mexpr.args, canonical_inputs)
                break
        interned = self._interned.get(mexpr)
        if interned is not None:
            return interned
        self._interned[mexpr] = mexpr
        return mexpr

    def _derive_props(self, mexpr: GroupExpression) -> LogicalProperties:
        # Memoized per interned expression.  Input groups' logical
        # properties never change after creation (merges keep the
        # keeper's, which consistency requires to agree), and a merge
        # re-canonicalizes the expression into a fresh interned key, so
        # entries never go stale.
        cached = self._props_cache.get(mexpr)
        if cached is not None:
            self.stats.props_cache_hits += 1
            return cached
        input_props = tuple(
            self.group(gid).logical_props for gid in mexpr.input_groups
        )
        derived = self.context.derive_logical_props(
            mexpr.operator, mexpr.args, input_props
        )
        self._props_cache[mexpr] = derived
        return derived

    # -- derivation caches (probe-validated) ----------------------------------

    def probing_expressions_of(self, probes: Dict[int, Tuple[int, int, int]]):
        """An ``expressions_of`` callback that records which groups it reads.

        Each read group's canonical id maps to its ``(version,
        structure_version, expression count)`` — recorded at *first*
        read, so a mid-enumeration mutation leaves a stale version
        behind and conservatively invalidates the entry.  The structure
        version and count let a later re-enumeration prove the group
        only *appended* expressions since, and resume from the recorded
        count (delta enumeration).
        """

        def expressions_of(gid: int):
            group = self._groups[self.canonical(gid)]
            if group.id not in probes:
                probes[group.id] = (
                    group.version,
                    group.structure_version,
                    len(group.expressions),
                )
            for mexpr in group.expressions:
                yield mexpr.operator, mexpr.args, mexpr.input_groups

        return expressions_of

    def probes_valid(self, probes: Dict[int, Tuple[int, int, int]]) -> bool:
        """True while every probed group is unmerged at its recorded version."""
        groups = self._groups
        for gid, probe in probes.items():
            group = groups[gid]
            if group.merged_into is not None or group.version != probe[0]:
                return False
        return True

    def probes_append_only(self, probes: Dict[int, Tuple[int, int, int]]) -> bool:
        """True when every probed group has only *appended* since recording.

        The delta-enumeration precondition: no probed group merged away
        or had expressions rewritten in place, so each one's recorded
        expression count is an intact prefix of its current list.
        """
        groups = self._groups
        for gid, probe in probes.items():
            group = groups[gid]
            if (
                group.merged_into is not None
                or group.structure_version != probe[1]
            ):
                return False
        return True

    def rule_bindings(
        self,
        rule_name: str,
        pattern,
        mexpr: GroupExpression,
        matcher=None,
        delta=None,
    ):
        """Memoized transformation-rule binding enumeration.

        Returns an iterable of binding dicts, identical to what
        :func:`~repro.model.patterns.match_memo` would enumerate right
        now.  Cache entries are keyed by (rule, interned expression) and
        validated against the recorded probes, so a hit is only served
        while every group the original enumeration read is unchanged —
        exactly the condition under which re-matching would reproduce
        the same bindings.  On a miss the enumeration stays *lazy* (the
        engine fires rules mid-iteration and the live generator must see
        their effects), filling the cache as it yields.

        ``matcher`` is an optional specialized binding enumerator (a
        generated kernel's unrolled equivalent of ``match_memo`` for
        this rule's pattern — see :mod:`repro.generator.kernel`); it is
        only consulted on a cache miss, so interpreted and kernelized
        runs share cache contents and hit semantics bit for bit.
        """
        key = (rule_name, mexpr)
        entry = self._binding_cache.get(key)
        if entry is not None:
            probes, bindings = entry
            if self.probes_valid(probes):
                self.stats.binding_cache_hits += 1
                return [dict(binding) for binding in bindings]
            del self._binding_cache[key]
            if delta is not None and self.probes_append_only(probes):
                # Every probed group only grew, so the cached bindings
                # are an intact prefix-product of the current walk: the
                # delta enumerator replays them positionally and yields
                # only combinations touching at least one new
                # expression.  Old combinations were all fingerprinted
                # by the exploration pass that filled the cache, so
                # skipping their dict-build/hash is observably a no-op.
                self.stats.binding_cache_misses += 1
                return self._enumerate_delta(key, mexpr, delta, probes, bindings)
        self.stats.binding_cache_misses += 1
        return self._enumerate_bindings(key, pattern, mexpr, matcher)

    def rule_bindings_applied(self, rule_name: str, mexpr: GroupExpression) -> bool:
        """True when exploration may skip this (rule, expression) pair.

        A still-valid cache entry proves a prior enumeration of the same
        pair ran to completion while every group it read was in its
        current state — and the exploration loop that completed it
        fingerprinted every binding into the owning group's ``applied``
        set (fingerprints survive merges: ``_merge_into`` unions the
        sets, and a merge that *rewrites* the expression changes the
        cache key).  Re-walking the bindings would therefore be a pure
        no-op; the engine skips it without re-hashing anything.  Counts
        as a cache hit; a stale entry is dropped (not counted — the
        follow-up :meth:`rule_bindings` call records the miss).
        """
        entry = self._binding_cache.get((rule_name, mexpr))
        if entry is None:
            return False
        if self.probes_valid(entry[0]):
            self.stats.binding_cache_hits += 1
            return True
        # Leave the stale entry in place: the follow-up rule_bindings
        # call may still resume it incrementally (delta enumeration)
        # when its probed groups only appended.
        return False

    def _enumerate_bindings(self, key, pattern, mexpr: GroupExpression, matcher=None):
        probes: Dict[int, Tuple[int, int, int]] = {}
        expressions_of = self.probing_expressions_of(probes)
        collected: List[dict] = []
        if matcher is None:
            iterator = match_memo(
                pattern, mexpr.operator, mexpr.args, mexpr.input_groups, expressions_of
            )
        else:
            iterator = matcher(mexpr.args, mexpr.input_groups, expressions_of)
        for binding in iterator:
            collected.append(dict(binding))
            yield binding
        # Only a run-to-completion enumeration is cached; an abandoned
        # generator (budget trip) stores nothing.
        self._binding_cache[key] = (probes, collected)

    def _enumerate_delta(self, key, mexpr, delta, old_probes, old_bindings):
        """Resume a stale append-only enumeration from its cached prefix.

        ``delta`` is the generated delta matcher for this rule's pattern
        (see :mod:`repro.generator.kernel`).  It walks the full product
        in interpreter order but consumes cached binding dicts
        *positionally* for combinations whose every index falls inside
        the recorded old prefix — those were all fingerprinted into the
        owning group's ``applied`` set by the exploration pass that
        filled the cache, so the engine loop treats them as no-ops
        either way; skipping the dict build and hash is unobservable.
        Only combinations touching at least one new expression are
        yielded.  The rebuilt ``collected`` list preserves exact
        full-walk order, so later cache hits replay identically.

        A merge firing *mid-walk* can rewrite a probed group's prefix
        out from under the positional replay; the matcher watches the
        merge counter and degrades to yielding everything from that
        point on — exactly the interpreter's behaviour — leaving a
        stale entry that is never served.
        """
        probes: Dict[int, Tuple[int, int, int]] = {}
        expressions_of = self.probing_expressions_of(probes)
        canonical = self.canonical

        def old_len(gid: int) -> int:
            probe = old_probes.get(canonical(gid))
            return probe[2] if probe is not None else 0

        stats = self.stats
        epoch = stats.group_merges

        def unchanged() -> bool:
            return stats.group_merges == epoch

        collected: List[dict] = []
        for binding in delta(
            mexpr.args,
            mexpr.input_groups,
            expressions_of,
            old_len,
            old_bindings,
            collected,
            unchanged,
        ):
            yield binding
        self._binding_cache[key] = (probes, collected)

    def cached_moves(self, gid: int):
        """The memoized move list for a group, or None when stale/absent."""
        entry = self._moves_cache.get(gid)
        if entry is None:
            return None
        probes, moves = entry
        if self.probes_valid(probes):
            self.stats.moves_cache_hits += 1
            return moves
        del self._moves_cache[gid]
        return None

    def store_moves(
        self, gid: int, probes: Dict[int, Tuple[int, int, int]], moves: tuple
    ) -> None:
        """Memoize a group's move list together with its probe record."""
        self.stats.moves_cache_misses += 1
        self._moves_cache[gid] = (probes, moves)

    def _check_consistency(self, group: Group, mexpr: GroupExpression) -> None:
        """Paper's consistency check: all class members agree on properties."""
        self.stats.consistency_checks += 1
        derived = self._derive_props(mexpr)
        if not derived.consistent_with(group.logical_props):
            raise SearchError(
                f"inconsistent logical properties in group {group.id}: "
                f"group has [{group.logical_props}] but {mexpr} derives "
                f"[{derived}] — a transformation rule is not equivalence-"
                f"preserving"
            )

    # -- merging ---------------------------------------------------------------

    def _merge(self, a: int, b: int) -> int:
        """Merge two equivalent groups; returns the surviving id."""
        worklist = [(a, b)]
        result = self.canonical(a)
        while worklist:
            left, right = worklist.pop()
            left, right = self.canonical(left), self.canonical(right)
            if left == right:
                continue
            keeper, dead = self._choose_keeper(left, right)
            self.stats.group_merges += 1
            self._merge_into(keeper, dead, worklist)
            result = keeper.id
        return result

    def _choose_keeper(self, left: int, right: int) -> Tuple[Group, Group]:
        left_group, right_group = self._groups[left], self._groups[right]
        # Prefer a group that is currently being worked on so live loops
        # keep observing the surviving object; otherwise the older group.
        left_busy = bool(left_group.in_progress) or left_group.exploring
        right_busy = bool(right_group.in_progress) or right_group.exploring
        if right_busy and not left_busy:
            return right_group, left_group
        if left_busy or left < right:
            return left_group, right_group
        return right_group, left_group

    def _merge_into(self, keeper: Group, dead: Group, worklist: List) -> None:
        if self.check_consistency and not dead.logical_props.consistent_with(
            keeper.logical_props
        ):
            raise SearchError(
                f"merge of groups {keeper.id} and {dead.id} with inconsistent "
                f"properties: [{keeper.logical_props}] vs [{dead.logical_props}]"
            )
        dead.merged_into = keeper.id
        # Both groups' contents change: stale any probe-validated cache
        # entry that read either of them.  Only the *dead* group's
        # structure changes, though — the keeper strictly appends (its
        # recorded prefix stays intact), which is what lets delta
        # enumeration resume over it.  If a keeper-owned expression
        # itself needs rewriting it shows up in the parent loop below,
        # which does bump the owner's structure version.
        keeper.version += 1
        dead.version += 1
        dead.structure_version += 1
        # Move the expressions across.
        for mexpr in dead.expressions:
            self._table.pop(mexpr, None)
            canonical = self._canonical_mexpr(mexpr)
            clash = self._table.get(canonical)
            if clash is not None and self.canonical(clash) != keeper.id:
                # Canonicalizing revealed that this expression already
                # exists in yet another group: that group is equivalent
                # too — schedule a further merge.
                worklist.append((keeper.id, clash))
            if canonical not in keeper.expression_set:
                keeper.expressions.append(canonical)
                keeper.expression_set.add(canonical)
            self._table[canonical] = keeper.id
            for input_gid in set(canonical.input_groups):
                self._parents.setdefault(input_gid, set()).add(canonical)
        dead.expressions.clear()
        dead.expression_set.clear()
        # Cached plans and failures may no longer be optimal or valid for
        # the enlarged class — drop them (the engine explores the whole
        # logical space before costing, so this only discards pre-merge
        # state, never mid-costing results).
        keeper.winners.clear()
        keeper.failures.clear()
        dead.winners.clear()
        dead.failures.clear()
        keeper.applied |= dead.applied
        keeper.explored = False
        for key, count in dead.in_progress.items():
            keeper.in_progress[key] = keeper.in_progress.get(key, 0) + count
        dead.in_progress.clear()
        keeper.exploring = keeper.exploring or dead.exploring
        # Re-home expressions in *other* groups that referenced the dead
        # group as an input: their table keys change, which may reveal
        # further equalities (recursive merges).
        for parent in list(self._parents.pop(dead.id, ())):
            owner = self._table.pop(parent, None)
            if owner is None:
                continue  # already rewritten via another path
            owner = self.canonical(owner)
            owner_group = self._groups[owner]
            owner_group.version += 1
            # The rewrite removes an expression from the middle of the
            # list: the owner's recorded prefixes are no longer intact.
            owner_group.structure_version += 1
            rewritten = self._canonical_mexpr(parent)
            if parent in owner_group.expression_set:
                owner_group.expression_set.discard(parent)
                owner_group.expressions = [
                    m for m in owner_group.expressions if m != parent
                ]
            clash = self._table.get(rewritten)
            if clash is not None and self.canonical(clash) != owner:
                worklist.append((owner, clash))
                # The rewritten expression already lives in the clashing
                # group; owner and clash merge, no need to re-attach.
                continue
            if rewritten not in owner_group.expression_set:
                owner_group.expressions.append(rewritten)
                owner_group.expression_set.add(rewritten)
            self._table[rewritten] = owner
            for input_gid in set(rewritten.input_groups):
                self._parents.setdefault(input_gid, set()).add(rewritten)
            owner_group.explored = False
            self._invalidate_ancestors(owner)

    # -- extraction -------------------------------------------------------------

    def representative_expression(
        self, group_id: int, _path: Tuple[int, ...] = ()
    ) -> LogicalExpression:
        """A full logical expression tree representing a group.

        Rebuilds a concrete :class:`LogicalExpression` by picking, for
        the group and recursively for each input group, the first
        member whose expansion does not revisit a group already on the
        path (rule-derived self references would otherwise recurse
        forever).  The first member is the earliest inserted one —
        for the root that is the query's original form — which is the
        form most likely to be re-derived by a later search, making
        these trees good keys for cross-query winner reuse.

        Raises :class:`~repro.errors.SearchError` when every member is
        cyclic.
        """
        gid = self.canonical(group_id)
        if gid in _path:
            raise SearchError(f"group {gid} only has cyclic expressions")
        path = _path + (gid,)
        for mexpr in self._groups[gid].expressions:
            try:
                inputs = tuple(
                    self.representative_expression(input_gid, path)
                    for input_gid in mexpr.input_groups
                )
            except SearchError:
                continue
            return LogicalExpression(mexpr.operator, mexpr.args, inputs)
        raise SearchError(f"group {gid} has no representable expression")

    def render(self, root: Optional[int] = None) -> str:
        """Human-readable dump of (reachable) groups, for debugging."""
        gids = self.reachable(root) if root is not None else [
            group.id for group in self.groups()
        ]
        lines = []
        for gid in gids:
            # gids are canonical already (reachable/groups yield them so).
            group = self._groups[gid]
            lines.append(f"group {gid}: {group.logical_props}")
            for mexpr in group.expressions:
                lines.append(f"    {mexpr}")
            for (props, excluded), winner in group.winners.items():
                suffix = f" excluding {excluded}" if excluded is not None else ""
                lines.append(
                    f"    winner[{props}{suffix}] cost={winner.cost}: "
                    f"{winner.plan.to_sexpr()}"
                )
        return "\n".join(lines)
