"""Promise models: pluggable move-ordering for the search engines.

The paper's directed search hinges on the *promise* function — "order
the set of moves by promise" — but leaves the function itself to the
optimizer implementor: "Pursuing all moves or only a selected few is a
major heuristic placed into the hands of the optimizer implementor."
This module makes that hook explicit.  A :class:`PromiseModel` answers
three questions for the engines:

* what is a transformation rule's promise over a given equivalence
  class (consulted by the ``min_promise`` pruning filter);
* what is an implementation rule's promise over a given class
  (consulted when ordering a goal's algorithm moves);
* is there a trustworthy prior on the whole query's optimal cost
  (consulted to seed the root branch-and-bound limit).

Two models ship:

:class:`StaticPromise`
    The default.  Returns ``rule.promise`` verbatim and never offers a
    cost prior — bit-for-bit the engines' historical behavior.

:class:`LearnedPromiseModel`
    Derives priors from :class:`~repro.feedback.FeedbackStore`
    evidence, keyed exactly the way the store aggregates it — per
    table, per predicate shape, per selectivity bucket — plus an
    observed-cost prior per (query, goal) fingerprint that seeds
    tighter branch-and-bound upper bounds on repeat workloads.

**Safety.**  Under exhaustive search a promise model can only *reorder*
moves, never add or remove them, and the engines select winners by the
order-independent ``(cost, rank, alternative)`` rule (see
``docs/search-internals.md``, "Promise and move ordering") — so the
chosen plan is identical for every model.  A cost-bound prior is a
pure branch-and-bound seed: when it is at or above the true optimum the
same winner is found faster; when it is below (statistics moved), the
seeded search fails and the engine transparently retries at the
caller's limit.  Plans never change; only the work to find them does.

Models are plain mutable objects shared across runs (that is the
point: evidence accumulates).  They are not synchronized — feed one
from a single service loop, or guard it yourself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import LogicalProperties, PhysProps
from repro.model.cost import Cost
from repro.model.rules import ImplementationRule, TransformationRule

if TYPE_CHECKING:
    from repro.feedback.report import FeedbackReport
    from repro.feedback.store import FeedbackStore

__all__ = [
    "PromiseModel",
    "StaticPromise",
    "STATIC_PROMISE",
    "LearnedPromiseModel",
    "AlgorithmEvidence",
]


@runtime_checkable
class PromiseModel(Protocol):
    """What the engines ask of a promise model.

    All four methods must be deterministic for fixed model state, and
    the model must not mutate itself inside the three query methods —
    the engines cache move lists (with promises baked in) per run.
    """

    def transformation_promise(
        self, rule: TransformationRule, props: Optional[LogicalProperties]
    ) -> float:
        """The rule's promise over a class; feeds ``min_promise`` pruning."""
        ...

    def implementation_promise(
        self, rule: ImplementationRule, props: Optional[LogicalProperties]
    ) -> float:
        """The rule's promise over a class; orders a goal's moves."""
        ...

    def cost_bound(
        self, query: LogicalExpression, required: PhysProps
    ) -> Optional[Cost]:
        """A prior upper bound on the query's optimal cost, or None."""
        ...

    def observe_result(
        self, query: LogicalExpression, required: PhysProps, cost: Cost
    ) -> None:
        """Told by the engine after each non-degraded optimization."""
        ...


class StaticPromise:
    """The paper's behavior: promise is the rule author's static number."""

    def transformation_promise(
        self, rule: TransformationRule, props: Optional[LogicalProperties]
    ) -> float:
        """The rule author's static promise, verbatim."""
        return rule.promise

    def implementation_promise(
        self, rule: ImplementationRule, props: Optional[LogicalProperties]
    ) -> float:
        """The rule author's static promise, verbatim."""
        return rule.promise

    def cost_bound(
        self, query: LogicalExpression, required: PhysProps
    ) -> Optional[Cost]:
        """Never offers a prior: the root limit is the caller's."""
        return None

    def observe_result(
        self, query: LogicalExpression, required: PhysProps, cost: Cost
    ) -> None:
        """Static promise learns nothing; results are discarded."""
        return None


#: The shared default instance; the engines compare against it by
#: identity to skip model calls entirely on the static fast path.
STATIC_PROMISE = StaticPromise()


@dataclass
class AlgorithmEvidence:
    """Execution evidence for one physical algorithm."""

    observations: int = 0
    total_q_error: float = 0.0

    @property
    def mean_q_error(self) -> float:
        if not self.observations:
            return 1.0
        return self.total_q_error / self.observations


@dataclass
class LearnedPromiseModel:
    """Promise priors learned from execution feedback.

    Evidence comes in through two channels:

    * :meth:`observe` folds a :class:`~repro.feedback.FeedbackReport`
      (and, when given, refreshes the mirrored
      :class:`~repro.feedback.FeedbackStore` aggregates — per table,
      per predicate shape, per selectivity bucket, the store's own
      keying);
    * :meth:`observe_result` — called by the engines after every
      non-degraded optimization — records the optimal cost per
      (query, goal) fingerprint.

    And out through the :class:`PromiseModel` protocol:

    * **implementation promise** — ``rule.promise`` plus a bounded
      additive boost (at most ``boost``) for algorithms that executed
      often with reliable cardinality estimates over the class's
      tables: pursue first what feedback says we cost accurately.
    * **transformation promise** — ``rule.promise`` scaled up by at
      most ``(1 + boost)`` over tables whose estimates have drifted
      (high q-error): where the cost model has been wrong, widen the
      logical search rather than prune it.  Only consulted when
      ``min_promise`` pruning is active.
    * **cost bound** — the recorded optimal cost of the same (query,
      goal), seeding the root branch-and-bound limit on repeats.

    Every output is a pure function of the accumulated evidence, so a
    run's move ordering is deterministic; and under exhaustive search
    the engines' ``(cost, rank, alternative)`` winner rule makes the
    chosen plan independent of this model entirely (tested by
    ``tests/search/test_promise.py``).
    """

    #: Upper bound on the additive implementation-promise boost (and on
    #: the multiplicative transformation-promise widening).
    boost: float = 0.25
    #: Observation count at which the frequency factor saturates.
    observation_scale: int = 8
    #: Minimum observations before an algorithm's evidence is used.
    min_observations: int = 1

    _algorithms: Dict[str, AlgorithmEvidence] = field(default_factory=dict)
    #: Per-table worst q-error, mirrored from the store (1.0 = accurate).
    _tables: Dict[str, float] = field(default_factory=dict)
    #: Mean observed selectivity per (table, predicate shape, bucket) —
    #: the FeedbackStore's own aggregation key.
    _selectivities: Dict[Tuple[str, Tuple[Tuple[str, str], ...], int], float] = field(
        default_factory=dict
    )
    #: Latest observed optimal cost per (query, goal) fingerprint.
    _cost_priors: Dict[Tuple[LogicalExpression, PhysProps], Cost] = field(
        default_factory=dict
    )

    # -- evidence in ------------------------------------------------------

    def observe(
        self, report: "FeedbackReport", store: Optional["FeedbackStore"] = None
    ) -> None:
        """Fold one executed plan's feedback into the priors.

        Degraded reports still count algorithm appearances (the plan
        did run) but their q-errors are not trusted — same quarantine
        rule the :class:`~repro.feedback.FeedbackStore` applies.
        """
        for op in report.operators:
            if op.is_enforcer:
                continue
            evidence = self._algorithms.setdefault(
                op.algorithm, AlgorithmEvidence()
            )
            evidence.observations += 1
            error = op.q_error
            if error is None or report.degraded:
                evidence.total_q_error += 1.0
            else:
                evidence.total_q_error += error
        if store is not None:
            self.refresh_from(store)

    def refresh_from(self, store: "FeedbackStore") -> None:
        """Mirror the store's per-table / per-shape / per-bucket aggregates."""
        for key, bucket in store.bucket_feedback().items():
            self._selectivities[key] = bucket.mean_selectivity
            table = key[0]
            self._tables[table] = max(
                self._tables.get(table, 1.0), bucket.max_q_error
            )
        for table in list(self._tables):
            self._tables[table] = max(
                self._tables[table], store.max_q_error(table)
            )

    def observe_result(
        self, query: LogicalExpression, required: PhysProps, cost: Cost
    ) -> None:
        """Record an optimization's final cost as a repeat-run prior."""
        self._cost_priors[(query, required)] = cost

    # -- evidence out -----------------------------------------------------

    def _table_reliability(self, props: Optional[LogicalProperties]) -> float:
        """Mean estimate reliability over a class's tables, in (0, 1]."""
        if props is None or not props.tables:
            return 1.0
        total = 0.0
        for table in props.tables:
            total += 1.0 / max(1.0, self._tables.get(table, 1.0))
        return total / len(props.tables)

    def transformation_promise(
        self, rule: TransformationRule, props: Optional[LogicalProperties]
    ) -> float:
        """The rule's promise, widened over drifted tables."""
        reliability = self._table_reliability(props)
        # Unreliable estimates (reliability < 1) widen the logical
        # search: the rule's promise grows by at most ``boost``-fold.
        return rule.promise * (1.0 + self.boost * (1.0 - reliability))

    def implementation_promise(
        self, rule: ImplementationRule, props: Optional[LogicalProperties]
    ) -> float:
        """The rule's promise plus a bounded evidence-driven boost."""
        evidence = self._algorithms.get(rule.algorithm)
        if evidence is None or evidence.observations < self.min_observations:
            return rule.promise
        accuracy = 1.0 / max(1.0, evidence.mean_q_error)
        frequency = min(
            1.0, evidence.observations / max(1, self.observation_scale)
        )
        reliability = self._table_reliability(props)
        return rule.promise + self.boost * accuracy * frequency * reliability

    def cost_bound(
        self, query: LogicalExpression, required: PhysProps
    ) -> Optional[Cost]:
        """A widened prior on the goal's optimal cost, or None."""
        prior = self._cost_priors.get((query, required))
        if prior is None:
            return None
        # Widen the recorded optimum before seeding.  Seeding the limit
        # at *exactly* the optimum is unsafe in floating point: the
        # engine propagates limits by repeated ``bound - total``
        # subtraction, and at zero slack the reassociated arithmetic
        # can exclude the canonical equal-cost candidate (flipping a
        # tie to a different plan) or fail the whole attempt (forcing a
        # full-limit retry).  Doubling is the widest-margin widening
        # expressible through the generic ``Cost.__add__`` — it works
        # for every cost type without knowing its fields — and still
        # prunes everything costlier than twice the observed optimum.
        return prior + prior

    # -- introspection ----------------------------------------------------

    def selectivity_for(
        self, table: str, shape: Tuple[Tuple[str, str], ...], bucket: int
    ) -> Optional[float]:
        """The mirrored mean selectivity of one store key, if observed."""
        return self._selectivities.get((table, shape, bucket))

    def algorithm_evidence(self, algorithm: str) -> Optional[AlgorithmEvidence]:
        """The accumulated evidence for one algorithm, or None."""
        return self._algorithms.get(algorithm)

    @property
    def priors(self) -> int:
        """How many (query, goal) cost priors are recorded."""
        return len(self._cost_priors)
