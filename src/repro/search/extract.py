"""Extract alternative plans from a solved memo.

After an optimization run the memo holds not just the winner but the
whole explored space.  These utilities enumerate alternative plans of an
equivalence class — useful for debugging cost models, teaching, and for
tests that check every memoized plan computes the same result.

Enumeration is *logical-space complete* but physically one-level: for
each expression of the class it builds each applicable algorithm over
the recorded per-goal winners of the input classes.  (Enumerating every
combination of sub-alternatives would be exponential; for full
exhaustive costing see ``tests/helpers.BruteForceOracle``.)
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import PhysProps
from repro.model.context import OptimizerContext
from repro.model.patterns import match_memo
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.search.engine import OptimizationResult
from repro.search.memo import Memo

__all__ = ["alternative_plans", "count_logical_expressions"]


def count_logical_expressions(memo: Memo, root: int) -> int:
    """Number of logical expressions reachable from ``root``.

    The paper observes Volcano's optimization cost "mirrors exactly the
    increase in the number of equivalent logical algebra expressions";
    this is that number.
    """
    return sum(
        len(memo.group(gid).expressions) for gid in memo.reachable(root)
    )


def alternative_plans(
    result: OptimizationResult,
    spec: ModelSpecification,
    catalog,
    required: Optional[PhysProps] = None,
    limit: int = 100,
) -> List[PhysicalPlan]:
    """Alternative plans for the optimized query's root class.

    Returns up to ``limit`` plans (the winner among them), each satisfying
    ``required`` (the result's goal by default), costed consistently with
    the engine.
    """
    memo = result.memo
    required = required if required is not None else result.required
    context = OptimizerContext(spec, catalog)
    context.group_props_resolver = memo.logical_props
    root = _root_group(memo)
    plans: List[PhysicalPlan] = []
    transformations = {}
    for rule in spec.implementations:
        transformations.setdefault(rule.top_operator, []).append(rule)

    def expressions_of(gid):
        for mexpr in memo.group(gid).expressions:
            yield mexpr.operator, mexpr.args, mexpr.input_groups

    group = memo.group(root)
    for mexpr in group.expressions:
        for rule in transformations.get(mexpr.operator, ()):
            for binding in match_memo(
                rule.pattern, mexpr.operator, mexpr.args, mexpr.input_groups,
                expressions_of,
            ):
                if not rule.applies(binding, context):
                    continue
                args = (
                    tuple(rule.build_args(binding, context))
                    if rule.build_args is not None
                    else mexpr.args
                )
                input_groups = tuple(
                    memo.canonical(binding[name].args[0])
                    for name in rule.input_names
                )
                algorithm = spec.algorithm(rule.algorithm)
                node = AlgorithmNode(
                    args,
                    group.logical_props,
                    tuple(memo.logical_props(gid) for gid in input_groups),
                )
                for requirements in algorithm.applicability(
                    context, node, required
                ) or ():
                    input_plans = []
                    feasible = True
                    total = algorithm.cost(context, node)
                    for input_gid, input_required in zip(
                        input_groups, requirements
                    ):
                        winner = memo.group(input_gid).winners.get(
                            (input_required, None)
                        )
                        if winner is None:
                            feasible = False
                            break
                        input_plans.append(winner.plan)
                        total = total + winner.cost
                    if not feasible:
                        continue
                    delivered = algorithm.derive_props(
                        context,
                        node,
                        tuple(plan.properties for plan in input_plans),
                    )
                    if not spec.props_cover(delivered, required):
                        continue
                    plans.append(
                        PhysicalPlan(
                            algorithm.name,
                            args,
                            tuple(input_plans),
                            properties=delivered,
                            cost=total,
                        )
                    )
                    if len(plans) >= limit:
                        return plans
    return plans


def _root_group(memo: Memo) -> int:
    """The class with the most base tables: the whole query."""
    best = None
    for group in memo.groups():
        if best is None or len(group.logical_props.tables) > len(
            best.logical_props.tables
        ):
            best = group
    if best is None:
        raise ValueError("empty memo")
    return best.id
