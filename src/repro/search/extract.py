"""Extract alternative plans from a solved memo.

After an optimization run the memo holds not just the winner but the
whole explored space.  These utilities enumerate alternative plans of an
equivalence class — useful for debugging cost models, teaching, and for
tests that check every memoized plan computes the same result.

Enumeration is *logical-space complete* but physically one-level: for
each expression of the class it builds each applicable algorithm over
the recorded per-goal winners of the input classes.  (Enumerating every
combination of sub-alternatives would be exponential; for full
exhaustive costing see ``tests/helpers.BruteForceOracle``.)
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import PhysProps
from repro.model.context import OptimizerContext
from repro.model.patterns import match_memo
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.search.engine import OptimizationResult
from repro.search.memo import Memo
from repro.search.promise import STATIC_PROMISE

__all__ = ["alternative_plans", "count_logical_expressions", "greedy_plan"]


def count_logical_expressions(memo: Memo, root: int) -> int:
    """Number of logical expressions reachable from ``root``.

    The paper observes Volcano's optimization cost "mirrors exactly the
    increase in the number of equivalent logical algebra expressions";
    this is that number.
    """
    return sum(
        len(memo.group(gid).expressions) for gid in memo.reachable(root)
    )


def alternative_plans(
    result: OptimizationResult,
    spec: ModelSpecification,
    catalog,
    required: Optional[PhysProps] = None,
    limit: int = 100,
) -> List[PhysicalPlan]:
    """Alternative plans for the optimized query's root class.

    Returns up to ``limit`` plans (the winner among them), each satisfying
    ``required`` (the result's goal by default), costed consistently with
    the engine.
    """
    memo = result.memo
    required = required if required is not None else result.required
    context = OptimizerContext(spec, catalog)
    context.group_props_resolver = memo.logical_props
    root = _root_group(memo)
    plans: List[PhysicalPlan] = []
    transformations = {}
    for rule in spec.implementations:
        transformations.setdefault(rule.top_operator, []).append(rule)

    def expressions_of(gid):
        for mexpr in memo.group(gid).expressions:
            yield mexpr.operator, mexpr.args, mexpr.input_groups

    group = memo.group(root)
    for mexpr in group.expressions:
        for rule in transformations.get(mexpr.operator, ()):
            for binding in match_memo(
                rule.pattern, mexpr.operator, mexpr.args, mexpr.input_groups,
                expressions_of,
            ):
                if not rule.applies(binding, context):
                    continue
                args = (
                    tuple(rule.build_args(binding, context))
                    if rule.build_args is not None
                    else mexpr.args
                )
                input_groups = tuple(
                    memo.canonical(binding[name].args[0])
                    for name in rule.input_names
                )
                algorithm = spec.algorithm(rule.algorithm)
                node = AlgorithmNode(
                    args,
                    group.logical_props,
                    tuple(memo.logical_props(gid) for gid in input_groups),
                )
                for requirements in algorithm.applicability(
                    context, node, required
                ) or ():
                    input_plans = []
                    feasible = True
                    total = algorithm.cost(context, node)
                    for input_gid, input_required in zip(
                        input_groups, requirements
                    ):
                        winner = memo.group(input_gid).winners.get(
                            (input_required, None)
                        )
                        if winner is None:
                            feasible = False
                            break
                        input_plans.append(winner.plan)
                        total = total + winner.cost
                    if not feasible:
                        continue
                    delivered = algorithm.derive_props(
                        context,
                        node,
                        tuple(plan.properties for plan in input_plans),
                    )
                    if not spec.props_cover(delivered, required):
                        continue
                    plans.append(
                        PhysicalPlan(
                            algorithm.name,
                            args,
                            tuple(input_plans),
                            properties=delivered,
                            cost=total,
                        )
                    )
                    if len(plans) >= limit:
                        return plans
    return plans


def greedy_plan(
    memo: Memo,
    context: OptimizerContext,
    gid: int,
    required: PhysProps,
    claims: Optional[dict] = None,
    promise_model=None,
) -> Optional[PhysicalPlan]:
    """A deterministic first-feasible plan over a (partially) explored memo.

    The anytime-degradation fallback of the resource-governance layer
    (see :mod:`repro.search.engine`): when a budget trips before the
    root goal has a memoized winner, this builds *some* valid plan from
    whatever logical content exploration produced, without opening the
    costing search again.  The policy is greedy and deterministic:

    * memoized winners are reused wherever they exist (they are sound —
      the trip cannot corrupt completed goals);
    * otherwise each goal takes the *first feasible* implementation
      move, trying moves in descending rule promise (ties broken by
      discovery order) and alternatives in the algorithm's own order;
    * when no algorithm can deliver the goal's properties, enforcers
      are tried with their relaxed/excluding vectors, exactly like the
      real search.

    Costs are computed with the same support functions, so the returned
    plan's ``cost`` is honest — just not proven minimal.  Returns
    ``None`` when no valid plan exists in the explored space.

    ``claims`` is an optional provenance sink (the engine's
    ``_SearchRun.claims``): every plan node built here records a
    :class:`~repro.search.certify.ClaimRecord` into it, so even
    degraded plans certify with exact cost terms.

    ``promise_model`` is the run's active
    :class:`~repro.search.promise.PromiseModel`, if any: greedy
    first-feasible extraction is ordering-*sensitive* (unlike the
    exhaustive search), so learned promises steer which plan a
    degraded run returns.  When ``None`` (or the static default), the
    historical ``rule.promise`` ordering is used bit-for-bit.
    """
    from repro.search.certify import ClaimRecord

    spec = context.spec
    implementations: dict = {}
    for rule in spec.implementations:
        implementations.setdefault(rule.top_operator, []).append(rule)

    def expressions_of(inner_gid):
        for mexpr in memo.group(inner_gid).expressions:
            yield mexpr.operator, mexpr.args, mexpr.input_groups

    # (gid, required, excluded) -> plan or None; a None is only cached
    # when the failure did not hinge on a cycle refusal (see below).
    cache: dict = {}
    refusals = [0]

    def moves_of(group):
        moves = []
        seen = set()
        for mexpr in group.expressions:
            for rule in implementations.get(mexpr.operator, ()):
                for binding in match_memo(
                    rule.pattern,
                    mexpr.operator,
                    mexpr.args,
                    mexpr.input_groups,
                    expressions_of,
                ):
                    if not rule.applies(binding, context):
                        continue
                    args = (
                        tuple(rule.build_args(binding, context))
                        if rule.build_args is not None
                        else mexpr.args
                    )
                    input_groups = tuple(
                        memo.canonical(binding[name].args[0])
                        for name in rule.input_names
                    )
                    fingerprint = (rule.algorithm, args, input_groups)
                    if fingerprint in seen:
                        continue
                    seen.add(fingerprint)
                    moves.append((rule, args, input_groups))
        # Stable sort: descending promise, discovery order within
        # ties — consulting the active promise model when one is set,
        # so degraded anytime plans benefit from learned ordering too.
        if promise_model is None or promise_model is STATIC_PROMISE:
            moves.sort(key=lambda move: -move[0].promise)
        else:
            props = group.logical_props
            moves.sort(
                key=lambda move: -promise_model.implementation_promise(
                    move[0], props
                )
            )
        return moves

    def solve(goal_gid, goal_required, excluded, path):
        goal_gid = memo.canonical(goal_gid)
        key = (goal_gid, goal_required, excluded)
        if key in cache:
            return cache[key]
        if key in path:
            # A cycle through equivalent goals: refuse here, the outer
            # attempt decides.  Not a definitive failure, so not cached.
            refusals[0] += 1
            return None
        group = memo.group(goal_gid)
        winner = group.winners.get((goal_required, excluded))
        if winner is not None:
            cache[key] = winner.plan
            return winner.plan
        path.add(key)
        before = refusals[0]
        try:
            for rule, args, input_groups in moves_of(group):
                algorithm = spec.algorithm(rule.algorithm)
                node = AlgorithmNode(
                    args,
                    group.logical_props,
                    tuple(memo.logical_props(g) for g in input_groups),
                )
                for requirements in (
                    algorithm.applicability(context, node, goal_required) or ()
                ):
                    if len(requirements) != len(input_groups):
                        continue
                    input_plans = []
                    local = algorithm.cost(context, node)
                    total = local
                    feasible = True
                    for input_gid, input_required in zip(
                        input_groups, requirements
                    ):
                        sub = solve(input_gid, input_required, None, path)
                        if sub is None:
                            feasible = False
                            break
                        input_plans.append(sub)
                        total = total + sub.cost
                    if not feasible:
                        continue
                    delivered = algorithm.derive_props(
                        context,
                        node,
                        tuple(plan.properties for plan in input_plans),
                    )
                    if not spec.props_cover(delivered, goal_required):
                        continue
                    if excluded is not None and spec.props_cover(
                        delivered, excluded
                    ):
                        continue
                    plan = PhysicalPlan(
                        algorithm.name,
                        args,
                        tuple(input_plans),
                        properties=delivered,
                        cost=total,
                    )
                    if claims is not None:
                        claims[id(plan)] = (
                            plan,
                            ClaimRecord(
                                rule=rule.name,
                                gid=goal_gid,
                                input_groups=input_groups,
                                local=local,
                                output=node.output,
                                inputs=node.inputs,
                            ),
                        )
                    cache[key] = plan
                    return plan
            # Enforcer fallback, mirroring the real search's moves.
            if not goal_required.is_any:
                for name in spec.enforcers:
                    for application in spec.enforcer_applications(
                        name, context, goal_required, group.logical_props
                    ):
                        if application.relaxed == goal_required:
                            continue
                        if excluded is not None and spec.props_cover(
                            application.delivered, excluded
                        ):
                            continue
                        sub = solve(
                            goal_gid,
                            application.relaxed,
                            application.excluded,
                            path,
                        )
                        if sub is None:
                            continue
                        if not spec.props_cover(
                            application.delivered, goal_required
                        ):
                            continue
                        enforcer = spec.enforcer(name)
                        node = AlgorithmNode(
                            application.args,
                            group.logical_props,
                            (group.logical_props,),
                        )
                        local = enforcer.cost(context, node)
                        total = local + sub.cost
                        plan = PhysicalPlan(
                            name,
                            application.args,
                            (sub,),
                            properties=application.delivered,
                            cost=total,
                            is_enforcer=True,
                        )
                        if claims is not None:
                            claims[id(plan)] = (
                                plan,
                                ClaimRecord(
                                    rule=None,
                                    gid=goal_gid,
                                    input_groups=(goal_gid,),
                                    local=local,
                                    output=group.logical_props,
                                    inputs=(group.logical_props,),
                                    enforcer=True,
                                    required=goal_required,
                                ),
                            )
                        cache[key] = plan
                        return plan
            if refusals[0] == before:
                # No cycle refusal influenced this failure: definitive.
                cache[key] = None
            return None
        finally:
            path.discard(key)

    return solve(gid, required, None, set())


def _root_group(memo: Memo) -> int:
    """The class with the most base tables: the whole query."""
    best = None
    for group in memo.groups():
        if best is None or len(group.logical_props.tables) > len(
            best.logical_props.tables
        ):
            best = group
    if best is None:
        raise ValueError("empty memo")
    return best.id
