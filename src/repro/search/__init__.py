"""The Volcano search engine: memo + directed dynamic programming (S9).

This package also defines the :class:`Optimizer` protocol — the single
call shape every optimizer in this repository answers to, whether it is
the recursive Volcano engine, the Cascades-style task driver, or the
EXODUS and System R comparison baselines.  Anything that fronts an
optimizer (the :class:`~repro.service.OptimizerService`, the benchmark
harness) programs against this protocol and can wrap any engine
interchangeably.
"""

from typing import Optional, Protocol, runtime_checkable

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import PhysProps
from repro.options import BudgetReport, ResourceBudget
from repro.search.engine import (
    OptimizationResult,
    PreoptimizedPlan,
    SearchOptions,
    VolcanoOptimizer,
)
from repro.search.tasks import TaskBasedOptimizer, lifo_scheduler
from repro.search.memo import Group, GroupExpression, Memo, Winner
from repro.search.promise import (
    STATIC_PROMISE,
    LearnedPromiseModel,
    PromiseModel,
    StaticPromise,
)
from repro.search.sharing import (
    SharedPlan,
    SharingOptions,
    SharingReport,
    plan_sharing,
)
from repro.search.tracing import SearchStats, Tracer

__all__ = [
    "Optimizer",
    "TaskBasedOptimizer",
    "lifo_scheduler",
    "OptimizationResult",
    "PreoptimizedPlan",
    "SearchOptions",
    "VolcanoOptimizer",
    "Group",
    "GroupExpression",
    "Memo",
    "Winner",
    "PromiseModel",
    "StaticPromise",
    "STATIC_PROMISE",
    "LearnedPromiseModel",
    "SearchStats",
    "Tracer",
    "ResourceBudget",
    "BudgetReport",
    "SharedPlan",
    "SharingOptions",
    "SharingReport",
    "plan_sharing",
]


@runtime_checkable
class Optimizer(Protocol):
    """What every optimizer engine looks like to its callers.

    ``optimize(expr, props=None, *, options=None)`` finds the best plan
    for ``expr`` delivering the physical properties ``props`` (the
    model's "any" vector when omitted) and returns an
    :class:`OptimizationResult` — engines may return a subclass carrying
    extra diagnostics (:class:`~repro.exodus.ExodusResult`,
    :class:`~repro.systemr.SystemRResult`) and may accept extra
    keyword-only arguments (``limit``, ``preoptimized``).  ``options``
    overrides the engine's construction-time options for one call.

    Conformers: :class:`VolcanoOptimizer`, :class:`TaskBasedOptimizer`,
    :class:`~repro.exodus.ExodusOptimizer`,
    :class:`~repro.systemr.SystemROptimizer`.
    """

    spec: object
    catalog: object

    def optimize(
        self,
        query: LogicalExpression,
        props: Optional[PhysProps] = None,
        *,
        options: object = None,
    ) -> OptimizationResult:
        """Find the cheapest plan for ``query`` delivering ``props``."""
        ...
