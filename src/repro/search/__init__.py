"""The Volcano search engine: memo + directed dynamic programming (S9)."""

from repro.search.engine import (
    OptimizationResult,
    PreoptimizedPlan,
    SearchOptions,
    VolcanoOptimizer,
)
from repro.search.tasks import TaskBasedOptimizer, lifo_scheduler
from repro.search.memo import Group, GroupExpression, Memo, Winner
from repro.search.tracing import SearchStats, Tracer

__all__ = [
    "TaskBasedOptimizer",
    "lifo_scheduler",
    "OptimizationResult",
    "PreoptimizedPlan",
    "SearchOptions",
    "VolcanoOptimizer",
    "Group",
    "GroupExpression",
    "Memo",
    "Winner",
    "SearchStats",
    "Tracer",
]
