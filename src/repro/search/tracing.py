"""Search instrumentation: counters and optional event traces.

The paper's Figure 4 reports optimization *time*; its text additionally
argues about *memory* (MESH nodes vs. the Volcano hash table, "less than
1 MB of work space").  These counters provide machine-independent
measures of the same quantities: groups and expressions created mirror
memory, rule/cost invocations mirror work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["SearchStats", "TraceEvent"]


@dataclass
class TraceEvent:
    """One recorded search event (only kept when tracing is enabled)."""

    kind: str
    detail: str
    depth: int = 0

    def __str__(self) -> str:
        return "  " * self.depth + f"{self.kind}: {self.detail}"


@dataclass
class SearchStats:
    """Work and memory counters for one optimization run."""

    # Memory-shaped counters.
    groups_created: int = 0
    expressions_created: int = 0
    group_merges: int = 0
    # Work-shaped counters.
    find_best_plan_calls: int = 0
    winner_hits: int = 0
    failure_hits: int = 0
    rule_bindings_tried: int = 0
    rules_fired: int = 0
    algorithm_costings: int = 0
    enforcer_costings: int = 0
    moves_pruned: int = 0
    inputs_abandoned: int = 0
    consistency_checks: int = 0
    exploration_passes: int = 0
    # Derivation-cache counters (repro.search.memo probe-validated
    # caches) and union-find instrumentation.
    props_cache_hits: int = 0
    binding_cache_hits: int = 0
    binding_cache_misses: int = 0
    moves_cache_hits: int = 0
    moves_cache_misses: int = 0
    canonical_hops: int = 0
    # Cross-query reuse counters (the service's memo persistence hooks).
    seeds_planted: int = 0
    winners_harvested: int = 0
    # Resource-governance counters (repro.options.ResourceBudget).
    budget_trips: int = 0
    greedy_plans: int = 0
    # Promise-model counters (repro.search.promise): root searches
    # seeded from an observed-cost prior, and how many of those seeds
    # were too tight (statistics moved) and forced a full-limit retry.
    bound_seeds: int = 0
    bound_seed_retries: int = 0
    # Wall-clock, filled in by the engine.
    elapsed_seconds: float = 0.0

    def memo_footprint(self) -> int:
        """A memory proxy: total groups plus expressions held."""
        return self.groups_created + self.expressions_created

    def as_dict(self) -> dict:
        """The counters as a plain dict (for reports and CSV)."""
        return {
            "groups_created": self.groups_created,
            "expressions_created": self.expressions_created,
            "group_merges": self.group_merges,
            "find_best_plan_calls": self.find_best_plan_calls,
            "winner_hits": self.winner_hits,
            "failure_hits": self.failure_hits,
            "rule_bindings_tried": self.rule_bindings_tried,
            "rules_fired": self.rules_fired,
            "algorithm_costings": self.algorithm_costings,
            "enforcer_costings": self.enforcer_costings,
            "moves_pruned": self.moves_pruned,
            "inputs_abandoned": self.inputs_abandoned,
            "consistency_checks": self.consistency_checks,
            "exploration_passes": self.exploration_passes,
            "props_cache_hits": self.props_cache_hits,
            "binding_cache_hits": self.binding_cache_hits,
            "binding_cache_misses": self.binding_cache_misses,
            "moves_cache_hits": self.moves_cache_hits,
            "moves_cache_misses": self.moves_cache_misses,
            "canonical_hops": self.canonical_hops,
            "seeds_planted": self.seeds_planted,
            "winners_harvested": self.winners_harvested,
            "budget_trips": self.budget_trips,
            "greedy_plans": self.greedy_plans,
            "bound_seeds": self.bound_seeds,
            "bound_seed_retries": self.bound_seed_retries,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def __str__(self) -> str:
        return (
            f"groups={self.groups_created} exprs={self.expressions_created} "
            f"merges={self.group_merges} fbp={self.find_best_plan_calls} "
            f"hits={self.winner_hits}/{self.failure_hits} "
            f"rules={self.rules_fired}/{self.rule_bindings_tried} "
            f"costings={self.algorithm_costings}+{self.enforcer_costings} "
            f"pruned={self.moves_pruned} time={self.elapsed_seconds:.4f}s"
        )


class Tracer:
    """Collects :class:`TraceEvent` items when enabled; no-op otherwise.

    The event list is bounded by ``limit``; events past it are counted
    in ``dropped`` rather than silently discarded, and :meth:`render`
    closes a truncated trace with a single terminal ``truncated`` event
    carrying the count.
    """

    def __init__(self, enabled: bool = False, limit: int = 100_000):
        self.enabled = enabled
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, kind: str, detail: str, depth: int = 0) -> None:
        """Record one event (counted, not kept, once over the limit)."""
        if not self.enabled:
            return
        if len(self.events) < self.limit:
            self.events.append(TraceEvent(kind, detail, depth))
        else:
            self.dropped += 1

    def render(self) -> str:
        """The recorded events as indented text."""
        lines = [str(event) for event in self.events]
        if self.dropped:
            lines.append(
                str(TraceEvent("truncated", f"{self.dropped} events dropped"))
            )
        return "\n".join(lines)
