"""A task-based (Cascades-style) driver for the same memo and rules.

The paper closes with: "the internal structure for equivalence classes
is sufficiently modular and extensible to support alternative search
strategies […] We are exploring several directions with respect to the
search strategy, namely […] an alternative, even more parameterized
search algorithm that can be 'switched' to different existing
algorithms."  (Section 6)

This module is that alternative strategy: instead of recursive
``FindBestPlan`` invocations, optimization goals become explicit *task*
objects on a scheduler-controlled agenda — the architecture Graefe later
published as **Cascades** (1995).  It shares the memo, the rule tables,
the exploration logic, and all support functions with the recursive
engine, and must produce *identical* plans and costs (tested); only the
control flow differs:

* ``_GoalState`` holds one goal's branch-and-bound state;
* ``_BeginGoal`` expands a goal into move-evaluation tasks;
* ``_CostAlternative`` is a resumable state machine that optimizes a
  move's inputs one at a time, suspending itself behind the subgoal's
  tasks instead of recursing;
* ``_FinishGoal`` memoizes the winner or the failure.

The *scheduler* is the parameterization hook: LIFO reproduces the
recursive engine's order exactly; a priority scheduler can reorder
sibling moves globally by promise.  Plan identity does not depend on
the scheduler: winners are adopted by the order-independent
``(cost, move rank, alternative index)`` rule shared with the
recursive engine (see docs/search-internals.md, "Promise and move
ordering"), so any fair scheduler — and any promise model reordering
the moves — yields the same plan under exhaustive search.

Per-run state (memo, stats, agenda, budget meter) travels in the
:class:`~repro.search.engine._SearchRun` object every task receives, so
the task driver is as reentrant as the recursive engine.  A budget trip
raises through the agenda loop before ``_FinishGoal`` runs, which means
an interrupted goal memoizes *neither* a winner nor a failure — exactly
the non-poisoning guarantee the recursive engine gives.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.algebra.plans import PhysicalPlan
from repro.errors import SearchError
from repro.model.cost import Cost, INFINITE_COST
from repro.model.spec import AlgorithmNode, EnforcerApplication
from repro.search.certify import ClaimRecord
from repro.search.engine import VolcanoOptimizer, _AlgorithmMove, _SearchRun
from repro.search.memo import GoalKey, Winner

__all__ = ["TaskBasedOptimizer", "lifo_scheduler"]


class _GoalState:
    """Shared branch-and-bound state of one (group, properties) goal."""

    __slots__ = (
        "gid",
        "required",
        "excluded",
        "limit",
        "bound",
        "best",
        "best_key",
        "finished",
        "key",
    )

    def __init__(self, gid, required, excluded, limit, branch_and_bound, key=None):
        self.gid = gid
        self.required = required
        self.excluded = excluded
        self.limit = limit
        self.bound = limit if branch_and_bound else INFINITE_COST
        self.best: Optional[Winner] = None
        self.best_key: Tuple[int, int] = (0, 0)
        self.finished = False
        # The (interned, when the caller passes memo.goal_key) dict key
        # for winner/failure/in-progress tables.
        self.key: GoalKey = key if key is not None else (required, excluded)

    def offer(
        self, candidate: Winner, key: Tuple[int, int], branch_and_bound: bool
    ) -> None:
        """Adopt ``candidate`` when it beats the incumbent.

        ``key`` is ``(move rank, alternative index)`` — the same
        order-independent tie-break the recursive engine applies:
        strictly cheaper wins; at equal cost the lexicographically
        smaller key wins, whatever order the scheduler pursued the
        tasks in.  Enforcer offers rank after every algorithm move.
        """
        if (
            self.best is None
            or candidate.cost < self.best.cost
            or (candidate.cost == self.best.cost and key < self.best_key)
        ):
            self.best = candidate
            self.best_key = key
            if branch_and_bound and candidate.cost < self.bound:
                self.bound = candidate.cost


class _Task:
    """Base task; ``step`` may push follow-up tasks onto the run's agenda."""

    __slots__ = ()

    def step(self, engine: "TaskBasedOptimizer", run: _SearchRun) -> None:
        raise NotImplementedError


def _lookup(run: _SearchRun, gid, required, excluded) -> Optional[Winner]:
    group = run.memo.group(gid)
    return group.winners.get((required, excluded))


def _known_failure(run: _SearchRun, gid, required, excluded, limit) -> bool:
    """A cached failure applies at this limit.

    With failure caching off this always answers False; the resume
    tasks' ``started`` flags then distinguish "not yet attempted"
    from "attempted and failed".
    """
    if not run.options.cache_failures:
        return False
    group = run.memo.group(gid)
    failed_at = group.failures.get((required, excluded))
    return failed_at is not None and limit <= failed_at


class _BeginGoal(_Task):
    __slots__ = ("state",)

    def __init__(self, state: _GoalState):
        self.state = state

    def step(self, engine, run) -> None:
        state = self.state
        memo = run.memo
        group = memo.group(state.gid)
        key = state.key
        winner = group.winners.get(key)
        if winner is not None:
            run.stats.winner_hits += 1
            if winner.cost <= state.limit:
                state.best = winner
            state.finished = True
            return
        if run.options.cache_failures:
            failed_at = group.failures.get(key)
            if failed_at is not None and state.limit <= failed_at:
                run.stats.failure_hits += 1
                state.finished = True
                return
        if group.is_in_progress(key):
            # A cycle: the outer task will finish this goal.
            state.finished = True
            return
        group.mark_in_progress(key)
        run.stats.find_best_plan_calls += 1
        # The ordering contract (docs/search-internals.md, "Promise and
        # move ordering"): algorithm moves are pursued in the shared
        # pursuit order — descending model promise, static rank (i.e.
        # discovery order) within ties — then enforcers in
        # specification order.  The agenda is a LIFO stack, so tasks
        # are pushed in *reverse*: naive ascending-sort-then-push used
        # to explore equal-promise ties backwards, diverging from the
        # recursive engine on equal-cost plans.
        moves = engine._ordered_moves(run, group)
        enforcers = []
        if not state.required.is_any:
            rank = len(moves)
            for name in engine.spec.enforcers:
                for application in engine.spec.enforcer_applications(
                    name, run.context, state.required, group.logical_props
                ):
                    enforcers.append(_CostEnforcer(state, name, application, rank))
                    rank += 1
        # Finish runs after every move task (stack discipline: push first).
        run.agenda.append(_FinishGoal(state))
        for task in reversed(enforcers):
            run.agenda.append(task)
        for move in reversed(moves):
            run.agenda.append(_ExpandMove(state, move))


class _ExpandMove(_Task):
    """Turn one implementation-rule binding into per-alternative tasks."""

    __slots__ = ("state", "move")

    def __init__(self, state: _GoalState, move: _AlgorithmMove):
        self.state = state
        self.move = move

    def step(self, engine, run) -> None:
        state, move = self.state, self.move
        entry = move.applicability.get(state.required)
        if entry is None:
            group = run.memo.group(state.gid)
            entry = engine._move_applicability(run, group, move, state.required)
        algorithm, node, alternatives, local = entry
        tasks = []
        for alt, requirements in enumerate(alternatives or ()):
            if len(requirements) != len(move.input_groups):
                raise SearchError(
                    f"algorithm {algorithm.name!r} returned "
                    f"{len(requirements)} input requirements for "
                    f"{len(move.input_groups)} inputs"
                )
            run.stats.algorithm_costings += 1
            if run.metered:
                run.meter.charge_costing()
            tasks.append(
                _CostAlternative(
                    state, move, node, tuple(requirements), local, (), 0, alt
                )
            )
        # Reverse-push so the LIFO agenda pursues alternatives in the
        # algorithm's own order, like the recursive engine.
        for task in reversed(tasks):
            run.agenda.append(task)


class _CostAlternative(_Task):
    """Resumable input costing: one input per activation, no recursion."""

    __slots__ = (
        "state",
        "move",
        "node",
        "requirements",
        "total",
        "plans",
        "index",
        "alt",
        "started",
    )

    def __init__(self, state, move, node, requirements, total, plans, index, alt):
        self.state = state
        self.move = move
        self.node = node
        self.requirements = requirements
        self.total = total
        self.plans: Tuple[PhysicalPlan, ...] = plans
        self.index = index
        # The alternative's position in the algorithm's applicability
        # order; with the move's rank it forms the offer tie-break key.
        self.alt = alt
        self.started = False

    def step(self, engine, run) -> None:
        state = self.state
        if run.options.branch_and_bound and state.bound < self.total:
            run.stats.moves_pruned += 1
            return
        if self.index == len(self.requirements):
            self._finalize(engine, run)
            return
        input_gid = self.move.input_groups[self.index]
        required = self.requirements[self.index]
        winner = _lookup(run, input_gid, required, None)
        if winner is not None:
            if not winner.cost <= state.bound - self.total:
                run.stats.inputs_abandoned += 1
                return
            run.agenda.append(
                _CostAlternative(
                    state,
                    self.move,
                    self.node,
                    self.requirements,
                    self.total + winner.cost,
                    self.plans + (winner.plan,),
                    self.index + 1,
                    self.alt,
                )
            )
            return
        if self.started or _known_failure(
            run, input_gid, required, None, state.bound - self.total
        ):
            # The subgoal already ran (or a cached failure applies).
            run.stats.inputs_abandoned += 1
            return
        # The input goal is unsolved: suspend behind its tasks.
        subgoal = _GoalState(
            input_gid,
            required,
            None,
            state.bound - self.total,
            run.options.branch_and_bound,
            key=run.memo.goal_key(required, None),
        )
        self.started = True
        run.agenda.append(self)  # resume afterwards (winner will be memoized)
        run.agenda.append(_BeginGoal(subgoal))

    def _finalize(self, engine, run) -> None:
        state = self.state
        algorithm = engine.spec.algorithm(self.move.rule.algorithm)
        delivered = algorithm.derive_props(
            run.context,
            self.node,
            tuple(plan.properties for plan in self.plans),
        )
        if not engine.spec.props_cover(delivered, state.required):
            return
        if state.excluded is not None and engine.spec.props_cover(
            delivered, state.excluded
        ):
            run.stats.moves_pruned += 1
            return
        plan = PhysicalPlan(
            algorithm.name,
            self.move.args,
            self.plans,
            properties=delivered,
            cost=self.total,
        )
        if run.claims is not None:
            _, _, _, local = engine._move_applicability(
                run, run.memo.group(state.gid), self.move, state.required
            )
            run.claims[id(plan)] = (
                plan,
                ClaimRecord(
                    rule=self.move.rule.name,
                    gid=state.gid,
                    input_groups=self.move.input_groups,
                    local=local,
                    output=self.node.output,
                    inputs=self.node.inputs,
                ),
            )
        state.offer(
            Winner(plan, self.total),
            (self.move.rank, self.alt),
            run.options.branch_and_bound,
        )


class _CostEnforcer(_Task):
    __slots__ = ("state", "name", "application", "rank", "local", "started")

    def __init__(self, state, name, application: EnforcerApplication, rank: int):
        self.state = state
        self.name = name
        self.application = application
        # Enforcers rank after every algorithm move, in specification
        # order — the recursive engine's evaluation order.
        self.rank = rank
        self.local: Optional[Cost] = None
        self.started = False

    def step(self, engine, run) -> None:
        state = self.state
        application = self.application
        if application.relaxed == state.required:
            raise SearchError(
                f"enforcer {self.name!r} did not relax the goal "
                f"[{state.required}]"
            )
        if state.excluded is not None and engine.spec.props_cover(
            application.delivered, state.excluded
        ):
            run.stats.moves_pruned += 1
            return
        memo = run.memo
        group = memo.group(state.gid)
        if self.local is None:
            node = AlgorithmNode(
                application.args, group.logical_props, (group.logical_props,)
            )
            run.stats.enforcer_costings += 1
            if run.metered:
                run.meter.charge_costing()
            self.local = engine.spec.enforcer(self.name).cost(run.context, node)
        if run.options.branch_and_bound and state.bound < self.local:
            run.stats.moves_pruned += 1
            return
        winner = _lookup(run, state.gid, application.relaxed, application.excluded)
        if winner is None:
            if self.started or _known_failure(
                run,
                state.gid,
                application.relaxed,
                application.excluded,
                state.bound - self.local,
            ):
                run.stats.inputs_abandoned += 1
                return
            subgoal = _GoalState(
                state.gid,
                application.relaxed,
                application.excluded,
                state.bound - self.local,
                run.options.branch_and_bound,
                key=run.memo.goal_key(application.relaxed, application.excluded),
            )
            self.started = True
            run.agenda.append(self)
            run.agenda.append(_BeginGoal(subgoal))
            return
        total = self.local + winner.cost
        if run.options.branch_and_bound and state.bound < total:
            return
        if not engine.spec.props_cover(application.delivered, state.required):
            return
        plan = PhysicalPlan(
            self.name,
            application.args,
            (winner.plan,),
            properties=application.delivered,
            cost=total,
            is_enforcer=True,
        )
        if run.claims is not None:
            run.claims[id(plan)] = (
                plan,
                ClaimRecord(
                    rule=None,
                    gid=state.gid,
                    input_groups=(state.gid,),
                    local=self.local,
                    output=group.logical_props,
                    inputs=(group.logical_props,),
                    enforcer=True,
                    required=state.required,
                ),
            )
        state.offer(Winner(plan, total), (self.rank, 0), run.options.branch_and_bound)


class _FinishGoal(_Task):
    __slots__ = ("state",)

    def __init__(self, state: _GoalState):
        self.state = state

    def step(self, engine, run) -> None:
        state = self.state
        group = run.memo.group(state.gid)
        group.unmark_in_progress(state.key)
        state.finished = True
        if state.best is not None and state.best.cost <= state.limit:
            group.winners[state.key] = state.best
            return
        state.best = None
        if run.options.cache_failures:
            previous = group.failures.get(state.key)
            if previous is None or previous < state.limit:
                group.failures[state.key] = state.limit


def lifo_scheduler(agenda: List[_Task]) -> _Task:
    """The default scheduler: last in, first out (depth-first)."""
    return agenda.pop()


class TaskBasedOptimizer(VolcanoOptimizer):
    """The Cascades-style driver: same memo, explicit task agenda.

    ``scheduler`` picks the next task from the agenda; the default LIFO
    discipline reproduces the recursive engine's evaluation order.  Any
    scheduler is sound as long as it eventually runs every task and
    respects that a task pushed *below* another's resume-task must run
    first under its picks (LIFO and priority-within-goal both qualify).
    """

    def __init__(self, *args, scheduler: Callable = lifo_scheduler, **kwargs):
        super().__init__(*args, **kwargs)
        self._scheduler = scheduler

    # -- entry point -------------------------------------------------------

    def _find_best_plan(self, run, gid, required, limit, excluded, depth):
        """Drive the task agenda instead of recursing."""
        state = _GoalState(
            gid,
            required,
            excluded,
            limit,
            run.options.branch_and_bound,
            key=run.memo.goal_key(required, excluded),
        )
        saved = run.agenda
        run.agenda = [_BeginGoal(state)]
        try:
            if run.metered:
                while run.agenda:
                    run.meter.check("costing")
                    task = self._scheduler(run.agenda)
                    task.step(self, run)
            else:
                while run.agenda:
                    task = self._scheduler(run.agenda)
                    task.step(self, run)
        finally:
            run.agenda = saved
        if not state.finished:
            raise SearchError("task agenda drained before the goal finished")
        return state.best
