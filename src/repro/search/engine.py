"""The Volcano search engine: directed dynamic programming.

This implements the paper's Figure 2 (``FindBestPlan``) over the memo:

* a *goal* is a pair of equivalence class and physical property vector,
  searched under a cost limit;
* winners and failures are memoized per goal;
* moves are (1) transformations, (2) algorithms that can deliver the
  required properties, (3) enforcers for required properties — ordered by
  promise, all pursued under exhaustive search;
* cost limits are passed down to inputs (branch-and-bound pruning, the
  paper's ``while TotalCost < Limit``);
* enforcer inputs are optimized with a *relaxed* property vector and an
  *excluding* property vector so algorithms that could have satisfied the
  enforced property directly are not considered redundantly.

Logical exploration (transformations) runs to closure over the reachable
memo before costing starts: under exhaustive search every reachable
equivalence class participates in some candidate plan, so this performs
exactly the work Figure 2 performs, while guaranteeing that group merges
(which invalidate cached winners) never interleave with costing.  The
goal-*directed* part of "directed dynamic programming" — optimizing only
the (class, property) pairs that larger plans actually request — is
preserved untouched and is where the efficiency against EXODUS comes
from.

Two production concerns layer on top of the paper's algorithm:

* **Reentrancy.**  All per-run state (memo, context, stats, tracer,
  budget meter, the task driver's agenda) lives in a :class:`_SearchRun`
  object created by ``optimize()`` and threaded through the search, so
  one engine instance can serve concurrent ``optimize()`` calls — each
  with its own ``options=`` override — without interference.
* **Resource governance.**  A :class:`~repro.options.ResourceBudget` on
  :class:`SearchOptions` bounds wall-clock time, costings, and rule
  firings.  When a budget trips, the engine *degrades* instead of dying:
  it stops opening new moves, reuses any memoized winner for the root
  goal, falls back to a deterministic greedy implementation pass over
  the explored memo (:func:`repro.search.extract.greedy_plan`), and
  returns a result flagged ``degraded=True`` with a typed
  :class:`~repro.options.BudgetReport`.  Only when no valid plan exists
  at all does it raise :class:`~repro.errors.BudgetExceededError`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import ANY_PROPS, PhysProps
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.errors import (
    BudgetExceededError,
    OptimizationFailedError,
    OptionsError,
    PlanValidationError,
    ReproError,
    SearchError,
)
from repro.model.context import OptimizerContext
from repro.model.cost import Cost, INFINITE_COST
from repro.model.patterns import match_memo
from repro.model.rules import ImplementationRule, TransformationRule
from repro.model.spec import AlgorithmNode, EnforcerApplication, ModelSpecification
from repro.options import (
    BudgetMeter,
    BudgetReport,
    BudgetTripped,
    OptionsBase,
    ResourceBudget,
    check_positive,
)
from repro.search.certify import CertificateBuilder, ClaimRecord
from repro.search.memo import GoalKey, Group, Memo, Winner
from repro.search.promise import STATIC_PROMISE, PromiseModel
from repro.search.tracing import SearchStats, Tracer
from repro.verify.certificate import PlanCertificate

__all__ = [
    "SearchOptions",
    "OptimizationResult",
    "PreoptimizedPlan",
    "VolcanoOptimizer",
]


def _resolve_props(
    props: Optional[PhysProps],
    required: Optional[PhysProps],
    *,
    stacklevel: int = 2,
) -> Optional[PhysProps]:
    """Fold the deprecated ``required=`` keyword into ``props``.

    Shared by every engine's :meth:`optimize` so the old call shape
    keeps working while the unified protocol signature takes over.

    ``stacklevel`` follows :func:`warnings.warn` semantics *as seen from
    the calling* ``optimize`` *method* (this helper's own frame is
    compensated for): the default of 2 attributes the deprecation
    warning to the line that called ``optimize``.
    """
    if required is None:
        return props
    warnings.warn(
        "the 'required' keyword of optimize() is deprecated; pass the "
        "property vector positionally or as 'props'",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )
    if props is not None:
        raise TypeError("pass either 'props' or the deprecated 'required', not both")
    return required


@dataclass(frozen=True, kw_only=True)
class SearchOptions(OptionsBase):
    """Knobs of the search engine.

    The defaults give the paper's exhaustive directed dynamic
    programming; the ablation benchmarks flip individual flags.

    ``branch_and_bound``
        Pass cost limits down and prune moves that exceed them
        (Section 3: "cost limits are passed down in the optimization of
        subexpressions, and tight upper bounds also speed their
        optimization").
    ``cache_failures``
        Memoize optimization failures per goal ("failures that can save
        future optimization effort").
    ``min_promise``
        Transformation rules with promise strictly below this threshold
        are skipped — the paper's hook for heuristic guidance ("Pursuing
        all moves or only a selected few is a major heuristic placed
        into the hands of the optimizer implementor").  The default of
        ``None`` pursues everything (exhaustive search).  Implementation
        and enforcer moves are never skipped: pruning them could make
        feasible goals unsatisfiable, so heuristics shape the *logical*
        search space only.
    ``check_consistency``
        Run the paper's consistency checks (logical property agreement in
        every class; final plan satisfies the requested properties).
    ``max_groups``
        Memory budget expressed in equivalence classes; exceeding it
        raises :class:`~repro.errors.SearchError`.
    ``budget``
        A :class:`~repro.options.ResourceBudget` bounding search effort
        (wall-clock deadline, costing quota, rule-firing quota).  When a
        limit trips, the engine degrades gracefully and flags the result
        ``degraded=True``; see :mod:`repro.search.engine`.
    ``promise_model``
        A :class:`~repro.search.promise.PromiseModel` supplying rule
        promises (move ordering, ``min_promise`` pruning) and optional
        cost-bound priors.  ``None`` means the static model — promises
        are the rule authors' numbers, bit-for-bit the historical
        behavior.  Under exhaustive search a model can only *reorder*
        moves, and winners are selected by the order-independent
        ``(cost, rank, alternative)`` rule, so the chosen plan is
        identical for every model; see ``docs/search-internals.md``.
    ``trace``
        Record a human-readable search trace (slow; for debugging).
    ``certificates``
        Record per-node provenance claims during costing and attach a
        :class:`~repro.verify.certificate.PlanCertificate` to the
        result, verifiable by :func:`repro.verify.verify_plan`.
    ``kernel``
        The specialized search kernel to run with (see
        :mod:`repro.generator.kernel`): ``None`` or ``"interpreted"``
        walks pattern objects (the baseline), ``"specialized"`` resolves
        the generated pure-Python kernel for this engine's model, and
        ``"compiled"`` additionally attempts a native build, falling
        back to the specialized tier when no toolchain is present.  A
        pre-built :class:`~repro.generator.kernel.SearchKernel` is also
        accepted.  Kernels only swap the binding enumerators; plans,
        costs, and certificates are byte-identical across tiers.
    """

    branch_and_bound: bool = True
    cache_failures: bool = True
    min_promise: Optional[float] = None
    promise_model: Optional[PromiseModel] = None
    check_consistency: bool = True
    max_groups: Optional[int] = None
    budget: Optional[ResourceBudget] = None
    trace: bool = False
    certificates: bool = False
    kernel: Optional[object] = None

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("max_groups", self.max_groups)
        kernel = self.kernel
        if isinstance(kernel, str) and kernel not in (
            "interpreted",
            "specialized",
            "compiled",
        ):
            raise OptionsError(
                f"kernel must be one of 'interpreted', 'specialized', "
                f"'compiled', or a SearchKernel; got {kernel!r}"
            )


@dataclass
class OptimizationResult:
    """The common optimization outcome of every :class:`Optimizer`.

    :class:`VolcanoOptimizer` and :class:`TaskBasedOptimizer` return it
    directly (with a live memo);
    :class:`~repro.exodus.ExodusResult` and
    :class:`~repro.systemr.SystemRResult` subclass it, so any engine's
    answer carries ``plan``, ``cost``, ``required``, and ``stats`` —
    the contract the :class:`~repro.service.OptimizerService` and the
    benchmarks rely on.  ``memo``/``root_group`` are only populated by
    the memo-based engines; the harvesting helpers raise
    :class:`~repro.errors.SearchError` without them.

    ``degraded`` marks an *anytime* answer: a resource budget tripped
    mid-search and the plan is valid (it satisfies ``required``) but not
    proven optimal; ``budget_report`` then records which limit fired and
    how far the search had progressed.

    ``certificate`` (populated when :attr:`SearchOptions.certificates`
    is on) is the plan's provenance record, independently checkable via
    :func:`repro.verify.verify_plan`.
    """

    plan: PhysicalPlan
    cost: Cost
    required: PhysProps = ANY_PROPS
    stats: Optional[SearchStats] = None
    memo: Optional[Memo] = None
    trace: Optional[str] = None
    root_group: Optional[int] = None
    degraded: bool = False
    budget_report: Optional[BudgetReport] = None
    certificate: Optional["PlanCertificate"] = None

    def __str__(self) -> str:
        status = " (DEGRADED)" if self.degraded else ""
        return f"plan cost {self.cost}{status}\n{self.plan.pretty()}"

    def harvest(
        self,
        subexpression: LogicalExpression,
        required: Optional[PhysProps] = None,
    ) -> "PreoptimizedPlan":
        """Extract a memoized subplan for reuse in a later optimization.

        The paper's Section 6 lists "preoptimized subplans" among the
        search-strategy directions ("We are considering research into
        longer-lived partial results"); this is the harvesting half.
        ``subexpression`` must be a logical expression this run explored
        (any member of its equivalence class works — the hash table
        resolves syntactic variants the rules derived); ``required``
        selects which property goal's winner to take (default: any).

        Raises :class:`~repro.errors.SearchError` when the class or the
        goal was never optimized in this run.
        """
        if self.memo is None:
            raise SearchError("this result carries no memo to harvest from")
        required = required if required is not None else ANY_PROPS
        gid = self.memo.insert_expression(subexpression)
        group = self.memo.group(gid)
        winner = group.winners.get((required, None))
        if winner is None:
            raise SearchError(
                f"no memoized winner for [{required}] on that subexpression; "
                f"available goals: {sorted(str(k[0]) for k in group.winners)}"
            )
        return PreoptimizedPlan(
            expression=subexpression,
            plan=winner.plan,
            cost=winner.cost,
            required=required,
        )

    def harvest_winners(
        self, max_plans: Optional[int] = None
    ) -> List["PreoptimizedPlan"]:
        """Every memoized winner of this run, as reusable seeds.

        The bulk counterpart of :meth:`harvest` and the persistence half
        of the cross-query reuse hooks: a warm
        :class:`~repro.service.OptimizerService` drains a finished run's
        memo with this and seeds later searches over shared
        subexpressions.  Only ordinary goals are exported (winners found
        under an enforcer's *excluding* vector are valid solely in that
        context); groups whose every expression is cyclic are skipped.
        ``max_plans`` bounds the export (pre-order from the root, so the
        full query's winner comes first).
        """
        if self.memo is None or self.root_group is None:
            raise SearchError("this result carries no memo to harvest from")
        seeds: List[PreoptimizedPlan] = []
        for gid in self.memo.reachable(self.root_group):
            group = self.memo.group(gid)
            if not group.winners:
                continue
            try:
                expression = self.memo.representative_expression(gid)
            except SearchError:
                continue
            for (props, excluded), winner in group.winners.items():
                if excluded is not None:
                    continue
                seeds.append(
                    PreoptimizedPlan(
                        expression=expression,
                        plan=winner.plan,
                        cost=winner.cost,
                        required=props,
                    )
                )
                if max_plans is not None and len(seeds) >= max_plans:
                    if self.stats is not None:
                        self.stats.winners_harvested += len(seeds)
                    return seeds
        if self.stats is not None:
            self.stats.winners_harvested += len(seeds)
        return seeds


@dataclass(frozen=True)
class PreoptimizedPlan:
    """A trusted, reusable subplan for :meth:`VolcanoOptimizer.optimize`.

    Seeding declares the plan *optimal* for its (expression, required)
    goal under the current catalog and cost model — the caller vouches
    for it (typically by harvesting it from a previous exhaustive run
    over the same catalog).  Matching is syntactic up to the rule set:
    a seed helps whenever exploration derives the seed expression's
    exact form (the memo's hash table then lands the winner in the
    right equivalence class, including rule-derived variants such as
    commuted joins).
    """

    expression: LogicalExpression
    plan: PhysicalPlan
    cost: Cost
    required: PhysProps = ANY_PROPS


class _AlgorithmMove:
    """One costed candidate source: an implementation rule binding.

    ``promise`` is the active promise model's number (it orders the
    pursuit); ``rank`` is the move's position under the *static*
    ordering — stable sort by descending ``rule.promise``, discovery
    order within ties.  Winner selection compares ``(cost, rank,
    alternative)``, never the pursuit position, so the chosen plan is
    independent of how a model reorders equal-cost moves.

    ``applicability`` memoizes ``(algorithm, node, alternatives, local
    cost)`` per required property vector: move objects live in the
    per-run moves cache and are revisited once per property goal on
    their group, and the model calls are pure within a run.  Keying the
    cache on the move object itself (instead of a run-global dict keyed
    by the full move identity) makes the hit path one small-dict probe.
    """

    __slots__ = (
        "rule",
        "args",
        "input_groups",
        "promise",
        "rank",
        "applicability",
        "node",
    )

    def __init__(
        self,
        rule: ImplementationRule,
        args: Tuple,
        input_groups: Tuple[int, ...],
        promise: float,
        rank: int,
    ):
        self.rule = rule
        self.args = args
        self.input_groups = input_groups
        self.promise = promise
        self.rank = rank
        self.applicability: Dict = {}
        # The AlgorithmNode is required-independent; built lazily once
        # per move (see _move_applicability) instead of once per goal.
        self.node: Optional[AlgorithmNode] = None


def _move_order(move: _AlgorithmMove) -> Tuple[float, int]:
    """Pursuit order: descending promise, static rank within ties."""
    return (-move.promise, move.rank)


class _SearchRun:
    """All per-run state of one ``optimize()`` call.

    Created at the entry point and threaded through every search method,
    so engine instances hold no mutable per-query state: two threads (or
    a re-entrant caller) can optimize through one engine concurrently,
    each run carrying its own memo, stats, tracer, budget meter, and —
    for the task driver — agenda.
    """

    __slots__ = (
        "options",
        "memo",
        "context",
        "stats",
        "tracer",
        "meter",
        "metered",
        "agenda",
        "claims",
        "promise",
        "kernel",
    )

    def __init__(
        self,
        options: SearchOptions,
        memo: Memo,
        context: OptimizerContext,
        stats: SearchStats,
        tracer: Tracer,
        meter: BudgetMeter,
    ):
        self.options = options
        self.memo = memo
        self.context = context
        self.stats = stats
        self.tracer = tracer
        self.meter = meter
        # Budget accounting is skipped entirely on unbudgeted runs: the
        # meter's counters are only ever read in trip reports, so with
        # no (or an unbounded) budget the checks are pure overhead.
        self.metered = meter.armed
        # The task driver's agenda (None in the recursive engine).
        self.agenda: Optional[List] = None
        # The specialized search kernel (None = interpreted paths).
        self.kernel = None
        # The active promise model; STATIC_PROMISE (compared by
        # identity for the fast path) unless the options name one.
        self.promise: PromiseModel = (
            options.promise_model
            if options.promise_model is not None
            else STATIC_PROMISE
        )
        # Provenance claims for certificate construction: id(plan node)
        # → (plan, ClaimRecord).  Keeping the plan in the value pins its
        # id, so reused ids always carry a fresh, overwritten record.
        self.claims: Optional[Dict[int, Tuple[PhysicalPlan, ClaimRecord]]] = (
            {} if options.certificates else None
        )

    def expressions_of(self, gid: int):
        """Pattern-matching callback: a group's expressions as triples."""
        for mexpr in self.memo.group(gid).expressions:
            yield mexpr.operator, mexpr.args, mexpr.input_groups

    def trace(self, kind: str, detail: str, depth: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(kind, detail, depth)


def _dispatch_pairs(rules):
    """Rules keyed by top operator, with empty matcher and delta slots."""
    table: Dict[str, List] = {}
    for rule in rules:
        table.setdefault(rule.top_operator, []).append((rule, None, None))
    return {operator: tuple(triples) for operator, triples in table.items()}


class VolcanoOptimizer:
    """A generated optimizer: model-specific tables + the shared engine.

    Instances are produced by :func:`repro.generator.generate_optimizer`
    (or constructed directly); one instance can optimize many queries,
    sequentially or concurrently.  Per the paper, the memo of partial
    results "is reinitialized for each query being optimized".
    """

    def __init__(
        self,
        spec: ModelSpecification,
        catalog: Catalog,
        options: Optional[SearchOptions] = None,
        estimator: Optional[SelectivityEstimator] = None,
    ):
        spec.validate()
        self.spec = spec
        self.catalog = catalog
        self.options = options or SearchOptions()
        self.estimator = estimator
        # Compiled dispatch tables (the generator's "very fast pattern
        # matching"): rules indexed by their pattern's top operator.
        # Entries are (rule, matcher, delta) triples so a specialized
        # kernel can slot its generated matchers in without a second
        # code path; matcher None means "interpret the pattern", delta
        # None means "no append-only cache resume for this rule".
        self._transformations: Dict[
            str, Tuple[Tuple[TransformationRule, None, None], ...]
        ] = _dispatch_pairs(spec.transformations)
        self._implementations: Dict[
            str, Tuple[Tuple[ImplementationRule, None, None], ...]
        ] = _dispatch_pairs(spec.implementations)
        # Post-optimize hooks: callables invoked with each
        # OptimizationResult while its memo is still live.  This is the
        # attachment point for runtime invariant checkers such as
        # :class:`repro.lint.MemoAuditor`.
        self.post_optimize_hooks: List[Callable[["OptimizationResult"], None]] = []

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def optimize(
        self,
        query: LogicalExpression,
        props: Optional[PhysProps] = None,
        *,
        limit: Cost = INFINITE_COST,
        preoptimized: Sequence["PreoptimizedPlan"] = (),
        options: Optional[SearchOptions] = None,
        required: Optional[PhysProps] = None,
    ) -> OptimizationResult:
        """Find the cheapest plan for ``query`` delivering ``props``.

        This is the unified :class:`~repro.search.Optimizer` entry
        point: ``props`` is the goal's physical property vector
        (defaulting to the model's "any" vector) and ``options``
        overrides this instance's :class:`SearchOptions` for this call
        only.  ``required=`` is the deprecated pre-protocol spelling of
        ``props`` and is kept as a shim.

        ``limit`` is the user-supplied cost limit of Figure 2 — "typically
        infinity for a user query, but the user interface may permit users
        to set their own limits to 'catch' unreasonable queries".

        ``preoptimized`` seeds the memo with trusted subplans (harvested
        via :meth:`OptimizationResult.harvest` /
        :meth:`OptimizationResult.harvest_winners`) before costing
        begins — the Section 6 "longer-lived partial results" direction.
        The memo itself is still "reinitialized for each query being
        optimized", exactly as the paper says; only what the caller
        explicitly hands over survives.

        Raises :class:`OptimizationFailedError` when no plan satisfying
        the goal exists within the limit, and
        :class:`~repro.errors.BudgetExceededError` when a resource
        budget tripped *and* not even a degraded plan could be built.
        """
        props = _resolve_props(props, required)
        return self._optimize(
            query,
            props,
            limit,
            preoptimized,
            options if options is not None else self.options,
        )

    def _optimize(
        self,
        query: LogicalExpression,
        required: Optional[PhysProps],
        limit: Cost,
        preoptimized: Sequence["PreoptimizedPlan"],
        options: SearchOptions,
    ) -> OptimizationResult:
        required = required if required is not None else self.spec.any_props
        started = time.perf_counter()
        stats = SearchStats()
        tracer = Tracer(enabled=options.trace)
        context = OptimizerContext(self.spec, self.catalog, self.estimator)
        memo = Memo(
            context,
            stats=stats,
            check_consistency=options.check_consistency,
            max_groups=options.max_groups,
        )
        context.group_props_resolver = lambda gid: memo.logical_props(gid)
        run = _SearchRun(
            options, memo, context, stats, tracer, BudgetMeter(options.budget)
        )
        run.kernel = self._resolve_kernel(options)
        try:
            root = memo.insert_expression(query)
            report: Optional[BudgetReport] = None
            try:
                self._explore_closure(run, root)
                if preoptimized:
                    self._plant_preoptimized(run, root, preoptimized)
                winner = self._solve_root(run, root, required, limit, query)
            except BudgetTripped as trip:
                winner, report = self._degrade(run, root, required, limit, trip)
            if winner is None:
                raise OptimizationFailedError(
                    f"no plan for goal [{required}] within limit {limit}"
                )
            if report is None:
                run.promise.observe_result(query, required, winner.cost)
            if options.check_consistency and not self.spec.props_cover(
                winner.plan.properties, required
            ):
                raise PlanValidationError(
                    f"chosen plan delivers [{winner.plan.properties}] which does "
                    f"not satisfy the goal [{required}]"
                )
            certificate: Optional[PlanCertificate] = None
            if options.certificates:
                builder = CertificateBuilder(self.spec, memo, run.claims)
                certificate = builder.certify(
                    query,
                    winner.plan,
                    required,
                    degraded=report is not None,
                    engine=type(self).__name__,
                )
            result = OptimizationResult(
                plan=winner.plan,
                cost=winner.cost,
                required=required,
                stats=stats,
                memo=memo,
                trace=tracer.render() if tracer.enabled else None,
                root_group=memo.canonical(root),
                degraded=report is not None,
                budget_report=report,
                certificate=certificate,
            )
            for hook in self.post_optimize_hooks:
                hook(result)
            return result
        except ReproError as error:
            # Aborted searches still report how far they got: partial
            # stats (with wall-clock) ride on the raised error.
            if getattr(error, "stats", None) is None:
                error.stats = stats
            raise
        finally:
            # Success, degradation, and abort all account elapsed time
            # (the stats object is shared with the result).
            stats.elapsed_seconds = time.perf_counter() - started

    def optimize_batch(
        self,
        queries: Sequence[LogicalExpression],
        props: Optional[PhysProps] = None,
        *,
        limit: Cost = INFINITE_COST,
        options: Optional[SearchOptions] = None,
    ) -> List[OptimizationResult]:
        """Optimize a batch of queries against one shared memo.

        The multi-query substrate: every query's expression tree is
        merged into a single AND-OR DAG (hash-consing makes cross-query
        common subexpressions collide structurally), each root is driven
        to its goal in input order, and winners memoized while solving
        one query are reused verbatim by the next — so a subplan shared
        by several queries is optimized once and is the *same*
        :class:`~repro.algebra.plans.PhysicalPlan` object in every
        result, which is what :func:`repro.search.sharing.plan_sharing`
        keys on.

        Each root is explored and solved incrementally before the next
        root is inserted, so every query sees exactly the closure a
        single-query optimization would have seen plus already-settled
        knowledge — plans are byte-identical to per-query runs.  All
        results share one :class:`SearchStats`, one memo, and one
        :class:`~repro.options.BudgetMeter`: the budget governs the
        whole batch, and a trip raises
        :class:`~repro.errors.BudgetExceededError` (callers degrade by
        falling back to per-query optimization, where the anytime
        machinery applies).
        """
        options = options if options is not None else self.options
        required = props if props is not None else self.spec.any_props
        started = time.perf_counter()
        stats = SearchStats()
        tracer = Tracer(enabled=options.trace)
        context = OptimizerContext(self.spec, self.catalog, self.estimator)
        memo = Memo(
            context,
            stats=stats,
            check_consistency=options.check_consistency,
            max_groups=options.max_groups,
        )
        context.group_props_resolver = lambda gid: memo.logical_props(gid)
        run = _SearchRun(
            options, memo, context, stats, tracer, BudgetMeter(options.budget)
        )
        run.kernel = self._resolve_kernel(options)
        try:
            roots: List[int] = []
            winners: List[Winner] = []
            for query in queries:
                root = memo.insert_expression(query)
                memo.register_root(root)
                roots.append(root)
                try:
                    self._explore_closure(run, root)
                    winner = self._solve_root(run, root, required, limit, query)
                except BudgetTripped as trip:
                    # No per-query degradation here: the budget belongs
                    # to the batch, so the whole batch reports the trip.
                    run.stats.budget_trips += 1
                    report = run.meter.report(trip.phase, best_cost=None)
                    raise BudgetExceededError(
                        f"batch optimization budget exhausted "
                        f"({report.tripped} during {report.phase}) after "
                        f"{len(winners)} of {len(queries)} queries",
                        report=report,
                        stats=stats,
                    )
                if winner is None:
                    raise OptimizationFailedError(
                        f"no plan for goal [{required}] within limit {limit}"
                    )
                if options.check_consistency and not self.spec.props_cover(
                    winner.plan.properties, required
                ):
                    raise PlanValidationError(
                        f"chosen plan delivers [{winner.plan.properties}] "
                        f"which does not satisfy the goal [{required}]"
                    )
                run.promise.observe_result(query, required, winner.cost)
                # Extract immediately: a later root's closure may merge
                # groups and clear memoized winners, but the Winner
                # object (and its plan) stays valid.
                winners.append(winner)
            rendered = tracer.render() if tracer.enabled else None
            # One builder for the whole batch: winners shared across
            # results get identical frontier subexpressions in every
            # certificate, which the sharing pass's certifier relies on.
            builder = (
                CertificateBuilder(self.spec, memo, run.claims)
                if options.certificates
                else None
            )
            results: List[OptimizationResult] = []
            for query, root, winner in zip(queries, roots, winners):
                certificate = (
                    builder.certify(
                        query,
                        winner.plan,
                        required,
                        engine=type(self).__name__,
                    )
                    if builder is not None
                    else None
                )
                result = OptimizationResult(
                    plan=winner.plan,
                    cost=winner.cost,
                    required=required,
                    stats=stats,
                    memo=memo,
                    trace=rendered,
                    root_group=memo.canonical(root),
                    certificate=certificate,
                )
                for hook in self.post_optimize_hooks:
                    hook(result)
                results.append(result)
            return results
        except ReproError as error:
            if getattr(error, "stats", None) is None:
                error.stats = stats
            raise
        finally:
            stats.elapsed_seconds = time.perf_counter() - started

    def _resolve_kernel(self, options: SearchOptions):
        """Resolve ``options.kernel`` to a bound SearchKernel (or None).

        Imported lazily: the default (interpreted) path never touches
        the generator package, and the generator package imports this
        module.
        """
        if options.kernel is None:
            return None
        from repro.generator.kernel import resolve_kernel

        return resolve_kernel(self.spec, options.kernel)

    def _solve_root(
        self,
        run: _SearchRun,
        root: int,
        required: PhysProps,
        limit: Cost,
        query: LogicalExpression,
    ) -> Optional[Winner]:
        """Drive the root goal, seeding the cost limit from any prior.

        When the promise model carries an observed-cost prior for this
        (query, goal) fingerprint and branch-and-bound is on, the first
        attempt runs under the tighter prior as its limit.  Soundness:
        pruning is strict (``bound < total``), so a winner found under
        *any* limit is the true optimum — a prior at or above the
        optimum changes nothing but the work.  A prior *below* the
        optimum (statistics moved since it was recorded) makes the
        seeded attempt fail; the search then retries at the caller's
        limit, and the failure cache never blocks the wider retry
        (failures are cached at the limit they failed under).
        """
        if run.options.branch_and_bound:
            prior = run.promise.cost_bound(query, required)
            if prior is not None and prior < limit:
                run.stats.bound_seeds += 1
                winner = self._find_best_plan(
                    run, root, required, prior, excluded=None, depth=0
                )
                if winner is not None:
                    return winner
                run.stats.bound_seed_retries += 1
        return self._find_best_plan(
            run, root, required, limit, excluded=None, depth=0
        )

    # ------------------------------------------------------------------
    # Anytime degradation (resource governance)
    # ------------------------------------------------------------------

    def _degrade(
        self,
        run: _SearchRun,
        root: int,
        required: PhysProps,
        limit: Cost,
        trip: BudgetTripped,
    ) -> Tuple[Winner, BudgetReport]:
        """Best-effort completion after a budget trip.

        In order of preference: the root goal's memoized winner (the
        trip happened after it was solved, e.g. while re-optimizing
        under a caller's limit), else a deterministic greedy
        implementation pass over whatever the search explored
        (:func:`repro.search.extract.greedy_plan`).  Nothing found is
        the only case that escalates to
        :class:`~repro.errors.BudgetExceededError` — and nothing is
        memoized on this path, so a degraded dead end is never confused
        with a proven optimization failure.
        """
        from repro.search.extract import greedy_plan

        run.stats.budget_trips += 1
        memo = run.memo
        gid = memo.canonical(root)
        winner = memo.group(gid).winners.get((required, None))
        if winner is not None and not winner.cost <= limit:
            winner = None
        if winner is None:
            plan = greedy_plan(
                memo,
                run.context,
                gid,
                required,
                claims=run.claims,
                promise_model=run.promise,
            )
            if plan is not None and plan.cost <= limit:
                run.stats.greedy_plans += 1
                winner = Winner(plan, plan.cost)
        report = run.meter.report(
            trip.phase, best_cost=winner.cost if winner is not None else None
        )
        run.trace("budget", str(report), 0)
        if winner is None:
            raise BudgetExceededError(
                f"optimization budget exhausted ({report.tripped} during "
                f"{report.phase}) and no valid plan exists for goal "
                f"[{required}] within limit {limit}",
                report=report,
                stats=run.stats,
            )
        return winner, report

    def _plant_preoptimized(self, run: _SearchRun, root, preoptimized) -> None:
        """Seed trusted winners into the memo (after logical closure).

        Inserting a seed expression may add new logical content; closure
        is re-run so any merges settle *before* the winners are planted
        (merges clear cached winners, so planting must come last).
        """
        memo = run.memo
        for seed in preoptimized:
            memo.insert_expression(seed.expression)
        self._explore_closure(run, root)
        for seed in preoptimized:
            gid = memo.insert_expression(seed.expression)
            winners = memo.group(gid).winners
            existing = winners.get((seed.required, None))
            if existing is not None and existing.cost <= seed.cost:
                continue
            winners[(seed.required, None)] = Winner(seed.plan, seed.cost)
            run.stats.seeds_planted += 1

    # ------------------------------------------------------------------
    # Logical exploration (transformation moves)
    # ------------------------------------------------------------------

    def _explore_closure(self, run: _SearchRun, root: int) -> None:
        """Apply transformation rules to fixpoint over the reachable memo."""
        memo, stats = run.memo, run.stats
        changed = True
        while changed:
            changed = False
            stats.exploration_passes += 1
            for gid in memo.reachable(root):
                changed |= self._explore_group(run, gid)

    def _explore_group(self, run: _SearchRun, gid: int) -> bool:
        """One pass of rule application over a group; True when it changed."""
        memo, stats, context = run.memo, run.stats, run.context
        options, meter = run.options, run.meter
        gid = memo.canonical(gid)
        if memo.group(gid).explored:
            return False
        changed = False
        index = 0
        # Kernelized runs dispatch through the kernel's (rule, matcher)
        # tables — same rule objects in the same order, with a generated
        # matcher alongside; everything below is tier-independent.
        transformations = (
            run.kernel.transformation_dispatch
            if run.kernel is not None
            else self._transformations
        )
        # The expression list can grow (and the group object change via a
        # merge) while we iterate, so re-fetch by canonical id each step.
        while index < len(memo.group(gid).expressions):
            gid = memo.canonical(gid)
            group = memo.group(gid)
            mexpr = group.expressions[index]
            index += 1
            for rule, matcher, delta in transformations.get(mexpr.operator, ()):
                if run.metered:
                    meter.check("exploration")
                # Heuristic pruning consults the promise model; the
                # exhaustive default (min_promise None) never calls it.
                # This method is shared by both engines — the recursive
                # driver and the task driver prune (and account) the
                # exact same rules.
                if options.min_promise is not None and (
                    run.promise.transformation_promise(rule, group.logical_props)
                    < options.min_promise
                ):
                    stats.moves_pruned += 1
                    continue
                # A valid cached enumeration means every binding below
                # is already fingerprinted in group.applied — the loop
                # would be a pure no-op, so skip the re-walk entirely.
                if memo.rule_bindings_applied(rule.name, mexpr):
                    continue
                for binding in memo.rule_bindings(
                    rule.name, rule.pattern, mexpr, matcher, delta
                ):
                    # Bindings are built in pattern-traversal order, so
                    # equal bindings always itemize identically — the
                    # tuple is as injective as a frozenset and cheaper.
                    fingerprint = (
                        rule.name,
                        mexpr,
                        tuple(binding.items()),
                    )
                    if fingerprint in group.applied:
                        continue
                    group.applied.add(fingerprint)
                    stats.rule_bindings_tried += 1
                    if not rule.applies(binding, context):
                        continue
                    results = rule.rewrite(binding, context)
                    if results is None:
                        continue
                    if isinstance(results, LogicalExpression):
                        results = [results]
                    for new_expression in results:
                        stats.rules_fired += 1
                        if run.metered:
                            meter.charge_rule_firing()
                        if memo.add_expression_to_group(new_expression, gid):
                            changed = True
                        gid = memo.canonical(gid)
                        group = memo.group(gid)
        memo.group(gid).explored = True
        return changed

    # ------------------------------------------------------------------
    # FindBestPlan (Figure 2)
    # ------------------------------------------------------------------

    def _find_best_plan(
        self,
        run: _SearchRun,
        gid: int,
        required: PhysProps,
        limit: Cost,
        excluded: Optional[PhysProps],
        depth: int,
    ) -> Optional[Winner]:
        memo, stats = run.memo, run.stats
        gid = memo.canonical(gid)
        group = memo.group(gid)
        key: GoalKey = memo.goal_key(required, excluded)
        stats.find_best_plan_calls += 1
        if run.metered:
            run.meter.check("costing")
        if run.tracer.enabled:  # skip f-string rendering on the hot path
            run.trace("goal", f"g{gid} [{required}] limit={limit}", depth)

        # "if the pair LogExpr and PhysProp is in the look-up table"
        winner = group.winners.get(key)
        if winner is not None:
            stats.winner_hits += 1
            if winner.cost <= limit:
                return winner
            return None
        if run.options.cache_failures:
            failed_at = group.failures.get(key)
            if failed_at is not None and limit <= failed_at:
                stats.failure_hits += 1
                return None
        if group.is_in_progress(key):
            # A cycle through equivalent goals (e.g. mutually inverse
            # rules): the outer invocation will produce the plan.
            return None

        group.mark_in_progress(key)
        try:
            best = self._optimize_goal(run, gid, required, limit, excluded, depth)
        finally:
            # Unwinds on success AND on a budget trip propagating through,
            # so aborted searches leave no stale in-progress marks.
            memo.group(gid).unmark_in_progress(key)

        group = memo.group(gid)
        if best is not None:
            group.winners[key] = best
            if run.tracer.enabled:
                run.trace("winner", f"g{gid} [{required}] cost={best.cost}", depth)
            return best
        if run.options.cache_failures:
            previous = group.failures.get(key)
            if previous is None or previous < limit:
                group.failures[key] = limit
        if run.tracer.enabled:
            run.trace("failure", f"g{gid} [{required}] limit={limit}", depth)
        return None

    def _optimize_goal(
        self,
        run: _SearchRun,
        gid: int,
        required: PhysProps,
        limit: Cost,
        excluded: Optional[PhysProps],
        depth: int,
    ) -> Optional[Winner]:
        """Generate, order, and pursue moves for one goal.

        Winner selection is by ``(cost, rank)`` — strictly cheaper
        always wins; at equal cost the move with the lower *static*
        rank wins regardless of pursuit order.  Under the static model
        pursuit order equals rank order, so the tie-break never fires
        and behavior is bit-identical to plain first-minimum selection;
        under a learned model it makes the chosen plan independent of
        how the model reordered the moves.  Enforcer moves rank after
        every algorithm move, in specification order.

        The move loop is the engine's hottest code: the algorithm-move
        pursuit (Figure 2's "TotalCost := cost of the algorithm; for
        each input while TotalCost < Limit") is written inline rather
        than as a helper, input sub-goals take a memoized-winner fast
        path that bypasses the :meth:`_find_best_plan` call, and cost
        bounds compare by their precomputed float totals.  Every
        counter, meter charge, claim, and selection rule is unchanged —
        tracing runs route through the full ``_find_best_plan`` so goal
        lines are still emitted.
        """
        memo, stats, context = run.memo, run.stats, run.context
        group = memo.group(gid)
        moves = self._ordered_moves(run, group)

        spec = self.spec
        metered, tracing = run.metered, run.tracer.enabled
        b_and_b = run.options.branch_and_bound
        claims = run.claims
        best: Optional[Winner] = None
        best_rank = 0
        bound = limit if b_and_b else INFINITE_COST
        for move in moves:
            if metered:
                run.meter.check("costing")
            entry = move.applicability.get(required)
            if entry is None:
                entry = self._move_applicability(run, group, move, required)
            algorithm, node, alternatives, local = entry
            if not alternatives:
                continue
            bound_total = bound._total
            candidate: Optional[Winner] = None
            for input_requirements in alternatives:
                if len(input_requirements) != len(move.input_groups):
                    raise SearchError(
                        f"algorithm {algorithm.name!r} returned "
                        f"{len(input_requirements)} input requirements for "
                        f"{len(move.input_groups)} inputs"
                    )
                stats.algorithm_costings += 1
                if metered:
                    run.meter.charge_costing()
                # "TotalCost := cost of the algorithm"
                total = local
                if b_and_b and bound_total < total._total:
                    stats.moves_pruned += 1
                    continue
                # "for each input I while TotalCost < Limit …"
                input_winners: List[Winner] = []
                abandoned = False
                for input_gid, input_required in zip(
                    move.input_groups, input_requirements
                ):
                    # Memoized-winner fast path of _find_best_plan: the
                    # overwhelmingly common case once the memo warms up.
                    # Counter/meter order matches the full function.
                    sub_group = memo.group(input_gid)
                    winner = (
                        sub_group.winners.get((input_required, None))
                        if not tracing
                        else None
                    )
                    if winner is not None:
                        stats.find_best_plan_calls += 1
                        if metered:
                            run.meter.check("costing")
                        stats.winner_hits += 1
                        sub = (
                            winner
                            if winner.cost._total <= bound_total - total._total
                            else None
                        )
                    else:
                        sub = self._find_best_plan(
                            run, input_gid, input_required, bound - total,
                            None, depth + 1,
                        )
                    if sub is None:
                        stats.inputs_abandoned += 1
                        abandoned = True
                        break
                    total = total + sub.cost
                    input_winners.append(sub)
                    if b_and_b and bound_total < total._total:
                        stats.inputs_abandoned += 1
                        abandoned = True
                        break
                if abandoned:
                    continue
                delivered = algorithm.derive_props(
                    context,
                    node,
                    tuple(winner.plan.properties for winner in input_winners),
                )
                if not spec.props_cover(delivered, required):
                    # The applicability function over-promised; skip (a
                    # stricter model could raise here).
                    continue
                if excluded is not None and spec.props_cover(delivered, excluded):
                    # "since merge-join is able to satisfy the excluding
                    # properties, it would not be considered a suitable
                    # algorithm for the sort input."
                    stats.moves_pruned += 1
                    continue
                plan = PhysicalPlan(
                    algorithm.name,
                    move.args,
                    tuple(winner.plan for winner in input_winners),
                    properties=delivered,
                    cost=total,
                )
                if claims is not None:
                    claims[id(plan)] = (
                        plan,
                        ClaimRecord(
                            rule=move.rule.name,
                            gid=group.id,
                            input_groups=move.input_groups,
                            local=local,
                            output=node.output,
                            inputs=node.inputs,
                        ),
                    )
                if candidate is None or total._total < candidate.cost._total:
                    candidate = Winner(plan, total)
            if candidate is None:
                continue
            if (
                best is None
                or candidate.cost < best.cost
                or (candidate.cost == best.cost and move.rank < best_rank)
            ):
                best = candidate
                best_rank = move.rank
                if b_and_b and candidate.cost < bound:
                    bound = candidate.cost
        # Enforcer moves: "enforcers for required PhysProp".
        if not required.is_any:
            rank = len(moves)
            for enforcer_name in self.spec.enforcers:
                for application in self.spec.enforcer_applications(
                    enforcer_name, run.context, required, group.logical_props
                ):
                    if run.metered:
                        run.meter.check("costing")
                    candidate = self._pursue_enforcer(
                        run, gid, enforcer_name, application, required, bound,
                        excluded, depth,
                    )
                    current_rank = rank
                    rank += 1
                    if candidate is None:
                        continue
                    if (
                        best is None
                        or candidate.cost < best.cost
                        or (
                            candidate.cost == best.cost
                            and current_rank < best_rank
                        )
                    ):
                        best = candidate
                        best_rank = current_rank
                        if run.options.branch_and_bound and candidate.cost < bound:
                            bound = candidate.cost
        if best is not None and not best.cost <= limit:
            return None
        return best

    def _ordered_moves(self, run: _SearchRun, group: Group) -> List[_AlgorithmMove]:
        """A group's algorithm moves in pursuit order.

        The ordering contract shared by both engines (documented in
        ``docs/search-internals.md``, "Promise and move ordering"):
        stable sort by descending model promise, static rank within
        ties — so equal-promise moves are pursued in discovery order,
        identically in the recursive and the task-based driver.
        """
        return self._algorithm_moves(run, group)

    def _algorithm_moves(self, run: _SearchRun, group: Group) -> List[_AlgorithmMove]:
        """Implementation-rule bindings over every expression of a group.

        Memoized per group: the same group is typically optimized for
        several property goals, and the binding enumeration is identical
        for each (promises are goal-independent).  The cache records
        which groups the pattern matcher read and is dropped exactly
        when any of them changes — see
        :meth:`repro.search.memo.Memo.cached_moves`.  The returned list
        is already in pursuit order; a fresh list is returned on every
        call so drivers may consume it freely.

        Each move carries the active promise model's promise and its
        static rank (position under stable descending-``rule.promise``
        order).  The memo (and therefore this cache) is per-run, so
        baking per-run model promises into cached moves is sound — and
        so is storing the list already in pursuit order (the sort is
        paid once per group, not once per goal).
        """
        memo, context = run.memo, run.context
        cached = memo.cached_moves(group.id)
        if cached is not None:
            return list(cached)
        probes = {
            group.id: (
                group.version,
                group.structure_version,
                len(group.expressions),
            )
        }
        expressions_of = memo.probing_expressions_of(probes)
        implementations = (
            run.kernel.implementation_dispatch
            if run.kernel is not None
            else self._implementations
        )
        found: List[Tuple[ImplementationRule, Tuple, Tuple[int, ...]]] = []
        seen = set()
        for mexpr in group.expressions:
            for rule, matcher, _delta in implementations.get(mexpr.operator, ()):
                bindings = (
                    matcher(mexpr.args, mexpr.input_groups, expressions_of)
                    if matcher is not None
                    else match_memo(
                        rule.pattern,
                        mexpr.operator,
                        mexpr.args,
                        mexpr.input_groups,
                        expressions_of,
                    )
                )
                for binding in bindings:
                    run.stats.rule_bindings_tried += 1
                    if not rule.applies(binding, context):
                        continue
                    if rule.build_args is not None:
                        args = tuple(rule.build_args(binding, context))
                    else:
                        args = mexpr.args
                    input_groups = tuple(
                        memo.canonical(binding[name].args[0])
                        for name in rule.input_names
                    )
                    fingerprint = (rule.algorithm, args, input_groups)
                    if fingerprint in seen:
                        continue
                    seen.add(fingerprint)
                    found.append((rule, args, input_groups))
        # Static ranks: stable descending rule promise, discovery order
        # within ties — the reference order every tie-break compares by.
        order = sorted(
            range(len(found)), key=lambda index: -found[index][0].promise
        )
        ranks = [0] * len(found)
        for rank, index in enumerate(order):
            ranks[index] = rank
        if run.promise is STATIC_PROMISE:
            moves = [
                _AlgorithmMove(rule, args, input_groups, rule.promise, ranks[i])
                for i, (rule, args, input_groups) in enumerate(found)
            ]
        else:
            props = group.logical_props
            moves = [
                _AlgorithmMove(
                    rule,
                    args,
                    input_groups,
                    run.promise.implementation_promise(rule, props),
                    ranks[i],
                )
                for i, (rule, args, input_groups) in enumerate(found)
            ]
        moves.sort(key=_move_order)
        memo.store_moves(group.id, probes, tuple(moves))
        return moves

    def _move_applicability(
        self,
        run: _SearchRun,
        group: Group,
        move: _AlgorithmMove,
        required: PhysProps,
    ):
        """Cached ``(algorithm, node, alternatives, local_cost)`` for a move.

        ``applicability`` and ``cost`` are pure functions of the
        algorithm node and the required properties, and the same move is
        re-evaluated once per property goal on its group (and again on
        re-entries with widened cost limits) — memoizing them per run
        removes the bulk of repeated model-code work.  The cache rides
        on the move object itself (one entry per required vector), which
        is sound because move objects live exactly as long as their
        group's moves-cache entry: any change to a matched group drops
        the moves and their caches together.  Budget accounting is
        untouched: callers still charge one costing per alternative
        pursued, so degraded/anytime semantics are byte-compatible.
        """
        entry = move.applicability.get(required)
        if entry is not None:
            return entry
        memo = run.memo
        algorithm = self.spec.algorithm(move.rule.algorithm)
        node = move.node
        if node is None:
            node = AlgorithmNode(
                move.args,
                group.logical_props,
                tuple(memo.logical_props(gid) for gid in move.input_groups),
            )
            move.node = node
        alternatives = algorithm.applicability(run.context, node, required)
        local = algorithm.cost(run.context, node) if alternatives else None
        entry = (algorithm, node, alternatives, local)
        move.applicability[required] = entry
        return entry

    def _pursue_enforcer(
        self,
        run: _SearchRun,
        gid: int,
        enforcer_name: str,
        application: EnforcerApplication,
        required: PhysProps,
        bound: Cost,
        excluded: Optional[PhysProps],
        depth: int,
    ) -> Optional[Winner]:
        memo, context, stats = run.memo, run.context, run.stats
        enforcer = self.spec.enforcer(enforcer_name)
        if application.relaxed == required:
            raise SearchError(
                f"enforcer {enforcer_name!r} did not relax the goal [{required}]"
            )
        if excluded is not None and self.spec.props_cover(
            application.delivered, excluded
        ):
            stats.moves_pruned += 1
            return None
        group = memo.group(gid)
        node = AlgorithmNode(
            application.args, group.logical_props, (group.logical_props,)
        )
        stats.enforcer_costings += 1
        if run.metered:
            run.meter.charge_costing()
        # "TotalCost := cost of the enforcer" …
        local = enforcer.cost(context, node)
        total = local
        if run.options.branch_and_bound and bound < total:
            stats.moves_pruned += 1
            return None
        # … "call FindBestPlan for LogExpr with new [relaxed] PhysProp",
        # excluding algorithms that could satisfy the enforced property.
        sub = self._find_best_plan(
            run, gid, application.relaxed, bound - total, application.excluded,
            depth + 1,
        )
        if sub is None:
            return None
        total = total + sub.cost
        if run.options.branch_and_bound and bound < total:
            return None
        if not self.spec.props_cover(application.delivered, required):
            return None
        plan = PhysicalPlan(
            enforcer_name,
            application.args,
            (sub.plan,),
            properties=application.delivered,
            cost=total,
            is_enforcer=True,
        )
        if run.claims is not None:
            run.claims[id(plan)] = (
                plan,
                ClaimRecord(
                    rule=None,
                    gid=gid,
                    input_groups=(gid,),
                    local=local,
                    output=group.logical_props,
                    inputs=(group.logical_props,),
                    enforcer=True,
                    required=required,
                ),
            )
        return Winner(plan, total)
