"""Certificate construction: turn a solved memo into provenance proofs.

The search engines record, at every plan-node creation, a tiny
:class:`ClaimRecord` (which implementation rule fired, in which group,
with which cost terms).  This module turns those records plus the solved
memo into the :class:`~repro.verify.certificate.PlanCertificate` the
independent checker (:func:`repro.verify.verify_plan`) consumes:

* the **frontier** — the logical expression the plan structurally
  implements — is reconstructed by re-matching each node's claimed
  implementation rule against its group's members;
* the **derivation chain** proving source ⟶ frontier is found by
  replaying transformation rules between group members: a BFS over each
  group's member graph (edges are rule firings, re-validated against
  the live rule set) yields concrete :class:`DerivationStep` sequences
  the checker can replay on plain trees;
* per-node :class:`NodeClaim` objects carry the exact cost terms and
  logical properties the engine used, so cost reproduction (P3xx) is an
  exact equality, not a tolerance test.

Construction is best-effort by design: the builder never raises out of
:meth:`CertificateBuilder.certify` — any reconstruction failure yields a
certificate the *checker* will flag (empty claims → P002, missing chain
→ P401).  The checker stays the single source of truth.

:class:`SharingCertifier` extends certificates across the multi-query
sharing pass: consumer plans keep their source/chain/frontier but get
re-aligned claims (scan nodes reference the certificate's
``intermediates``), and every materialized producer gets a
``producer``-kind certificate of its own.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import GROUP_LEAF, LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import LogicalProperties, PhysProps
from repro.errors import ReproError, SearchError
from repro.model.cost import Cost
from repro.model.patterns import AnyPattern, match_tree
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.search.memo import GroupExpression, Memo
from repro.search.sharing import MATERIALIZE, SCAN_INTERMEDIATE, SharingReport
from repro.verify.certificate import (
    KIND_DEGRADED,
    KIND_PRODUCER,
    KIND_SEARCH,
    DerivationStep,
    NodeClaim,
    PlanCertificate,
)

__all__ = [
    "ClaimRecord",
    "CertificateBuilder",
    "SharingCertifier",
    "certify_result",
    "standalone_certificate",
]

#: Upper bound on derivation-chain length; beyond it the builder gives
#: up and emits a chain-less certificate (P401 at verification) rather
#: than looping.  Real chains are short — the bound is a backstop.
CHAIN_STEP_BUDGET = 8000
_DERIVE_DEPTH_LIMIT = 200
_BFS_VISIT_LIMIT = 20000


@dataclass(frozen=True)
class ClaimRecord:
    """What an engine knew when it created one plan node.

    ``rule`` names the implementation rule (None for enforcers, and for
    foreign engines that pick algorithms without rules — the builder
    then searches for a justifying rule itself).  ``gid`` and
    ``input_groups`` locate the node in the memo (−1 when unknown).
    ``local``/``output``/``inputs`` are the exact cost term and logical
    properties the cost function consumed.
    """

    rule: Optional[str]
    gid: int
    input_groups: Tuple[int, ...]
    local: Cost
    output: LogicalProperties
    inputs: Tuple[LogicalProperties, ...]
    enforcer: bool = False
    required: Optional[PhysProps] = None


class _ChainFail(Exception):
    """Internal: certificate reconstruction failed (best-effort fallback)."""


def _record_of(entry) -> Optional[ClaimRecord]:
    """Engines store ``(plan, record)`` pairs (the plan pins the id)."""
    if entry is None:
        return None
    if isinstance(entry, ClaimRecord):
        return entry
    return entry[1]


class CertificateBuilder:
    """Builds certificates for plans of one solved memo.

    One builder per engine run (or batch): its caches are keyed by node
    identity, so winners shared across a batch's results get the *same*
    frontier subexpressions in every certificate — which is what lets
    the sharing pass tie ``scan_intermediate`` references back to their
    producers structurally.
    """

    def __init__(
        self,
        spec: ModelSpecification,
        memo: Memo,
        claims: Optional[Mapping[int, object]] = None,
    ):
        self.spec = spec
        self.memo = memo
        self.context = memo.context
        self.claims = claims if claims is not None else {}
        self._impl_by_name = {rule.name: rule for rule in spec.implementations}
        self._impl_by_algorithm: Dict[str, List] = {}
        for rule in spec.implementations:
            self._impl_by_algorithm.setdefault(rule.algorithm, []).append(rule)
        self._transforms_by_op: Dict[str, List] = {}
        for rule in spec.transformations:
            self._transforms_by_op.setdefault(rule.top_operator, []).append(rule)
        #: id(plan node) → frontier subexpression (exposed for sharing).
        self.frontiers: Dict[int, LogicalExpression] = {}
        self._records: Dict[int, ClaimRecord] = {}
        self._resolve_cache: Dict[LogicalExpression, Optional[int]] = {}
        self._repr_cache: Dict[int, LogicalExpression] = {}
        self._edge_cache: Dict[Tuple[int, GroupExpression], list] = {}
        self._keepalive: List[PhysicalPlan] = []
        self._steps: List[DerivationStep] = []
        self._budget = 0

    # -- public entry --------------------------------------------------------

    def certify(
        self,
        source: LogicalExpression,
        plan: PhysicalPlan,
        required: PhysProps,
        *,
        degraded: bool = False,
        engine: str = "",
    ) -> PlanCertificate:
        """Best-effort certificate for one (source, plan) pair.

        Never raises: reconstruction failures surface as certificates
        the independent checker rejects, not as engine errors.
        """
        kind = KIND_DEGRADED if degraded else KIND_SEARCH
        claims: Tuple[NodeClaim, ...] = ()
        frontier = source
        steps: Tuple[DerivationStep, ...] = ()
        try:
            root_gid = self._resolve(source)
            if root_gid is None:
                raise _ChainFail("the source expression is not in the memo")
            self._frontier_of(plan, root_gid)
            frontier = self.frontiers[id(plan)]
            claims = tuple(self._node_claim(node) for node in plan.walk())
        except (_ChainFail, ReproError, KeyError):
            frontier, claims = source, ()
        if claims and frontier != source:
            try:
                steps = self._derive(source, frontier)
            except (_ChainFail, ReproError):
                steps = ()
        return PlanCertificate(
            kind=kind,
            source=source,
            required=required,
            frontier=frontier,
            steps=steps,
            claims=claims,
            claimed_cost=plan.cost,
            engine=engine,
        )

    # -- claims and frontiers ------------------------------------------------

    def _node_claim(self, node: PhysicalPlan) -> NodeClaim:
        record = self._records[id(node)]
        return NodeClaim(
            algorithm=node.algorithm,
            local=record.local,
            output=record.output,
            inputs=record.inputs,
            rule=record.rule,
            enforcer=record.enforcer or node.is_enforcer,
            required=record.required,
        )

    def _frontier_of(self, node: PhysicalPlan, gid: int) -> LogicalExpression:
        cached = self.frontiers.get(id(node))
        if cached is not None:
            return cached
        gid = self.memo.canonical(gid)
        record = _record_of(self.claims.get(id(node)))
        if node.is_enforcer:
            if record is None:
                record = self._synthesize_enforcer(node, gid)
            if len(node.inputs) != 1:
                raise _ChainFail("enforcer arity")
            frontier = self._frontier_of(node.inputs[0], gid)
        elif record is not None and record.rule is not None:
            frontier = self._frontier_known(node, gid, record)
        else:
            record, frontier = self._frontier_search(node, gid, record)
        self._records[id(node)] = record
        self.frontiers[id(node)] = frontier
        self._keepalive.append(node)
        return frontier

    def _synthesize_enforcer(self, node: PhysicalPlan, gid: int) -> ClaimRecord:
        enforcer = self.spec.enforcers.get(node.algorithm)
        if enforcer is None:
            raise _ChainFail(f"unknown enforcer {node.algorithm!r}")
        props = self.memo.group(gid).logical_props
        local = enforcer.cost(self.context, AlgorithmNode(node.args, props, (props,)))
        return ClaimRecord(
            rule=None,
            gid=gid,
            input_groups=(gid,),
            local=local,
            output=props,
            inputs=(props,),
            enforcer=True,
            required=node.properties,
        )

    def _frontier_known(
        self, node: PhysicalPlan, gid: int, record: ClaimRecord
    ) -> LogicalExpression:
        """Frontier via the engine-recorded rule and input groups."""
        rule = self._impl_by_name.get(record.rule or "")
        if rule is None or rule.algorithm != node.algorithm:
            raise _ChainFail(f"claimed rule {record.rule!r} does not fit")
        child_gids = tuple(self.memo.canonical(g) for g in record.input_groups)
        if len(child_gids) != len(node.inputs):
            raise _ChainFail("input group arity")
        children = [
            self._frontier_of(child, g) for child, g in zip(node.inputs, child_gids)
        ]
        leaf_map = dict(zip(rule.input_names, children))
        frontier = self._match_rule(rule, node, gid, child_gids, leaf_map)
        if frontier is None:
            raise _ChainFail(f"no member of g{gid} justifies {rule.name!r}")
        return frontier

    def _frontier_search(
        self, node: PhysicalPlan, gid: int, record: Optional[ClaimRecord]
    ) -> Tuple[ClaimRecord, LogicalExpression]:
        """Find *some* implementation rule justifying the node (foreign
        engines and seeded subplans record no rule attribution)."""
        for rule in self._impl_by_algorithm.get(node.algorithm, ()):
            if len(rule.input_names) != len(node.inputs):
                continue
            for member, binding, args, leaf_gids in self._rule_sites(rule, gid):
                if args != node.args:
                    continue
                try:
                    children = [
                        self._frontier_of(child, g)
                        for child, g in zip(node.inputs, leaf_gids)
                    ]
                except _ChainFail:
                    continue
                leaf_map = dict(zip(rule.input_names, children))
                frontier = self._instantiate(rule.pattern, binding, gid, leaf_map)
                if frontier is None or self._resolve(frontier) != gid:
                    continue
                if record is not None:
                    found = dataclasses.replace(
                        record, rule=rule.name, gid=gid, input_groups=leaf_gids
                    )
                else:
                    found = ClaimRecord(
                        rule=rule.name,
                        gid=gid,
                        input_groups=leaf_gids,
                        local=self.spec.algorithm(node.algorithm).cost(
                            self.context,
                            AlgorithmNode(
                                node.args,
                                self.memo.group(gid).logical_props,
                                tuple(
                                    self.memo.logical_props(g) for g in leaf_gids
                                ),
                            ),
                        ),
                        output=self.memo.group(gid).logical_props,
                        inputs=tuple(
                            self.memo.logical_props(g) for g in leaf_gids
                        ),
                    )
                return found, frontier
        raise _ChainFail(f"no rule justifies {node.algorithm!r} in g{gid}")

    def _match_rule(self, rule, node, gid, child_gids, leaf_map):
        for member, binding, args, leaf_gids in self._rule_sites(rule, gid):
            if args != node.args or leaf_gids != child_gids:
                continue
            frontier = self._instantiate(rule.pattern, binding, gid, leaf_map)
            if frontier is not None and self._resolve(frontier) == gid:
                return frontier
        return None

    def _rule_sites(self, rule, gid: int):
        """(member, binding, args, leaf group ids) for every way ``rule``
        fires on the group — re-enumerated from the live memo."""
        memo = self.memo
        for member in list(memo.group(gid).expressions):
            if member.operator != rule.top_operator:
                continue
            member = self._canon_member(member)
            for binding in memo.rule_bindings(rule.name, rule.pattern, member):
                try:
                    if not rule.applies(binding, self.context):
                        continue
                    args = (
                        tuple(rule.build_args(binding, self.context))
                        if rule.build_args is not None
                        else member.args
                    )
                except ReproError:
                    continue
                leaf_gids = tuple(
                    memo.canonical(binding[name].args[0])
                    for name in rule.input_names
                )
                yield member, binding, args, leaf_gids

    def _instantiate(
        self,
        pattern,
        binding: dict,
        gid: int,
        leaf_map: Dict[str, LogicalExpression],
    ) -> Optional[LogicalExpression]:
        """A concrete expression shaped like ``pattern`` in group ``gid``,
        with pattern leaves replaced by the plan inputs' frontiers."""
        if isinstance(pattern, AnyPattern):
            return leaf_map[pattern.name]
        memo = self.memo
        for member in list(memo.group(gid).expressions):
            if member.operator != pattern.operator:
                continue
            if len(member.input_groups) != len(pattern.inputs):
                continue
            if pattern.args_as is not None and binding.get(pattern.args_as) != (
                member.args
            ):
                continue
            inputs: List[LogicalExpression] = []
            fits = True
            for sub, raw_gid in zip(pattern.inputs, member.input_groups):
                sub_gid = memo.canonical(raw_gid)
                if isinstance(sub, AnyPattern):
                    bound = binding.get(sub.name)
                    if bound is None or memo.canonical(bound.args[0]) != sub_gid:
                        fits = False
                        break
                    inputs.append(leaf_map[sub.name])
                else:
                    child = self._instantiate(sub, binding, sub_gid, leaf_map)
                    if child is None:
                        fits = False
                        break
                    inputs.append(child)
            if fits:
                return LogicalExpression(member.operator, member.args, tuple(inputs))
        return None

    # -- resolution ----------------------------------------------------------

    def _resolve(self, tree: LogicalExpression) -> Optional[int]:
        """The canonical group a concrete tree lands in (pure lookups)."""
        if tree.operator == GROUP_LEAF:
            return self.memo.canonical(tree.args[0])
        if tree in self._resolve_cache:
            return self._resolve_cache[tree]
        member = self._member_of(tree)
        gid = None if member is None else self.memo._table.get(member)
        gid = None if gid is None else self.memo.canonical(gid)
        self._resolve_cache[tree] = gid
        return gid

    def _member_of(self, tree: LogicalExpression) -> Optional[GroupExpression]:
        """The tree's top as a (canonical) group expression."""
        gids = []
        for child in tree.inputs:
            gid = self._resolve(child)
            if gid is None:
                return None
            gids.append(gid)
        return GroupExpression(tree.operator, tree.args, tuple(gids))

    def _canon_member(self, member: GroupExpression) -> GroupExpression:
        canonical = tuple(self.memo.canonical(g) for g in member.input_groups)
        if canonical == member.input_groups:
            return member
        return GroupExpression(member.operator, member.args, canonical)

    def _representative(self, gid: int) -> LogicalExpression:
        cached = self._repr_cache.get(gid)
        if cached is not None:
            return cached
        try:
            tree = self.memo.representative_expression(gid)
        except SearchError as error:
            raise _ChainFail(str(error)) from error
        self._repr_cache[gid] = tree
        return tree

    # -- the derivation chain ------------------------------------------------

    def _derive(
        self, source: LogicalExpression, target: LogicalExpression
    ) -> Tuple[DerivationStep, ...]:
        self._steps = []
        self._budget = CHAIN_STEP_BUDGET
        result = self._derive_rec(source, target, (), 0)
        if result != target:
            raise _ChainFail("derived endpoint is not the frontier")
        return tuple(self._steps)

    def _derive_rec(
        self,
        current: LogicalExpression,
        target: LogicalExpression,
        path: Tuple[int, ...],
        depth: int,
    ) -> LogicalExpression:
        if current == target:
            return current
        if depth > _DERIVE_DEPTH_LIMIT:
            raise _ChainFail("derivation recursion limit")
        gid = self._resolve(current)
        if gid is None or self._resolve(target) != gid:
            raise _ChainFail("derivation endpoints are in different groups")
        cur = current
        cur_member = self._member_of(cur)
        target_member = self._member_of(target)
        if cur_member is None or target_member is None:
            raise _ChainFail("unresolvable member")
        if cur_member != target_member:
            edges = self._member_path(gid, cur_member, target_member)
            for edge in edges:
                cur = self._apply_edge(cur, path, edge, depth)
            if self._member_of(cur) != target_member:
                raise _ChainFail("edge replay drifted off the member path")
        children = tuple(
            self._derive_rec(child, goal, path + (index,), depth + 1)
            for index, (child, goal) in enumerate(zip(cur.inputs, target.inputs))
        )
        return cur.with_inputs(children)

    def _member_path(
        self, gid: int, src: GroupExpression, dst: GroupExpression
    ) -> List[tuple]:
        """BFS through the group's member graph (edges = rule firings)."""
        parents: Dict[GroupExpression, Optional[tuple]] = {src: None}
        queue = deque([src])
        visited = 0
        while queue:
            member = queue.popleft()
            if member == dst:
                edges: List[tuple] = []
                cursor = parents[member]
                while cursor is not None:
                    previous, edge = cursor
                    edges.append(edge)
                    cursor = parents[previous]
                edges.reverse()
                return edges
            visited += 1
            if visited > _BFS_VISIT_LIMIT:
                break
            for edge in self._edges_of(gid, member):
                successor = edge[2]
                if successor not in parents:
                    parents[successor] = (member, edge)
                    queue.append(successor)
        raise _ChainFail(f"no transformation path in g{gid}")

    def _edges_of(self, gid: int, member: GroupExpression) -> list:
        key = (gid, member)
        cached = self._edge_cache.get(key)
        if cached is not None:
            return cached
        edges = []
        for rule in self._transforms_by_op.get(member.operator, ()):
            for binding in self.memo.rule_bindings(rule.name, rule.pattern, member):
                try:
                    if not rule.applies(binding, self.context):
                        continue
                    results = rule.rewrite(binding, self.context)
                except ReproError:
                    continue
                if results is None:
                    continue
                if isinstance(results, LogicalExpression):
                    results = [results]
                for output in results:
                    if output.operator == GROUP_LEAF:
                        continue  # group collapse: not replayable as a step
                    target = self._member_of(output)
                    if target is None:
                        continue
                    owner = self.memo._table.get(target)
                    if owner is None or self.memo.canonical(owner) != gid:
                        continue
                    edges.append((rule, binding, target))
        self._edge_cache[key] = edges
        return edges

    def _apply_edge(
        self,
        tree: LogicalExpression,
        path: Tuple[int, ...],
        edge: tuple,
        depth: int,
    ) -> LogicalExpression:
        """Fire one member-graph edge on the concrete working tree.

        Nested pattern positions may first need the concrete child
        reshaped into the member the binding matched — those reshapes
        recurse through :meth:`_derive_rec` and record their own steps.
        """
        rule, binding, target_member = edge
        children = list(tree.inputs)
        for index, sub in enumerate(rule.pattern.inputs):
            if isinstance(sub, AnyPattern):
                continue
            if self._shape_matches(sub, children[index], binding):
                continue
            child_gid = self._resolve(children[index])
            if child_gid is None:
                raise _ChainFail("unresolvable child during reshape")
            goal = self._pattern_target(sub, binding, child_gid)
            children[index] = self._derive_rec(
                children[index], goal, path + (index,), depth + 1
            )
        reshaped = tree.with_inputs(tuple(children))
        concrete = match_tree(rule.pattern, reshaped)
        if concrete is None:
            raise _ChainFail(f"rule {rule.name!r} lost its match on replay")
        try:
            if not rule.applies(concrete, self.context):
                raise _ChainFail(f"rule {rule.name!r} condition flipped on replay")
            results = rule.rewrite(concrete, self.context)
        except ReproError as error:
            raise _ChainFail(str(error)) from error
        if results is None:
            results = []
        elif isinstance(results, LogicalExpression):
            results = [results]
        for output in results:
            if output.operator == GROUP_LEAF:
                continue
            if self._member_of(output) == target_member:
                self._budget -= 1
                if self._budget <= 0:
                    raise _ChainFail("derivation step budget exhausted")
                self._steps.append(DerivationStep(rule.name, path, output))
                return output
        raise _ChainFail(f"rule {rule.name!r} did not reproduce the edge")

    def _shape_matches(self, pattern, tree: LogicalExpression, binding) -> bool:
        """Does the concrete tree already realize the member binding?"""
        if isinstance(pattern, AnyPattern):
            bound = binding.get(pattern.name)
            return (
                bound is not None
                and self._resolve(tree) == self.memo.canonical(bound.args[0])
            )
        if tree.operator != pattern.operator:
            return False
        if len(tree.inputs) != len(pattern.inputs):
            return False
        if pattern.args_as is not None and tree.args != binding.get(pattern.args_as):
            return False
        return all(
            self._shape_matches(sub, child, binding)
            for sub, child in zip(pattern.inputs, tree.inputs)
        )

    def _pattern_target(self, pattern, binding, gid: int) -> LogicalExpression:
        """A concrete expression in group ``gid`` realizing a nested
        pattern position of a member binding."""
        if isinstance(pattern, AnyPattern):
            return self._representative(
                self.memo.canonical(binding[pattern.name].args[0])
            )
        memo = self.memo
        for member in list(memo.group(gid).expressions):
            if member.operator != pattern.operator:
                continue
            if len(member.input_groups) != len(pattern.inputs):
                continue
            if pattern.args_as is not None and binding.get(pattern.args_as) != (
                member.args
            ):
                continue
            inputs: List[LogicalExpression] = []
            fits = True
            for sub, raw_gid in zip(pattern.inputs, member.input_groups):
                sub_gid = memo.canonical(raw_gid)
                if isinstance(sub, AnyPattern):
                    bound = binding.get(sub.name)
                    if bound is None or memo.canonical(bound.args[0]) != sub_gid:
                        fits = False
                        break
                    inputs.append(self._representative(sub_gid))
                else:
                    inputs.append(self._pattern_target(sub, binding, sub_gid))
            if fits:
                return LogicalExpression(member.operator, member.args, tuple(inputs))
        raise _ChainFail("no member realizes the nested pattern")


# ---------------------------------------------------------------------------
# Sharing-pass certification
# ---------------------------------------------------------------------------


class SharingCertifier:
    """Carry certificates across :func:`repro.search.sharing.plan_sharing`.

    Usage: feed every pre-sharing (plan, certificate) pair through
    :meth:`add_result`, hand :attr:`local_costs` to ``plan_sharing`` (so
    rewritten cumulative costs stay exactly reproducible), then call
    :meth:`certify` with the report to get consumer certificates (claims
    re-aligned to the rewritten plans, scans bound to ``intermediates``)
    and one ``producer``-kind certificate per materialized intermediate.
    """

    def __init__(self, spec: ModelSpecification, context):
        self.spec = spec
        self.context = context
        self._impl_by_name = {rule.name: rule for rule in spec.implementations}
        self.claims: Dict[int, NodeClaim] = {}
        self.frontiers: Dict[int, LogicalExpression] = {}
        self._keepalive: List[PhysicalPlan] = []

    def add_result(
        self, plan: PhysicalPlan, certificate: Optional[PlanCertificate]
    ) -> bool:
        """Index one pre-sharing plan's claims and frontiers by node id."""
        if certificate is None:
            return False
        if len(certificate.claims) != sum(1 for _ in plan.walk()):
            return False
        try:
            self._index(plan, certificate.frontier, certificate.claims, [0])
        except (_ChainFail, KeyError):
            return False
        return True

    @property
    def local_costs(self) -> Dict[int, Cost]:
        """id(node) → the engine's exact local cost, for ``plan_sharing``."""
        return {key: claim.local for key, claim in self.claims.items()}

    def _index(self, node, frontier, claims, counter) -> None:
        claim = claims[counter[0]]
        counter[0] += 1
        if claim.algorithm != node.algorithm:
            raise _ChainFail("claims misaligned")
        self.claims[id(node)] = claim
        if frontier is not None:
            self.frontiers.setdefault(id(node), frontier)
        self._keepalive.append(node)
        if node.is_enforcer or claim.enforcer:
            subs = [frontier] * len(node.inputs)
        elif claim.rule is None:
            raise _ChainFail("algorithm node without a rule claim")
        else:
            rule = self._impl_by_name.get(claim.rule)
            binding = (
                match_tree(rule.pattern, frontier)
                if rule is not None and frontier is not None
                else None
            )
            if binding is not None:
                subs = [binding.get(name) for name in rule.input_names]
            else:
                subs = [None] * len(node.inputs)
            if len(subs) != len(node.inputs):
                raise _ChainFail("rule arity")
        for child, sub in zip(node.inputs, subs):
            self._index(child, sub, claims, counter)

    def certify(
        self,
        report: SharingReport,
        originals: Sequence[PhysicalPlan],
        certificates: Sequence[Optional[PlanCertificate]],
    ) -> Tuple[List[Optional[PlanCertificate]], List[Optional[PlanCertificate]]]:
        """(consumer certificates, producer certificates) for a report."""
        scan_props = {
            plan.name: getattr(plan, "props", None) for plan in report.shared_plans
        }
        original_best: Dict[str, PhysicalPlan] = {}
        consumers: List[Optional[PlanCertificate]] = []
        for original, rewritten, certificate in zip(
            originals, report.plans, certificates
        ):
            if certificate is None:
                consumers.append(None)
                continue
            claims: List[NodeClaim] = []
            intermediates: Dict[str, LogicalExpression] = {}
            try:
                self._realign(
                    original, rewritten, claims, intermediates,
                    original_best, scan_props,
                )
            except (_ChainFail, KeyError):
                consumers.append(None)
                continue
            consumers.append(
                dataclasses.replace(
                    certificate,
                    claims=tuple(claims),
                    claimed_cost=rewritten.cost,
                    intermediates=dict(intermediates),
                )
            )
        producers: List[Optional[PlanCertificate]] = []
        mat_def = self.spec.algorithms.get(MATERIALIZE)
        for shared in report.shared_plans:
            best_original = original_best.get(shared.name)
            props = scan_props.get(shared.name)
            best_rewritten = shared.plan.inputs[0] if shared.plan.inputs else None
            source = (
                self.frontiers.get(id(best_original))
                if best_original is not None
                else None
            )
            if (
                best_original is None
                or best_rewritten is None
                or props is None
                or source is None
                or mat_def is None
            ):
                producers.append(None)
                continue
            local = mat_def.cost(
                self.context, AlgorithmNode(shared.plan.args, props, (props,))
            )
            claims = [
                NodeClaim(
                    algorithm=MATERIALIZE,
                    local=local,
                    output=props,
                    inputs=(props,),
                )
            ]
            intermediates = {}
            try:
                self._realign(
                    best_original, best_rewritten, claims, intermediates,
                    original_best, scan_props,
                )
            except (_ChainFail, KeyError):
                producers.append(None)
                continue
            producers.append(
                PlanCertificate(
                    kind=KIND_PRODUCER,
                    source=source,
                    required=self.spec.any_props,
                    frontier=source,
                    steps=(),
                    claims=tuple(claims),
                    claimed_cost=shared.plan.cost,
                    intermediates=dict(intermediates),
                    engine="sharing",
                )
            )
        return consumers, producers

    def _realign(
        self, original, rewritten, out, intermediates, original_best, scan_props
    ) -> None:
        """Parallel walk original ↔ rewritten, emitting pre-order claims."""
        if rewritten is original:
            for node in rewritten.walk():
                claim = self.claims.get(id(node))
                if claim is None:
                    raise _ChainFail("untracked original node")
                out.append(claim)
            return
        if (
            rewritten.algorithm == SCAN_INTERMEDIATE
            and original.algorithm != SCAN_INTERMEDIATE
            and rewritten.args
            and rewritten.args[0] in scan_props
        ):
            name = rewritten.args[0]
            frontier = self.frontiers.get(id(original))
            props = scan_props.get(name)
            if frontier is None or props is None:
                raise _ChainFail("scan without a producer frontier")
            intermediates[name] = frontier
            original_best.setdefault(name, original)
            claim = NodeClaim(
                algorithm=SCAN_INTERMEDIATE,
                local=rewritten.cost,
                output=props,
                inputs=(),
            )
            out.append(claim)
            self.claims.setdefault(id(rewritten), claim)
            self.frontiers.setdefault(id(rewritten), frontier)
            self._keepalive.append(rewritten)
            return
        claim = self.claims.get(id(rewritten))
        if claim is None:
            claim = self.claims.get(id(original))
        if (
            claim is None
            or rewritten.algorithm != original.algorithm
            or len(rewritten.inputs) != len(original.inputs)
        ):
            raise _ChainFail("rewritten node does not mirror its original")
        out.append(claim)
        self.claims.setdefault(id(rewritten), claim)
        frontier = self.frontiers.get(id(original))
        if frontier is not None:
            self.frontiers.setdefault(id(rewritten), frontier)
        self._keepalive.append(rewritten)
        for child_original, child_rewritten in zip(
            original.inputs, rewritten.inputs
        ):
            self._realign(
                child_original, child_rewritten, out, intermediates,
                original_best, scan_props,
            )


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def certify_result(
    result,
    spec: ModelSpecification,
    source: LogicalExpression,
    *,
    catalog=None,
    estimator=None,
    claims: Optional[Mapping[int, object]] = None,
    engine: str = "",
) -> PlanCertificate:
    """Certificate for any engine's :class:`OptimizationResult`.

    Memo-carrying results are certified against their own memo (using
    engine-recorded claims when given); memo-less results (EXODUS,
    System R) go through :func:`standalone_certificate`, which explores
    a fresh closure memo over the source to reconstruct provenance.
    """
    memo = getattr(result, "memo", None)
    engine = engine or type(result).__name__.replace("Result", "")
    if memo is not None:
        builder = CertificateBuilder(spec, memo, claims)
        return builder.certify(
            source,
            result.plan,
            result.required,
            degraded=bool(getattr(result, "degraded", False)),
            engine=engine,
        )
    if catalog is None:
        raise SearchError("certifying a memo-less result needs a catalog")
    return standalone_certificate(
        spec,
        catalog,
        source,
        result.plan,
        result.required,
        estimator=estimator,
        degraded=bool(getattr(result, "degraded", False)),
        engine=engine,
    )


def standalone_certificate(
    spec: ModelSpecification,
    catalog,
    source: LogicalExpression,
    plan: PhysicalPlan,
    required: PhysProps,
    *,
    estimator=None,
    degraded: bool = False,
    engine: str = "",
) -> PlanCertificate:
    """Certify a plan with no memo: build a fresh logical closure first.

    Used for engines that do not expose a memo (the EXODUS and System R
    baselines).  Rule attribution and cost terms are synthesized from
    the closure memo, so the certificate is exactly as strong as the
    claim that the plan's choices are re-derivable from the model.
    """
    # Imported here: this module must not depend on the engine at import
    # time (the engine imports ClaimRecord from us).
    from repro.model.context import OptimizerContext
    from repro.options import BudgetMeter
    from repro.search.engine import VolcanoOptimizer, _SearchRun
    from repro.search.tracing import SearchStats, Tracer

    explorer = VolcanoOptimizer(spec, catalog, estimator=estimator)
    context = OptimizerContext(spec, catalog, estimator)
    stats = SearchStats()
    memo = Memo(context, stats=stats)
    context.group_props_resolver = memo.logical_props
    run = _SearchRun(
        explorer.options, memo, context, stats, Tracer(enabled=False),
        BudgetMeter(None),
    )
    root = memo.insert_expression(source)
    explorer._explore_closure(run, root)
    builder = CertificateBuilder(spec, memo, claims=None)
    return builder.certify(
        source, plan, required, degraded=degraded, engine=engine
    )
