"""Multi-query sharing over a batch-scoped memo (Volcano-SH/RU style).

After :meth:`VolcanoOptimizer.optimize_batch` has optimized every query
of a batch against one shared memo, hash-consing has already made the
cross-query common subexpressions collide structurally — and because
``FindBestPlan`` memoizes :class:`~repro.search.memo.Winner` objects per
(group, goal), a subplan shared by several winning plans is literally
the *same* :class:`~repro.algebra.plans.PhysicalPlan` object in all of
them.  :func:`plan_sharing` exploits that: it detects subplans that
occur at least twice across the batch (by object identity), costs
materializing each candidate once against re-deriving it at every
occurrence, and greedily rewrites the winners to read the materialized
intermediate — the monotone greedy heuristic of Roy et al., *Efficient
and Extensible Algorithms for Multi Query Optimization* (Volcano-SH /
Volcano-RU).

The benefit of materializing a candidate ``S`` with ``N`` occurrences::

    benefit(S) = N * cost(S) - (cost(S) + mat(S) + N * scan(S))

i.e. what the batch pays today minus computing ``S`` once, writing it
out, and reading it back ``N`` times.  ``mat`` and ``scan`` come from
the model's own ``materialize`` / ``scan_intermediate`` algorithm
definitions, so the trade-off is priced in the same currency as every
other plan.  The greedy loop only ever accepts candidates with benefit
strictly above ``min_benefit``, so the shared plan set is provably never
more expensive than the independent plans it replaces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.properties import LogicalProperties
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.errors import OptionsError, ReproError
from repro.model.context import OptimizerContext
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.options import OptionsBase, check_positive

__all__ = [
    "SharingOptions",
    "SharedPlan",
    "SharingReport",
    "plan_sharing",
]

MATERIALIZE = "materialize"
SCAN_INTERMEDIATE = "scan_intermediate"


@dataclass(frozen=True, kw_only=True)
class SharingOptions(OptionsBase):
    """Knobs of the multi-query sharing pass.

    ``enabled``
        Master switch: when off, ``optimize_many`` optimizes every cache
        miss in its own per-query memo exactly as before.
    ``min_benefit``
        A candidate is materialized only when its estimated benefit is
        *strictly* greater than this (in cost-model units).  Zero — the
        default — already guarantees the shared plan set is never more
        expensive than the independent plans.
    ``max_materializations``
        Upper bound on materialized intermediates per batch; the greedy
        loop stops early when no candidate clears ``min_benefit``.
    """

    enabled: bool = True
    min_benefit: float = 0.0
    max_materializations: int = 4

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("max_materializations", self.max_materializations)
        if self.min_benefit < 0:
            raise OptionsError(
                f"min_benefit must be non-negative, got {self.min_benefit!r}"
            )


@dataclass(frozen=True)
class SharedPlan:
    """One materialized intermediate: produce once, scan ``consumers`` times.

    ``plan`` is the producer — a ``materialize`` node over the shared
    subplan — executable by :func:`repro.executor.execute_plan` with a
    shared ``intermediates`` store.  ``cost`` is its cumulative cost
    (compute the subplan + write it out); ``rows`` the estimated
    cardinality of the intermediate.  ``props`` are the mirror-derived
    logical properties the materialize/scan costs were priced over —
    recorded so the certificate layer can reproduce those costs exactly.
    """

    name: str
    plan: PhysicalPlan
    cost: object
    rows: float
    consumers: int
    props: Optional[LogicalProperties] = None


@dataclass(frozen=True)
class SharingReport:
    """What the sharing pass did to one batch.

    ``plans`` are the rewritten per-query plans in input order (equal to
    the independent plans when nothing was shared); ``shared_plans`` the
    producers in dependency order — executing them front to back always
    materializes an intermediate before anything scans it.
    ``independent_total`` and ``shared_total`` are the summed estimated
    costs before and after sharing; the greedy loop guarantees
    ``shared_total <= independent_total``.
    """

    plans: Tuple[PhysicalPlan, ...]
    shared_plans: Tuple[SharedPlan, ...] = ()
    candidates_considered: int = 0
    independent_total: float = 0.0
    shared_total: float = 0.0

    @property
    def materialized(self) -> int:
        return len(self.shared_plans)

    @property
    def savings(self) -> float:
        return self.independent_total - self.shared_total

    def __str__(self) -> str:
        return (
            f"{self.materialized} shared of {self.candidates_considered} "
            f"candidates, total {self.independent_total:.1f} -> "
            f"{self.shared_total:.1f}"
        )


class _SharingState:
    """Bookkeeping of one :func:`plan_sharing` run.

    Everything is keyed by ``id(node)`` — object identity is what the
    memo's winner sharing gives us — so the state pins every node it has
    seen in ``keepalive`` to keep ids stable for the run's lifetime.
    """

    def __init__(
        self,
        context: OptimizerContext,
        local_costs: Optional[Dict[int, object]] = None,
    ):
        self.context = context
        self.keepalive: List[PhysicalPlan] = []
        self._mirrors: Dict[int, Optional[LogicalExpression]] = {}
        self._props: Dict[int, Optional[LogicalProperties]] = {}
        # id(node) → the engine's exact local cost.  When supplied (by
        # the certificate layer), rebuilt cumulative costs re-add from
        # the very objects the engine summed, so certificates stay
        # exactly reproducible; without it the subtraction fallback in
        # :func:`_local_cost` is used (identical totals, possible
        # last-ulp float drift in the decomposition).
        self.local_costs: Dict[int, object] = (
            dict(local_costs) if local_costs else {}
        )

    def _mirror(self, node: PhysicalPlan) -> Optional[LogicalExpression]:
        """The node's logical mirror (identity-memoized)."""
        key = id(node)
        if key in self._mirrors:
            return self._mirrors[key]
        # Imported lazily: repro.feedback pulls in workload helpers that
        # must not load during repro.search package initialization.
        from repro.feedback.estimates import node_mirror

        inputs = tuple(self._mirror(child) for child in node.inputs)
        mirror = node_mirror(node, inputs)
        self._mirrors[key] = mirror
        self.keepalive.append(node)
        return mirror

    def props_of(self, node: PhysicalPlan) -> Optional[LogicalProperties]:
        """Logical properties of a plan node, via its logical mirror.

        Derivation goes through the model's own property functions —
        the same numbers the cost model consumed during the search.
        """
        key = id(node)
        if key in self._props:
            return self._props[key]
        mirror = self._mirror(node)
        props: Optional[LogicalProperties] = None
        if mirror is not None:
            try:
                props = self.context.logical_props(mirror)
            except (ReproError, KeyError):
                props = None
        self._props[key] = props
        return props

    def inherit(self, old: PhysicalPlan, new: PhysicalPlan) -> None:
        """A rewritten node computes the same rows as its original."""
        self._props[id(new)] = self.props_of(old)
        self.keepalive.append(new)


def _local_cost(state: _SharingState, node: PhysicalPlan) -> Optional[object]:
    """The node's own cost: recorded exactly, else by subtraction."""
    recorded = state.local_costs.get(id(node))
    if recorded is not None:
        return recorded
    cost = node.cost
    if cost is None:
        return None
    for child in node.inputs:
        if child.cost is None:
            return None
        cost = cost - child.cost
    return cost


def _rebuild(
    state: _SharingState,
    node: PhysicalPlan,
    new_inputs: Tuple[PhysicalPlan, ...],
) -> PhysicalPlan:
    """Replace a node's inputs, recomputing its cumulative cost."""
    local = _local_cost(state, node)
    cost = local
    if cost is not None:
        for child in new_inputs:
            if child.cost is None:
                cost = None
                break
            cost = cost + child.cost
    rebuilt = dataclasses.replace(node, inputs=new_inputs, cost=cost)
    if local is not None:
        state.local_costs[id(rebuilt)] = local
    state.inherit(node, rebuilt)
    return rebuilt


def _rewrite(
    state: _SharingState,
    node: PhysicalPlan,
    cache: Dict[int, PhysicalPlan],
) -> PhysicalPlan:
    """Apply one round's replacement map, preserving object identity.

    The cache is shared across *all* plans of the round, so a subtree
    shared by several consumers rewrites to one shared object — which
    keeps later rounds able to detect (and materialize) it again.
    """
    hit = cache.get(id(node))
    if hit is not None:
        return hit
    new_inputs = tuple(_rewrite(state, child, cache) for child in node.inputs)
    if all(new is old for new, old in zip(new_inputs, node.inputs)):
        cache[id(node)] = node
        return node
    rebuilt = _rebuild(state, node, new_inputs)
    cache[id(node)] = rebuilt
    return rebuilt


def _count_occurrences(
    working: Sequence[PhysicalPlan],
) -> Tuple[Dict[int, int], Dict[int, PhysicalPlan]]:
    """Occurrences of every interior subplan across the working set.

    Counted by object identity with a plain tree walk, so a subplan the
    memo shared between two queries (or twice within one plan) counts
    once per occurrence.  Leaves are skipped: materializing a base-table
    scan just trades one scan for an equivalent one plus a write.
    """
    counts: Dict[int, int] = {}
    nodes: Dict[int, PhysicalPlan] = {}
    for plan in working:
        stack = [plan]
        while stack:
            node = stack.pop()
            stack.extend(node.inputs)
            if not node.inputs or node.cost is None:
                continue
            key = id(node)
            counts[key] = counts.get(key, 0) + 1
            nodes.setdefault(key, node)
    return counts, nodes


def _dependency_order(shared: Sequence[SharedPlan]) -> Tuple[SharedPlan, ...]:
    """Producers ordered so every scanned intermediate is produced first.

    A later greedy round can materialize a subplan *inside* an earlier
    producer's feed, making the earlier producer depend on the later
    one; a topological sort over scan references restores an executable
    front-to-back order.  The dependency graph is acyclic by
    construction (a shared subplan is a strict subtree of any producer
    that scans it).
    """
    by_name = {plan.name: plan for plan in shared}
    ordered: List[SharedPlan] = []
    done: set = set()
    visiting: set = set()

    def visit(item: SharedPlan) -> None:
        if item.name in done:
            return
        if item.name in visiting:  # pragma: no cover - acyclic by construction
            raise ReproError(f"cyclic materialization {item.name!r}")
        visiting.add(item.name)
        for node in item.plan.walk():
            if node.algorithm == SCAN_INTERMEDIATE and node.args[0] in by_name:
                visit(by_name[node.args[0]])
        visiting.discard(item.name)
        done.add(item.name)
        ordered.append(item)

    for item in shared:
        visit(item)
    return tuple(ordered)


def plan_sharing(
    results: Sequence,
    spec: ModelSpecification,
    catalog: Catalog,
    options: Optional[SharingOptions] = None,
    estimator: Optional[SelectivityEstimator] = None,
    local_costs: Optional[Dict[int, object]] = None,
) -> SharingReport:
    """Greedy multi-query sharing over a batch's winning plans.

    ``results`` are the :class:`~repro.search.engine.OptimizationResult`
    objects of one :meth:`VolcanoOptimizer.optimize_batch` call — their
    plans must come from one shared memo for identity-based detection to
    see anything.  Returns a :class:`SharingReport`; when nothing is
    shareable (or sharing is disabled, or the model declares no
    ``materialize``/``scan_intermediate`` algorithms) the report simply
    echoes the independent plans.

    ``local_costs`` (optional, ``id(node)`` → cost) supplies the exact
    per-node local costs the engine summed — the certificate layer
    passes :attr:`repro.search.certify.SharingCertifier.local_costs`
    here so rewritten plans' costs re-add from the original objects.
    """
    options = options if options is not None else SharingOptions()
    plans = tuple(result.plan for result in results)
    independent_total = sum(
        result.cost.total() for result in results if result.cost is not None
    )
    report = SharingReport(
        plans=plans,
        independent_total=independent_total,
        shared_total=independent_total,
    )
    if not options.enabled or len(plans) < 2:
        return report
    if MATERIALIZE not in spec.algorithms or SCAN_INTERMEDIATE not in spec.algorithms:
        return report
    memo = getattr(results[0], "memo", None)
    if memo is None or any(
        getattr(result, "memo", None) is not memo for result in results[1:]
    ):
        return report

    context = OptimizerContext(spec, catalog, estimator)
    state = _SharingState(context, local_costs)
    mat_def = spec.algorithm(MATERIALIZE)
    scan_def = spec.algorithm(SCAN_INTERMEDIATE)

    working: List[PhysicalPlan] = list(plans)
    shared: List[SharedPlan] = []
    candidates_considered = 0

    while len(shared) < options.max_materializations:
        counts, nodes = _count_occurrences(working)
        best: Optional[PhysicalPlan] = None
        best_benefit = options.min_benefit
        best_count = 0
        for key, node in nodes.items():
            occurrences = counts[key]
            if occurrences < 2:
                continue
            props = state.props_of(node)
            if props is None:
                continue
            candidates_considered += 1
            mat_local = mat_def.cost(
                context, AlgorithmNode((), props, (props,))
            ).total()
            scan_local = scan_def.cost(
                context, AlgorithmNode((), props, ())
            ).total()
            cost_s = node.cost.total()
            benefit = occurrences * cost_s - (
                cost_s + mat_local + occurrences * scan_local
            )
            # Strictly-better wins; ties keep the first (deterministic
            # walk order), so the pass is reproducible run to run.
            if benefit > best_benefit:
                best, best_benefit, best_count = node, benefit, occurrences
        if best is None:
            break

        props = state.props_of(best)
        assert props is not None  # filtered above
        name = f"__mqo_{len(shared)}"
        columns = tuple(props.schema.column_names)
        row_width = max(1, props.schema.row_width)
        mat_cost = mat_def.cost(
            context, AlgorithmNode((name, row_width), props, (props,))
        )
        scan_cost = scan_def.cost(
            context, AlgorithmNode((name, columns, row_width), props, ())
        )
        producer = PhysicalPlan(
            MATERIALIZE,
            (name, row_width),
            (best,),
            properties=best.properties,
            cost=None if best.cost is None else best.cost + mat_cost,
        )
        scan_node = PhysicalPlan(
            SCAN_INTERMEDIATE,
            (name, columns, row_width),
            (),
            properties=best.properties,
            cost=scan_cost,
        )
        state.inherit(best, producer)
        state.inherit(best, scan_node)
        state.local_costs[id(producer)] = mat_cost
        state.local_costs[id(scan_node)] = scan_cost

        cache: Dict[int, PhysicalPlan] = {id(best): scan_node}
        working = [_rewrite(state, plan, cache) for plan in working]
        working.append(producer)
        shared.append(
            SharedPlan(
                name=name,
                plan=producer,
                cost=producer.cost,
                rows=props.cardinality,
                consumers=best_count,
                props=props,
            )
        )
        # Earlier producers may have been rewritten this round (the new
        # intermediate can live inside their feeds) — refresh them.
        for index in range(len(shared) - 1):
            refreshed = working[len(plans) + index]
            if refreshed is not shared[index].plan:
                shared[index] = dataclasses.replace(
                    shared[index], plan=refreshed, cost=refreshed.cost
                )

    shared_total = sum(
        plan.cost.total() for plan in working if plan.cost is not None
    )
    return SharingReport(
        plans=tuple(working[: len(plans)]),
        shared_plans=_dependency_order(shared),
        candidates_considered=candidates_considered,
        independent_total=independent_total,
        shared_total=shared_total,
    )
