"""Estimated-vs-observed cardinality reports with q-error telemetry.

A :class:`FeedbackReport` joins the optimizer's believed cardinality for
every plan node (:func:`repro.feedback.estimates.estimate_rows`) with
the row counts the instrumented executor actually observed
(:attr:`ExecutionStats.node_rows`), and grades each join point with the
standard **q-error**: ``max(est / act, act / est)``, the factor by which
the estimate missed in either direction.  Q-error is the established
metric for cardinality estimation quality because plan cost is roughly
multiplicative in intermediate cardinalities — an estimate off by 10x
in either direction misleads the search equally badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import Predicate
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.executor.runtime import ExecutionStats
from repro.feedback.estimates import estimate_rows, mirror_expressions
from repro.model.spec import ModelSpecification

__all__ = ["q_error", "OperatorFeedback", "FeedbackReport", "observed_report"]


def q_error(estimated: float, actual: float) -> float:
    """``max(est / act, act / est)`` with both sides floored at one row.

    The floor guards the zero cases: an empty observed result (or a
    zero estimate) would otherwise divide by zero, yet "estimated 50,
    saw 0" should grade like "estimated 50, saw 1" — a 50x miss — not
    infinity.  Perfect estimates (and sub-row noise) grade 1.0.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


@dataclass(frozen=True)
class OperatorFeedback:
    """One plan operator's estimate joined with its observation.

    ``actual_rows`` is None when the node was never closed (or the run
    was not instrumented); ``estimated_rows`` is None when the node has
    no logical mirror.  ``q_error`` is defined only when both sides are
    present.  For scan operators, ``scanned_rows`` counts rows read
    from the stored table (pre-filter) and ``scan_complete`` tells
    whether the scan exhausted the table — only then is ``scanned_rows``
    an observation of the table's true cardinality.
    """

    node_id: int
    algorithm: str
    is_enforcer: bool
    table: Optional[str]
    alias: Optional[str]
    predicate: Optional[Predicate]
    estimated_rows: Optional[float]
    actual_rows: Optional[int]
    scanned_rows: Optional[int] = None
    scan_complete: bool = False

    @property
    def q_error(self) -> Optional[float]:
        """This operator's q-error, or None when either side is missing."""
        if self.estimated_rows is None or self.actual_rows is None:
            return None
        return q_error(self.estimated_rows, self.actual_rows)


_SCAN_ARGS = {
    "file_scan": lambda args: (args[0], args[1], None),
    "filter_scan": lambda args: (args[0], args[1], args[2]),
}


def _node_details(node: PhysicalPlan, mirror: Optional[LogicalExpression]):
    """``(table, alias, predicate)`` for a plan node, best effort.

    Scans name their table directly.  Any other operator is attributed
    to a table only when its logical mirror touches exactly one base
    table — a filter above a single scan, say — because feedback
    aggregated per (table, predicate) is meaningless for multi-table
    operators.
    """
    extract = _SCAN_ARGS.get(node.algorithm)
    if extract is not None:
        return extract(node.args)
    predicate = None
    if node.algorithm == "filter":
        (predicate,) = node.args
    table = alias = None
    if mirror is not None:
        gets = [expr for expr in mirror.walk() if expr.operator == "get"]
        if len(gets) == 1:
            table, alias = gets[0].args
    return table, alias, predicate


@dataclass(frozen=True)
class FeedbackReport:
    """Per-operator feedback for one executed plan.

    The plan-level ``max_q_error`` is the report's headline number: the
    worst per-operator miss, the quantity drift policies threshold on.
    """

    plan: PhysicalPlan
    operators: Tuple[OperatorFeedback, ...]
    degraded: bool = False

    @property
    def max_q_error(self) -> float:
        """Worst per-operator q-error; 1.0 when nothing is comparable."""
        errors = [op.q_error for op in self.operators if op.q_error is not None]
        return max(errors) if errors else 1.0

    @property
    def observed_operators(self) -> int:
        """How many operators have both an estimate and an observation."""
        return sum(1 for op in self.operators if op.q_error is not None)

    def operator(self, node_id: int) -> OperatorFeedback:
        """The feedback entry for the node with ``node_id``."""
        for op in self.operators:
            if op.node_id == node_id:
                return op
        raise KeyError(node_id)

    def render(self) -> str:
        """A fixed-width est-vs-observed table, one line per operator."""
        lines = [
            f"{'id':>3}  {'operator':<20} {'est_rows':>10} {'act_rows':>10} "
            f"{'q_error':>8}"
        ]
        depths = _depths(self.plan)
        for op in self.operators:
            name = "  " * depths[op.node_id] + op.algorithm
            est = f"{op.estimated_rows:.0f}" if op.estimated_rows is not None else "-"
            act = str(op.actual_rows) if op.actual_rows is not None else "-"
            qerr = f"{op.q_error:.2f}" if op.q_error is not None else "-"
            lines.append(
                f"{op.node_id:>3}  {name:<20} {est:>10} {act:>10} {qerr:>8}"
            )
        lines.append(f"plan max q-error: {self.max_q_error:.2f}")
        return "\n".join(lines)


def _depths(plan: PhysicalPlan) -> Dict[int, int]:
    """Pre-order node id -> tree depth, for indented rendering."""
    depths: Dict[int, int] = {}
    counter = [0]

    def visit(node: PhysicalPlan, depth: int) -> None:
        depths[counter[0]] = depth
        counter[0] += 1
        for child in node.inputs:
            visit(child, depth + 1)

    visit(plan, 0)
    return depths


def observed_report(
    plan: PhysicalPlan,
    stats: ExecutionStats,
    catalog: Catalog,
    spec: ModelSpecification,
    estimator: Optional[SelectivityEstimator] = None,
    *,
    degraded: bool = False,
) -> FeedbackReport:
    """Join ``plan``'s estimates with an instrumented run's counters.

    ``stats`` must come from an ``instrument=True`` execution of this
    exact plan — node ids are pre-order positions, so estimate and
    observation line up positionally.  ``degraded`` marks reports from
    plans produced under resource pressure; stores keep their q-error
    telemetry but never let them trigger statistics refresh.
    """
    estimates = estimate_rows(plan, catalog, spec, estimator)
    mirrors = mirror_expressions(plan)
    operators: List[OperatorFeedback] = []
    for node_id, node in enumerate(plan.walk()):
        table, alias, predicate = _node_details(node, mirrors.get(node_id))
        operators.append(
            OperatorFeedback(
                node_id=node_id,
                algorithm=node.algorithm,
                is_enforcer=node.is_enforcer,
                table=table,
                alias=alias,
                predicate=predicate,
                estimated_rows=estimates.get(node_id),
                actual_rows=stats.node_rows.get(node_id),
                scanned_rows=stats.node_scan_rows.get(node_id),
                scan_complete=stats.node_scan_complete.get(node_id, False),
            )
        )
    return FeedbackReport(plan=plan, operators=tuple(operators), degraded=degraded)
