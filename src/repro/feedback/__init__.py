"""Execution feedback: observed cardinalities, q-error, adaptive refresh.

The missing half of the optimize–execute loop.  The optimizer's cost
model runs on catalog statistics that go stale as data changes; this
package measures how stale.  An instrumented execution counts each
operator's actual output rows (:mod:`repro.executor`), a
:class:`FeedbackReport` joins those observations against the estimates
the optimizer derived for the same subexpressions, a
:class:`FeedbackStore` aggregates the q-errors per table and predicate
bucket, and :func:`refresh_statistics` rewrites drifted tables'
statistics through the catalog's versioned API — which invalidates
exactly the affected plan-cache entries and lets the service
transparently re-optimize.

Everything is observation-only by default: uninstrumented executions
and unchanged statistics leave plans byte-identical.
"""

from repro.feedback.driftlab import DriftScenario, drifted_workload
from repro.feedback.estimates import (
    estimate_rows,
    mirror_expressions,
    register_mirror,
)
from repro.feedback.refresh import (
    FeedbackPolicy,
    RefreshResult,
    analyze_rows,
    refresh_statistics,
)
from repro.feedback.report import (
    FeedbackReport,
    OperatorFeedback,
    observed_report,
    q_error,
)
from repro.feedback.store import BucketFeedback, FeedbackStore, TableFeedback

__all__ = [
    "BucketFeedback",
    "DriftScenario",
    "FeedbackPolicy",
    "drifted_workload",
    "FeedbackReport",
    "FeedbackStore",
    "OperatorFeedback",
    "RefreshResult",
    "TableFeedback",
    "analyze_rows",
    "estimate_rows",
    "mirror_expressions",
    "observed_report",
    "q_error",
    "refresh_statistics",
    "register_mirror",
]
