"""Per-operator cardinality estimates for physical plans.

The feedback loop compares what the optimizer *believed* about each
operator against what the executor *observed*.  The believed side is
reconstructed here: every physical algorithm of the bundled models maps
back to the logical (sub)expression it implements — its **logical
mirror** — and that mirror's cardinality is derived with the model's own
logical property functions (:meth:`OptimizerContext.logical_props`), so
the estimates are exactly the numbers the cost model consumed during the
search, not a reimplementation that could drift from it.

Enforcers (sort, exchange) perform no logical data manipulation (paper
Section 2.2), so their mirror is their input's mirror.  Algorithms of
models without an executor mapping yield no mirror and no estimate;
:func:`register_mirror` extends the table alongside
:meth:`PlanCompiler.register`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.catalog.catalog import Catalog
from repro.catalog.selectivity import SelectivityEstimator
from repro.errors import ReproError
from repro.model.context import OptimizerContext
from repro.model.spec import ModelSpecification

__all__ = [
    "register_mirror",
    "has_mirror",
    "node_mirror",
    "mirror_expressions",
    "estimate_rows",
]

MirrorBuilder = Callable[
    [PhysicalPlan, Tuple[Optional[LogicalExpression], ...]],
    Optional[LogicalExpression],
]


def _mirror_scan(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    table, alias = plan.args
    return LogicalExpression("get", (table, alias))


def _mirror_filter(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    if inputs[0] is None:
        return None
    return LogicalExpression("select", (plan.args[0],), (inputs[0],))


def _mirror_filter_scan(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    table, alias, predicate = plan.args
    scan = LogicalExpression("get", (table, alias))
    return LogicalExpression("select", (predicate,), (scan,))


def _mirror_project(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    if inputs[0] is None:
        return None
    return LogicalExpression("project", (tuple(plan.args[0]),), (inputs[0],))


def _mirror_join(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    if inputs[0] is None or inputs[1] is None:
        return None
    return LogicalExpression("join", (plan.args[0],), (inputs[0], inputs[1]))


def _mirror_aggregate(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    if inputs[0] is None:
        return None
    group_by, aggregates = plan.args
    return LogicalExpression(
        "aggregate",
        (tuple(group_by), tuple(tuple(item) for item in aggregates)),
        (inputs[0],),
    )


def _mirror_passthrough(plan: PhysicalPlan, inputs) -> Optional[LogicalExpression]:
    return inputs[0] if inputs else None


_MIRRORS: Dict[str, Optional[MirrorBuilder]] = {
    "file_scan": _mirror_scan,
    "filter": _mirror_filter,
    "filter_scan": _mirror_filter_scan,
    "project": _mirror_project,
    "merge_join": _mirror_join,
    "hybrid_hash_join": _mirror_join,
    "nested_loops_join": _mirror_join,
    "hash_aggregate": _mirror_aggregate,
    "stream_aggregate": _mirror_aggregate,
    # Enforcers reorganize, never create or drop rows.
    "sort": _mirror_passthrough,
    "exchange": _mirror_passthrough,
    # Materialization (multi-query sharing) writes its input out
    # verbatim; its estimate is its feed's estimate.  A scan of a
    # materialized intermediate has no self-contained logical mirror —
    # its rows belong to another plan's feedback — so it is registered
    # as deliberately mirrorless (None) rather than left unmapped.
    "materialize": _mirror_passthrough,
    "scan_intermediate": None,
}


def register_mirror(algorithm: str, builder: Optional[MirrorBuilder]) -> None:
    """Map ``algorithm`` back to the logical expression it implements.

    ``builder`` receives the plan node and its inputs' mirrors (None
    where an input has no mirror) and returns the node's mirror, or
    None when it cannot be expressed.  The executor-side counterpart of
    :meth:`PlanCompiler.register`.

    Passing ``builder=None`` registers the algorithm as *deliberately*
    mirrorless: it yields no estimate, but the static checker's V502
    (utility algorithm without a feedback mirror) treats the explicit
    registration as a decision, not an omission.
    """
    _MIRRORS[algorithm] = builder


def has_mirror(algorithm: str) -> bool:
    """Whether ``algorithm`` has a mirror registration (even ``None``).

    The V502 lint probe: an algorithm absent from the table was likely
    forgotten when the model gained a utility algorithm; one present —
    with a builder or an explicit None — was accounted for.
    """
    return algorithm in _MIRRORS


def node_mirror(
    plan: PhysicalPlan,
    inputs: Tuple[Optional[LogicalExpression], ...],
) -> Optional[LogicalExpression]:
    """One node's logical mirror, given its inputs' mirrors.

    The single-node step of :func:`mirror_expressions`, exposed for
    callers (e.g. the multi-query sharing pass) that walk plan DAGs with
    their own identity-aware memoization.
    """
    builder = _MIRRORS.get(plan.algorithm)
    if builder is None and plan.is_enforcer:
        builder = _mirror_passthrough
    return builder(plan, inputs) if builder is not None else None


def mirror_expressions(
    plan: PhysicalPlan,
) -> Dict[int, Optional[LogicalExpression]]:
    """The logical mirror of every plan node, keyed by stable node id.

    Node ids are pre-order positions — the same ids the instrumented
    executor uses for its per-node counters, so the two maps join
    directly.  Enforcer nodes share their input's mirror; nodes of
    unmapped algorithms (and every node above them) map to None.
    """
    mirrors: Dict[int, Optional[LogicalExpression]] = {}
    counter = [0]

    def visit(node: PhysicalPlan) -> Optional[LogicalExpression]:
        node_id = counter[0]
        counter[0] += 1
        inputs = tuple(visit(child) for child in node.inputs)
        mirror = node_mirror(node, inputs)
        mirrors[node_id] = mirror
        return mirror

    visit(plan)
    return mirrors


def estimate_rows(
    plan: PhysicalPlan,
    catalog: Catalog,
    spec: ModelSpecification,
    estimator: Optional[SelectivityEstimator] = None,
) -> Dict[int, Optional[float]]:
    """Estimated output cardinality of every plan node, by node id.

    Derivation goes through the model's own property functions, so the
    numbers agree with what the optimizer estimated during the search.
    Nodes without a logical mirror — or whose mirror the model cannot
    derive properties for — estimate to None.
    """
    context = OptimizerContext(spec, catalog, estimator)
    estimates: Dict[int, Optional[float]] = {}
    for node_id, mirror in mirror_expressions(plan).items():
        if mirror is None:
            estimates[node_id] = None
            continue
        try:
            estimates[node_id] = context.logical_props(mirror).cardinality
        except (ReproError, KeyError):
            estimates[node_id] = None
    return estimates
