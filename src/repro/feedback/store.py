"""Aggregated execution feedback, keyed the way the plan cache thinks.

The :class:`FeedbackStore` accumulates :class:`FeedbackReport`s across
queries and distills them into the two signals the adaptive loop needs:

* **per-table drift** — the worst q-error seen for operators attributed
  to each table, plus the table's last observed true cardinality (from
  scans that ran to exhaustion).  :meth:`drifted_tables` thresholds
  these against a policy to decide which tables' statistics are stale.
* **per (table, predicate-bucket) selectivities** — observed
  selectivities aggregated under the same bucketing scheme the plan
  cache uses for parameterized queries
  (:func:`repro.sql.normalize.selectivity_bucket`), so telemetry lines
  up with cache-entry granularity.

Reports from degraded plans (produced under resource pressure) count
toward telemetry but are quarantined from the drift signals: a plan the
optimizer knowingly cut short must never trigger a statistics rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.feedback.report import FeedbackReport, OperatorFeedback
from repro.sql.normalize import selectivity_bucket

__all__ = ["TableFeedback", "BucketFeedback", "FeedbackStore"]

BucketKey = Tuple[Tuple[str, str], ...]


@dataclass
class TableFeedback:
    """Accumulated drift evidence for one table."""

    observations: int = 0
    max_q_error: float = 1.0
    observed_rows: Optional[int] = None
    row_observations: int = 0


@dataclass
class BucketFeedback:
    """Observed selectivities for one (table, predicate-bucket) key."""

    observations: int = 0
    total_selectivity: float = 0.0
    max_q_error: float = 1.0

    @property
    def mean_selectivity(self) -> float:
        return self.total_selectivity / self.observations if self.observations else 0.0


_HISTOGRAM_EDGES: Tuple[Tuple[str, float], ...] = (
    ("<=1.5", 1.5),
    ("<=2", 2.0),
    ("<=4", 4.0),
    ("<=10", 10.0),
)


class FeedbackStore:
    """Accumulates feedback reports; the memory of the adaptive loop."""

    def __init__(self, buckets: int = 10):
        self.buckets = buckets
        self.reports = 0
        self.degraded_reports = 0
        self._tables: Dict[str, TableFeedback] = {}
        self._predicates: Dict[Tuple[str, BucketKey, int], BucketFeedback] = {}
        self._histogram: Dict[str, int] = {label: 0 for label, _ in _HISTOGRAM_EDGES}
        self._histogram[">10"] = 0

    # -- recording --------------------------------------------------------

    def record(self, report: FeedbackReport) -> None:
        """Fold one executed plan's report into the aggregates."""
        self.reports += 1
        if report.degraded:
            self.degraded_reports += 1
        for op in report.operators:
            error = op.q_error
            if error is not None:
                self._count_histogram(error)
            if op.table is None:
                continue
            table = self._tables.setdefault(op.table, TableFeedback())
            if report.degraded:
                continue
            if error is not None:
                table.observations += 1
                table.max_q_error = max(table.max_q_error, error)
            if op.scan_complete and op.scanned_rows is not None:
                table.observed_rows = op.scanned_rows
                table.row_observations += 1
            self._record_predicate(report, op, error)

    def _record_predicate(
        self,
        report: FeedbackReport,
        op: OperatorFeedback,
        error: Optional[float],
    ) -> None:
        if op.predicate is None or op.actual_rows is None:
            return
        input_rows = op.scanned_rows
        if input_rows is None:
            input_rows = self._input_rows(report, op)
        if not input_rows:
            return
        shape: List[Tuple[str, str]] = []
        for conjunct in op.predicate.conjuncts():
            literal = getattr(conjunct, "column_literal", lambda: None)()
            if literal is None:
                return
            column, comparison_op, _ = literal
            shape.append((column, comparison_op.value))
        if not shape:
            return
        selectivity = min(1.0, op.actual_rows / input_rows)
        key = (
            op.table or "",
            tuple(sorted(shape)),
            selectivity_bucket(selectivity, self.buckets),
        )
        bucket = self._predicates.setdefault(key, BucketFeedback())
        bucket.observations += 1
        bucket.total_selectivity += selectivity
        if error is not None:
            bucket.max_q_error = max(bucket.max_q_error, error)

    @staticmethod
    def _input_rows(report: FeedbackReport, op: OperatorFeedback) -> Optional[int]:
        """A unary operator's input cardinality: its child's output rows.

        Node ids are pre-order positions, so a unary node's child is
        always ``node_id + 1``.
        """
        try:
            return report.operator(op.node_id + 1).actual_rows
        except KeyError:
            return None

    def _count_histogram(self, error: float) -> None:
        for label, edge in _HISTOGRAM_EDGES:
            if error <= edge:
                self._histogram[label] += 1
                return
        self._histogram[">10"] += 1

    # -- querying ---------------------------------------------------------

    def table_feedback(self, table: str) -> Optional[TableFeedback]:
        """The accumulated evidence for ``table``, or None when unseen."""
        return self._tables.get(table)

    def observed_row_count(self, table: str) -> Optional[int]:
        """The table's last observed true cardinality, if any scan saw it."""
        feedback = self._tables.get(table)
        return feedback.observed_rows if feedback is not None else None

    def max_q_error(self, table: Optional[str] = None) -> float:
        """Worst q-error for ``table`` (or across all tables)."""
        if table is not None:
            feedback = self._tables.get(table)
            return feedback.max_q_error if feedback is not None else 1.0
        if not self._tables:
            return 1.0
        return max(feedback.max_q_error for feedback in self._tables.values())

    def drifted_tables(self, policy) -> Tuple[str, ...]:
        """Tables whose estimates missed badly enough to act on.

        A table drifts when it has at least ``policy.min_observations``
        comparable observations and its worst q-error exceeds
        ``policy.max_q_error``.
        """
        return tuple(
            name
            for name, feedback in self._tables.items()
            if feedback.observations >= policy.min_observations
            and feedback.max_q_error > policy.max_q_error
        )

    def bucket_feedback(
        self,
    ) -> Dict[Tuple[str, BucketKey, int], BucketFeedback]:
        """The per (table, predicate-shape, bucket) aggregates."""
        return dict(self._predicates)

    def q_error_histogram(self) -> Dict[str, int]:
        """Per-operator q-errors binned for telemetry dashboards."""
        return dict(self._histogram)

    def clear_table(self, table: str) -> None:
        """Drop a table's accumulated evidence (after a refresh consumed it)."""
        self._tables.pop(table, None)
        for key in [key for key in self._predicates if key[0] == table]:
            del self._predicates[key]

    def render(self) -> str:
        """Human-readable telemetry summary."""
        lines = [
            f"feedback store: {self.reports} reports "
            f"({self.degraded_reports} degraded)"
        ]
        histogram = " ".join(
            f"{label}:{count}" for label, count in self._histogram.items()
        )
        lines.append(f"q-error histogram: {histogram}")
        for name in sorted(self._tables):
            feedback = self._tables[name]
            observed = (
                str(feedback.observed_rows)
                if feedback.observed_rows is not None
                else "-"
            )
            lines.append(
                f"  {name}: max q-error {feedback.max_q_error:.2f} over "
                f"{feedback.observations} observations, observed rows {observed}"
            )
        return "\n".join(lines)
