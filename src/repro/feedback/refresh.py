"""Adaptive statistics refresh driven by execution feedback.

:func:`refresh_statistics` closes the loop: tables whose accumulated
feedback shows drift beyond a :class:`FeedbackPolicy`'s q-error
threshold get fresh :class:`TableStatistics` written back through the
catalog's versioned mutation API (:meth:`Catalog.update_statistics`).
The version bump is the whole point — it invalidates exactly the cached
plans that read the refreshed table (the
:class:`~repro.service.OptimizerService` keys its cache on per-table
statistics versions), so re-optimization is surgical, never a cache
flush.

Two refresh sources, in preference order:

1. **ANALYZE** — when the catalog stores the table's rows, recompute
   row count, per-column distinct counts, and value ranges from the
   data itself (exact, and the only source consistent with the
   catalog's row-count validation).
2. **Observed cardinality** — otherwise, scale the existing statistics
   to the true row count a complete scan observed, growing distinct
   counts proportionally (capped at the row count) and keeping ranges.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import OptionsError
from repro.feedback.store import FeedbackStore
from repro.options import OptionsBase, check_positive

__all__ = [
    "FeedbackPolicy",
    "RefreshResult",
    "analyze_rows",
    "refresh_statistics",
]


@dataclasses.dataclass(frozen=True, kw_only=True)
class FeedbackPolicy(OptionsBase):
    """When observed drift is bad enough to rewrite statistics.

    ``max_q_error``
        Tolerated worst-case q-error; a table drifts when any of its
        operators' estimates missed by more than this factor.  2.0
        ("off by more than 2x either way") is a conventional default —
        below it, plan choices rarely change.
    ``min_observations``
        Comparable (estimate, observation) pairs required before the
        threshold may fire, guarding against acting on a single noisy
        query.
    ``analyze_rows``
        Whether to recompute statistics from stored rows when the
        catalog has them (exact), rather than only scaling to the
        observed cardinality.
    ``buckets``
        Selectivity-bucket count for the feedback store's per-predicate
        aggregation; matches the plan cache's bucketing.
    """

    max_q_error: float = 2.0
    min_observations: int = 1
    analyze_rows: bool = True
    buckets: int = 10

    def validate(self) -> None:
        """Check field invariants; raise :class:`OptionsError` on failure."""
        check_positive("min_observations", self.min_observations)
        check_positive("buckets", self.buckets)
        if self.max_q_error < 1.0:
            raise OptionsError(
                f"max_q_error must be >= 1.0 (1.0 means exact), "
                f"got {self.max_q_error!r}"
            )


@dataclass(frozen=True)
class RefreshResult:
    """What a refresh pass did.

    ``refreshed`` lists tables whose statistics were rewritten, with
    ``versions`` holding each one's (old, new) table version — the new
    version is what invalidates that table's cached plans.  ``skipped``
    lists tables that drifted past the policy but had no usable
    cardinality source (no stored rows and no complete-scan
    observation).
    """

    refreshed: Tuple[str, ...]
    versions: Dict[str, Tuple[int, int]]
    skipped: Tuple[str, ...] = ()

    @property
    def did_refresh(self) -> bool:
        return bool(self.refreshed)

    def __str__(self) -> str:
        if not self.refreshed and not self.skipped:
            return "refresh: no drifted tables"
        parts = [
            f"{name} v{old}->v{new}"
            for name, (old, new) in sorted(self.versions.items())
        ]
        line = "refreshed " + ", ".join(parts) if parts else "refreshed nothing"
        if self.skipped:
            line += f" (skipped: {', '.join(sorted(self.skipped))})"
        return line


def _column_range(values: List[object]):
    """(min, max) over the numeric values, or (None, None)."""
    numeric = [v for v in values if isinstance(v, (int, float))]
    if not numeric:
        return None, None
    return min(numeric), max(numeric)


def analyze_rows(entry: TableEntry) -> TableStatistics:
    """Exact statistics recomputed from a table's stored rows (ANALYZE).

    Keeps the entry's row width (a storage property, not a data one)
    and covers exactly the columns the existing statistics cover, so
    the rewritten statistics slot into every consumer unchanged.
    """
    rows = entry.rows or []
    columns: Dict[str, ColumnStatistics] = {}
    for name in entry.statistics.columns:
        values = [row[name] for row in rows if name in row]
        low, high = _column_range(values)
        columns[name] = ColumnStatistics(
            distinct_values=float(len(set(values))) if values else 0.0,
            min_value=low,
            max_value=high,
        )
    return TableStatistics(
        row_count=float(len(rows)),
        row_width=entry.statistics.row_width,
        columns=columns,
    )


def _scaled_statistics(
    entry: TableEntry, observed_rows: int
) -> TableStatistics:
    """Existing statistics rescaled to an observed true cardinality."""
    old = entry.statistics
    factor = observed_rows / old.row_count if old.row_count > 0 else 1.0
    columns = {
        name: ColumnStatistics(
            distinct_values=max(
                1.0,
                min(float(observed_rows), stats.distinct_values * max(1.0, factor)),
            )
            if observed_rows
            else 0.0,
            min_value=stats.min_value,
            max_value=stats.max_value,
        )
        for name, stats in old.columns.items()
    }
    return TableStatistics(
        row_count=float(observed_rows),
        row_width=old.row_width,
        columns=columns,
    )


def refresh_statistics(
    catalog: Catalog,
    store: FeedbackStore,
    *,
    policy: Optional[FeedbackPolicy] = None,
) -> RefreshResult:
    """Rewrite statistics for every table the store says has drifted.

    Mutations go through :meth:`Catalog.update_statistics`, so each
    refreshed table's version is bumped — exact invalidation for
    version-keyed plan caches; untouched tables keep their versions and
    their cached plans stay warm.  Consumed feedback is cleared for
    refreshed tables so one drift episode triggers one refresh.
    """
    policy = policy or FeedbackPolicy()
    refreshed: List[str] = []
    skipped: List[str] = []
    versions: Dict[str, Tuple[int, int]] = {}
    for name in store.drifted_tables(policy):
        if name not in catalog:
            skipped.append(name)
            continue
        entry = catalog.table(name)
        if policy.analyze_rows and entry.rows is not None:
            statistics = analyze_rows(entry)
        elif entry.rows is not None:
            # Rows are authoritative: the catalog validates row_count
            # against them, so an observed count may not disagree.
            statistics = _scaled_statistics(entry, len(entry.rows))
        else:
            observed = store.observed_row_count(name)
            if observed is None:
                skipped.append(name)
                continue
            statistics = _scaled_statistics(entry, observed)
        old_version = catalog.table_version(name)
        catalog.update_statistics(name, statistics)
        versions[name] = (old_version, catalog.table_version(name))
        refreshed.append(name)
        store.clear_table(name)
    return RefreshResult(
        refreshed=tuple(refreshed),
        versions=versions,
        skipped=tuple(skipped),
    )
