"""Synthetic drifted workloads for exercising the feedback loop.

The canonical demonstration scenario, shared by the regress bench
(``python -m repro.bench regress``), the end-to-end tests, and
``examples/feedback_loop.py``: a three-table join whose smallest table
quietly grows ~4x past its catalog statistics.  The stale statistics
make the optimizer schedule the grown table early (it believes the
table is small), producing an oversized intermediate; once feedback
refreshes the statistics, re-optimization pushes it later and the
measured execution work drops.

Everything is seeded and deterministic — the scenario's q-errors and
per-plan work counters are exact, so tests and the regress harness can
assert on them within tight bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.algebra.expressions import LogicalExpression
from repro.algebra.predicates import eq
from repro.catalog.catalog import Catalog
from repro.executor.data import TableSpec, generate_table
from repro.models.relational import get, join

__all__ = ["DriftScenario", "drifted_workload"]


@dataclass
class DriftScenario:
    """A catalog + query pair with one table primed to drift.

    :meth:`grow` performs the drift: it appends rows to the drifting
    table *without* touching its statistics or version — exactly what
    organic data growth looks like to an optimizer that never
    re-analyzes.  Cached plans stay "valid" by version, yet their
    cardinality estimates are now wrong by ``growth``x.
    """

    catalog: Catalog
    query: LogicalExpression
    drifting_table: str
    seed: int
    growth: int
    grown: bool = False
    _extra: List[dict] = field(default_factory=list, repr=False)

    def grow(self) -> int:
        """Grow the drifting table in place; returns rows added.

        Idempotent: growing twice is a no-op.
        """
        if self.grown:
            return 0
        entry = self.catalog.table(self.drifting_table)
        assert entry.rows is not None
        entry.rows.extend(self._extra)
        self.grown = True
        return len(self._extra)


def drifted_workload(seed: int = 7, growth: int = 4) -> DriftScenario:
    """Build the canonical drift scenario.

    Tables ``r`` (300 rows by its statistics), ``s`` (900), ``t`` (600)
    share a 50-distinct join key; the query is the chain join
    ``(r ⋈ s) ⋈ t``.  The returned scenario's :meth:`~DriftScenario.grow`
    multiplies ``r``'s stored rows by ``growth`` while its statistics
    keep claiming 300 — scans then observe the true cardinality and the
    feedback loop has something to correct.
    """
    if growth < 2:
        raise ValueError(f"growth must be at least 2, got {growth}")
    catalog = Catalog()
    for spec in (
        TableSpec("r", 300, key_distinct=50),
        TableSpec("s", 900, key_distinct=50),
        TableSpec("t", 600, key_distinct=50),
    ):
        schema, statistics, rows = generate_table(spec, seed)
        catalog.add_table(spec.name, schema, statistics, rows)
    extra = generate_table(
        TableSpec("r", 300 * (growth - 1), key_distinct=50), seed + 1
    )[2]
    query = join(
        join(get("r"), get("s"), eq("r.k", "s.k")),
        get("t"),
        eq("s.k", "t.k"),
    )
    return DriftScenario(
        catalog=catalog,
        query=query,
        drifting_table="r",
        seed=seed,
        growth=growth,
        _extra=extra,
    )
