"""Predicate and scalar-expression trees for selections and joins.

Predicates are the operator *arguments* the paper's rule language carries
around opaquely; they must therefore be immutable and hashable so that
logical expressions (and memo keys derived from them) are hashable.

The mini-language is deliberately small: column references, literals,
binary comparisons, and boolean connectives — enough for the paper's
select–join workloads, the SQL front-end, and the executor.

Predicates ride inside operator-argument tuples, so they are hashed on
every memo insertion and rule-application fingerprint.  The composite
classes therefore cache their structural hash (and the derived
``columns()`` sets the rewrite rules query constantly) per instance;
caches are process-local and stripped on pickling (string hashes are
randomized per process).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import PredicateError

__all__ = [
    "Scalar",
    "ColumnRef",
    "Literal",
    "ComparisonOp",
    "Predicate",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "Negation",
    "TruePredicate",
    "TRUE",
    "col",
    "lit",
    "eq",
    "conjunction_of",
    "split_conjuncts",
    "equi_join_pairs",
]


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


def _cached_hash(self) -> int:
    """Shared ``__hash__`` body: structural hash computed once per instance.

    Classes opting in set ``_hash_fields`` and assign
    ``__hash__ = _cached_hash`` in their body (an explicit ``__hash__``
    stops ``@dataclass`` from generating its own).  The hash mixes the
    class name so structurally identical nodes of different classes
    stay distinct, matching the generated ``__eq__``'s class check.
    """
    cached = self.__dict__.get("_hash")
    if cached is None:
        fields = tuple(getattr(self, name) for name in self._hash_fields)
        cached = hash((type(self).__name__, fields))
        object.__setattr__(self, "_hash", cached)
    return cached


class _PickleWithoutCaches:
    """Strip per-instance caches (``_hash`` etc.) on pickling.

    Cached hashes are process-local (string hashing is randomized per
    process); shipping one across a pickle boundary — as the parallel
    multi-query driver does — would poison the receiving process's hash
    tables.  Dropping every underscore key restores the lazy caches to
    their unset state on the other side.
    """

    def __getstate__(self):
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_")
        }

    def __setstate__(self, state):
        self.__dict__.update(state)


class Scalar(_PickleWithoutCaches):
    """Base class for scalar expressions (column references and literals)."""

    def columns(self) -> FrozenSet[str]:
        """The set of column names this expression references."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, object]):
        """Evaluate this expression against a row (a name → value mapping)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Scalar):
    """A reference to a column by (possibly qualified) name."""

    name: str

    _hash_fields = ("name",)
    __hash__ = _cached_hash

    def columns(self) -> FrozenSet[str]:
        """The singleton set of this column's name."""
        return frozenset((self.name,))

    def evaluate(self, row: Mapping[str, object]):
        """The row's value for this column."""
        try:
            return row[self.name]
        except KeyError:
            raise PredicateError(f"row has no column {self.name!r}") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Scalar):
    """A constant value."""

    value: object

    def columns(self) -> FrozenSet[str]:
        """Literals reference no columns."""
        return frozenset()

    def evaluate(self, row: Mapping[str, object]):
        """The constant itself."""
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class ComparisonOp(enum.Enum):
    """Binary comparison operators."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, left, right) -> bool:
        """Evaluate ``left <op> right``."""
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.GT:
            return left > right
        return left >= right

    @property
    def flipped(self) -> "ComparisonOp":
        """The operator with its operands swapped (``a < b`` → ``b > a``)."""
        return _FLIPPED[self]


_FLIPPED = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
}


class Predicate(_PickleWithoutCaches):
    """Base class for boolean predicates."""

    def columns(self) -> FrozenSet[str]:
        """The set of column names this predicate references."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """Whether the predicate holds for ``row``."""
        raise NotImplementedError

    def conjuncts(self) -> Tuple["Predicate", ...]:
        """This predicate split into top-level AND-ed conjuncts."""
        return (self,)

    @property
    def is_true(self) -> bool:
        return False


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate; the argument of a cross product join."""

    def columns(self) -> FrozenSet[str]:
        """TRUE references no columns."""
        return frozenset()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """Always true."""
        return True

    def conjuncts(self) -> Tuple[Predicate, ...]:
        """TRUE contributes no conjuncts."""
        return ()

    @property
    def is_true(self) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


TRUE = TruePredicate()


@dataclass(frozen=True)
class Comparison(Predicate):
    """A binary comparison between two scalar expressions."""

    op: ComparisonOp
    left: Scalar
    right: Scalar

    _hash_fields = ("op", "left", "right")
    __hash__ = _cached_hash

    def columns(self) -> FrozenSet[str]:
        """Columns referenced on either side (computed once per instance)."""
        cached = self.__dict__.get("_columns")
        if cached is None:
            cached = self.left.columns() | self.right.columns()
            object.__setattr__(self, "_columns", cached)
        return cached

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """Apply the comparison to the row's values."""
        return self.op.apply(self.left.evaluate(row), self.right.evaluate(row))

    def column_pair(self) -> Optional[Tuple[str, str]]:
        """``(left_col, right_col)`` when this compares two columns, else None."""
        if isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef):
            return (self.left.name, self.right.name)
        return None

    def column_literal(self) -> Optional[Tuple[str, ComparisonOp, object]]:
        """``(column, op, value)`` when this compares a column to a literal.

        The comparison is normalized so the column is on the left.
        """
        if isinstance(self.left, ColumnRef) and isinstance(self.right, Literal):
            return (self.left.name, self.op, self.right.value)
        if isinstance(self.left, Literal) and isinstance(self.right, ColumnRef):
            return (self.right.name, self.op.flipped, self.left.value)
        return None

    def __str__(self) -> str:
        cached = self.__dict__.get("_str")
        if cached is None:
            cached = f"{self.left} {self.op.value} {self.right}"
            object.__setattr__(self, "_str", cached)
        return cached


@dataclass(frozen=True)
class Conjunction(Predicate):
    """The AND of two or more predicates, flattened and deduplicated."""

    parts: Tuple[Predicate, ...]

    _hash_fields = ("parts",)
    __hash__ = _cached_hash

    def __post_init__(self):
        if len(self.parts) < 2:
            raise PredicateError("a conjunction needs at least two parts")

    def columns(self) -> FrozenSet[str]:
        """Union of the parts' columns (computed once per instance)."""
        cached = self.__dict__.get("_columns")
        if cached is None:
            cached = frozenset()
            for part in self.parts:
                cached |= part.columns()
            object.__setattr__(self, "_columns", cached)
        return cached

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """True when every part holds."""
        return all(part.evaluate(row) for part in self.parts)

    def conjuncts(self) -> Tuple[Predicate, ...]:
        """The flattened parts (computed once per instance)."""
        cached = self.__dict__.get("_conjuncts")
        if cached is None:
            result = []
            for part in self.parts:
                result.extend(part.conjuncts())
            cached = tuple(result)
            object.__setattr__(self, "_conjuncts", cached)
        return cached

    def __str__(self) -> str:
        return " and ".join(
            f"({part})" if isinstance(part, Disjunction) else str(part)
            for part in self.parts
        )


@dataclass(frozen=True)
class Disjunction(Predicate):
    """The OR of two or more predicates."""

    parts: Tuple[Predicate, ...]

    _hash_fields = ("parts",)
    __hash__ = _cached_hash

    def __post_init__(self):
        if len(self.parts) < 2:
            raise PredicateError("a disjunction needs at least two parts")

    def columns(self) -> FrozenSet[str]:
        """Union of the parts' columns (computed once per instance)."""
        cached = self.__dict__.get("_columns")
        if cached is None:
            cached = frozenset()
            for part in self.parts:
                cached |= part.columns()
            object.__setattr__(self, "_columns", cached)
        return cached

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """True when any part holds."""
        return any(part.evaluate(row) for part in self.parts)

    def __str__(self) -> str:
        return " or ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class Negation(Predicate):
    """The NOT of a predicate."""

    part: Predicate

    _hash_fields = ("part",)
    __hash__ = _cached_hash

    def columns(self) -> FrozenSet[str]:
        """Columns of the negated predicate."""
        return self.part.columns()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """True when the inner predicate does not hold."""
        return not self.part.evaluate(row)

    def __str__(self) -> str:
        return f"not ({self.part})"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(left, right) -> Comparison:
    """Equality comparison; strings become column refs, others literals."""
    return Comparison(ComparisonOp.EQ, _as_scalar(left), _as_scalar(right))


def _as_scalar(value) -> Scalar:
    if isinstance(value, Scalar):
        return value
    if isinstance(value, str):
        return ColumnRef(value)
    return Literal(value)


def conjunction_of(parts: Iterable[Predicate]) -> Predicate:
    """AND together predicates; () → TRUE, a single part is returned as-is.

    Conjuncts are flattened, deduplicated, and put in a canonical order so
    that the same logical predicate always produces the same value — this
    keeps the optimizer's hash table of expressions free of spurious
    duplicates when rules reassemble predicates in different orders.
    """
    flattened = []
    seen = set()
    for part in parts:
        for conjunct in part.conjuncts():
            if conjunct not in seen:
                seen.add(conjunct)
                flattened.append(conjunct)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    flattened.sort(key=str)
    return Conjunction(tuple(flattened))


def split_conjuncts(
    predicate: Predicate, available: FrozenSet[str]
) -> Tuple[Predicate, Predicate]:
    """Split a predicate into (parts decidable on ``available``, the rest).

    The first element of the returned pair is the conjunction of those
    top-level conjuncts that reference only columns in ``available``; the
    second is the conjunction of the remaining conjuncts.  This is the
    routing primitive the join associativity rule uses to move predicate
    parts to the join where their columns first become available.
    """
    inside, outside = [], []
    for conjunct in predicate.conjuncts():
        if conjunct.columns() <= available:
            inside.append(conjunct)
        else:
            outside.append(conjunct)
    return conjunction_of(inside), conjunction_of(outside)


def equi_join_pairs(
    predicate: Predicate,
    left_columns: FrozenSet[str],
    right_columns: FrozenSet[str],
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Extract equi-join key pairs ``((l, r), …)`` from a join predicate.

    Returns None when any conjunct is not an equality between one column
    from each side — i.e. when the predicate is not a pure equi-join, in
    which case merge join and hash join do not apply.
    """
    pairs = []
    for conjunct in predicate.conjuncts():
        if not isinstance(conjunct, Comparison) or conjunct.op is not ComparisonOp.EQ:
            return None
        pair = conjunct.column_pair()
        if pair is None:
            return None
        left_name, right_name = pair
        if left_name in left_columns and right_name in right_columns:
            pairs.append((left_name, right_name))
        elif right_name in left_columns and left_name in right_columns:
            pairs.append((right_name, left_name))
        else:
            return None
    if not pairs:
        return None
    return tuple(pairs)
