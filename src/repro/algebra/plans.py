"""Physical plan trees (the optimizer's output).

"The output of the optimizer is a plan, which is an expression over the
algebra of algorithms."  (paper, Section 2.2)

Plan nodes are frozen; the engine annotates each node with the physical
properties it delivers and its *cumulative* cost (node + inputs), which
makes branch-and-bound accounting and the paper's consistency check
("the physical properties of a chosen plan really do satisfy the
physical property vector") straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.algebra.properties import ANY_PROPS, PhysProps
from repro.errors import AlgebraError

__all__ = ["PhysicalPlan"]


@dataclass(frozen=True)
class PhysicalPlan:
    """A node of a physical plan tree.

    ``algorithm``
        The algorithm or enforcer name, as declared in the model
        specification (e.g. ``"merge_join"`` or ``"sort"``).
    ``args``
        Algorithm arguments (predicate, table name, sort keys, …).
    ``inputs``
        Input plans.
    ``properties``
        The physical properties this plan delivers.
    ``cost``
        Cumulative cost of this node and everything below it.
    ``is_enforcer``
        True when this node is an enforcer rather than a query
        processing algorithm; enforcers perform no logical data
        manipulation (paper Section 2.2).
    """

    algorithm: str
    args: Tuple = ()
    inputs: Tuple["PhysicalPlan", ...] = ()
    properties: PhysProps = ANY_PROPS
    cost: object = None
    is_enforcer: bool = False

    def __post_init__(self):
        if not self.algorithm:
            raise AlgebraError("algorithm name must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        for node in self.inputs:
            if not isinstance(node, PhysicalPlan):
                raise AlgebraError(
                    f"inputs of {self.algorithm!r} must be PhysicalPlan, "
                    f"got {type(node).__name__}"
                )

    def walk(self) -> Iterator["PhysicalPlan"]:
        """Pre-order traversal."""
        yield self
        for node in self.inputs:
            yield from node.walk()

    def count_nodes(self) -> int:
        """Number of operators in this plan."""
        return sum(1 for _ in self.walk())

    def algorithms_used(self) -> Tuple[str, ...]:
        """Algorithm names in pre-order, useful for plan-shape assertions."""
        return tuple(node.algorithm for node in self.walk())

    def count_algorithm(self, algorithm: str) -> int:
        """How many times ``algorithm`` occurs in the plan."""
        return sum(1 for node in self.walk() if node.algorithm == algorithm)

    def leaf_args(self) -> Tuple[Tuple, ...]:
        """Args of the leaf nodes (e.g. scanned table names), left to right."""
        return tuple(node.args for node in self.walk() if not node.inputs)

    def to_sexpr(self) -> str:
        """Compact s-expression rendering of the plan."""
        parts = [self.algorithm]
        if self.args:
            rendered = ", ".join(str(arg) for arg in self.args)
            parts.append(f"[{rendered}]")
        parts.extend(node.to_sexpr() for node in self.inputs)
        return "(" + " ".join(parts) + ")"

    def pretty(self, indent: int = 0, with_cost: bool = True) -> str:
        """Multi-line rendering in the style optimizers print plans."""
        pad = "  " * indent
        line = pad + self.algorithm
        if self.args:
            line += " [" + ", ".join(str(arg) for arg in self.args) + "]"
        annotations = []
        if not self.properties.is_any:
            annotations.append(str(self.properties))
        if with_cost and self.cost is not None:
            annotations.append(f"cost {self.cost}")
        if annotations:
            line += "  {" + "; ".join(annotations) + "}"
        lines = [line]
        for node in self.inputs:
            lines.append(node.pretty(indent + 1, with_cost))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_sexpr()
