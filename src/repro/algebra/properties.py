"""Logical properties and physical property vectors.

"Logical properties are attached to equivalence classes — sets of
equivalent logical expressions and plans — whereas physical properties
are attached to specific plans and algorithm choices."  (paper,
Section 2.2)

The search engine treats the physical property vector as an abstract data
type with equality and *cover* comparisons supplied by the model
specification.  :class:`PhysProps` is the batteries-included vector that
all bundled models use; a model may substitute any hashable type plus its
own cover function.

Sort keys are *sets* of equivalent column names: after a merge join on
``r.k = s.k`` the output is simultaneously sorted on ``r.k`` and ``s.k``,
so its sort key is ``{r.k, s.k}``.  A required key (usually a singleton)
is covered when it is a subset of the provided key.  This is how
optimizers exploit "interesting orderings" across joins on shared keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from repro.catalog.schema import Schema
from repro.catalog.statistics import ColumnStatistics
from repro.errors import AlgebraError

__all__ = [
    "SortKey",
    "sort_key",
    "Partitioning",
    "hash_partitioned",
    "PhysProps",
    "ANY_PROPS",
    "sorted_on",
    "LogicalProperties",
]


SortKey = FrozenSet[str]
"""A set of mutually equal column names defining one sort position."""


def sort_key(spec: Union[str, Iterable[str]]) -> SortKey:
    """Normalize a column name or iterable of equivalent names to a SortKey."""
    if isinstance(spec, str):
        return frozenset((spec,))
    key = frozenset(spec)
    if not key:
        raise AlgebraError("a sort key must name at least one column")
    return key


def _normalize_order(order: Iterable) -> Tuple[SortKey, ...]:
    return tuple(sort_key(item) for item in order)


@dataclass(frozen=True)
class Partitioning:
    """Horizontal partitioning across parallel processing nodes.

    ``scheme`` is a model-defined label (e.g. ``"hash"``, ``"range"``,
    ``"round_robin"``); ``keys`` are the partitioning columns (each a
    :data:`SortKey`-style equivalence set); ``degree`` is the number of
    partitions.  Two inputs of a parallel join are *compatible* when they
    use the same scheme and degree and their key columns are pairwise
    equivalent (paper Section 3: "any partitioning of join inputs across
    multiple processing nodes is acceptable if both inputs are partitioned
    using compatible partitioning rules").
    """

    scheme: str
    keys: Tuple[SortKey, ...] = ()
    degree: int = 1

    def __post_init__(self):
        object.__setattr__(self, "keys", _normalize_order(self.keys))
        if self.degree < 1:
            raise AlgebraError("partitioning degree must be at least 1")

    def satisfies(self, required: "Partitioning") -> bool:
        """True when data partitioned this way satisfies ``required``."""
        if self.scheme != required.scheme or self.degree != required.degree:
            return False
        if len(self.keys) != len(required.keys):
            return False
        return all(
            required_key <= provided_key
            for provided_key, required_key in zip(self.keys, required.keys)
        )

    def __str__(self) -> str:
        keys = ", ".join("|".join(sorted(key)) for key in self.keys)
        return f"{self.scheme}({keys})x{self.degree}"


def hash_partitioned(columns: Iterable, degree: int) -> Partitioning:
    """Hash partitioning on ``columns`` across ``degree`` nodes."""
    return Partitioning("hash", tuple(columns), degree)


@dataclass(frozen=True)
class PhysProps:
    """The default physical property vector.

    ``sort_order``
        Major-to-minor sort keys; empty means "no particular order".
    ``partitioning``
        How the data is spread across parallel nodes; None means the data
        is on a single node (serial).
    ``flags``
        Model-defined boolean-ish properties as ``(name, value)`` pairs,
        e.g. ``("assembled", True)`` for the OODB model's assembledness
        or ``("unique", True)`` for duplicate-free results.
    """

    sort_order: Tuple[SortKey, ...] = ()
    partitioning: Optional[Partitioning] = None
    flags: FrozenSet[Tuple[str, object]] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "sort_order", _normalize_order(self.sort_order))
        object.__setattr__(self, "flags", frozenset(self.flags))
        # Property vectors are goal-key components: they are hashed on
        # every winner/failure lookup, so the structural hash is paid
        # once here.  Process-local; see __getstate__.
        object.__setattr__(
            self, "_hash", hash((self.sort_order, self.partitioning, self.flags))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        object.__setattr__(
            self, "_hash", hash((self.sort_order, self.partitioning, self.flags))
        )

    # -- queries ----------------------------------------------------------

    @property
    def is_any(self) -> bool:
        """True when this vector imposes no requirement at all."""
        return not self.sort_order and self.partitioning is None and not self.flags

    def covers(self, required: "PhysProps") -> bool:
        """True when data with *these* properties satisfies ``required``.

        Sort: the required order must be a prefix of the provided order,
        position by position, with each required key a subset of the
        provided key.  Partitioning: no requirement, or compatible.
        Flags: required flags must all be present.
        """
        if len(required.sort_order) > len(self.sort_order):
            return False
        for provided_key, required_key in zip(self.sort_order, required.sort_order):
            if not required_key <= provided_key:
                return False
        if required.partitioning is not None:
            if self.partitioning is None:
                return False
            if not self.partitioning.satisfies(required.partitioning):
                return False
        return required.flags <= self.flags

    def flag(self, name: str, default=None):
        """The value of flag ``name``, or ``default`` when absent."""
        for flag_name, value in self.flags:
            if flag_name == name:
                return value
        return default

    # -- derivations ------------------------------------------------------

    def without_sort(self) -> "PhysProps":
        """This vector with the sort-order component removed."""
        return PhysProps((), self.partitioning, self.flags)

    def without_partitioning(self) -> "PhysProps":
        """This vector with the partitioning component removed."""
        return PhysProps(self.sort_order, None, self.flags)

    def without_flag(self, name: str) -> "PhysProps":
        """This vector with every ``name`` flag removed."""
        remaining = frozenset(
            (flag_name, value) for flag_name, value in self.flags if flag_name != name
        )
        return PhysProps(self.sort_order, self.partitioning, remaining)

    def with_sort(self, order: Iterable) -> "PhysProps":
        """This vector with its sort order replaced by ``order``."""
        return PhysProps(tuple(order), self.partitioning, self.flags)

    def with_partitioning(self, partitioning: Optional[Partitioning]) -> "PhysProps":
        """This vector with its partitioning replaced."""
        return PhysProps(self.sort_order, partitioning, self.flags)

    def with_flag(self, name: str, value=True) -> "PhysProps":
        """This vector with flag ``name`` set to ``value``."""
        return PhysProps(
            self.sort_order,
            self.partitioning,
            self.without_flag(name).flags | {(name, value)},
        )

    def only_sort(self) -> "PhysProps":
        """Just the sort component (the excluding vector a sort enforcer uses)."""
        return PhysProps(self.sort_order, None, frozenset())

    # -- rendering --------------------------------------------------------

    def __str__(self) -> str:
        if self.is_any:
            return "any"
        parts = []
        if self.sort_order:
            rendered = ", ".join("|".join(sorted(key)) for key in self.sort_order)
            parts.append(f"sorted({rendered})")
        if self.partitioning is not None:
            parts.append(f"partitioned[{self.partitioning}]")
        for name, value in sorted(self.flags, key=lambda item: item[0]):
            parts.append(f"{name}={value}")
        return " ".join(parts)


ANY_PROPS = PhysProps()
"""The empty requirement: any plan satisfies it."""


def sorted_on(*columns) -> PhysProps:
    """Shorthand: a property vector requiring a sort order."""
    return PhysProps(sort_order=tuple(columns))


@dataclass(frozen=True)
class LogicalProperties:
    """Properties shared by every expression of an equivalence class.

    ``schema`` and ``cardinality`` are the paper's examples ("include
    schema, expected size, etc."); ``column_stats`` carries distinct-value
    estimates forward so selectivity estimation works on intermediate
    results; ``tables`` is the set of base tables contributing rows, used
    by rule conditions and for consistency checks.
    """

    schema: Schema
    cardinality: float
    column_stats: Mapping[str, ColumnStatistics] = field(default_factory=dict, compare=False, hash=False)
    tables: FrozenSet[str] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "column_stats", dict(self.column_stats))
        object.__setattr__(self, "tables", frozenset(self.tables))

    @property
    def column_names(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_column_names")
        if cached is None:
            cached = frozenset(self.schema.column_names)
            object.__setattr__(self, "_column_names", cached)
        return cached

    def column_stat(self, name: str) -> Optional[ColumnStatistics]:
        """Statistics for column ``name``, or None when unknown."""
        return self.column_stats.get(name)

    def consistent_with(self, other: "LogicalProperties", tolerance: float = 1e-6) -> bool:
        """Consistency check between two derivations of the same class.

        All expressions of a group must agree on the schema's column
        *set* (column order may differ across join orders) and on the
        cardinality estimate — the paper's "one of many consistency
        checks".
        """
        if self.column_names != other.column_names:
            return False
        if self.tables != other.tables:
            return False
        scale = max(1.0, abs(self.cardinality), abs(other.cardinality))
        return abs(self.cardinality - other.cardinality) <= tolerance * scale

    def __str__(self) -> str:
        return (
            f"card={self.cardinality:.1f} tables={{{', '.join(sorted(self.tables))}}} "
            f"schema={self.schema.describe()}"
        )
