"""Immutable logical-algebra expression trees (the optimizer's input).

"The user queries to be optimized by a generated optimizer are specified
as an algebra expression (tree) of logical operators.  […]  Operators can
have zero or more inputs; the number of inputs is not restricted."
(paper, Section 2.2)

Expressions are frozen and hashable; the memo derives its hash-table keys
from them.  Because expression trees are hashed constantly on the search
hot path (every memo insertion, every rule-application fingerprint), the
structural hash is computed once at construction and cached — ``hash()``
on an expression is a single attribute read, and equality checks bail out
early on hash mismatch before comparing structure.  Cached hashes are
process-local (Python randomizes string hashes per process), so pickling
drops them and unpickling recomputes.

Two special pseudo-operators support the rule machinery:

* ``GROUP_LEAF`` — a leaf that refers to a memo group by id.  Rule rewrite
  results are expressed over such leaves when matching inside the memo.
* no other pseudo-operators exist; plain trees never contain leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Tuple

from repro.errors import AlgebraError

__all__ = ["LogicalExpression", "GROUP_LEAF", "group_leaf", "is_group_leaf"]

GROUP_LEAF = "$group"
"""Operator name of a leaf referring to a memo group (rule-internal)."""


@dataclass(frozen=True, eq=False)
class LogicalExpression:
    """A node of a logical algebra expression tree.

    ``operator``
        The logical operator's name, as declared in the model
        specification (e.g. ``"join"``).
    ``args``
        Operator arguments as a hashable tuple — e.g. ``(predicate,)``
        for a select, ``(table_name,)`` for a get.  The framework treats
        them opaquely, exactly as the paper treats operator arguments.
    ``inputs``
        Input expressions; empty for leaves.

    Equality is structural; the hash is precomputed at construction so
    repeated hashing (the memo's hot path) costs one attribute read.
    """

    operator: str
    args: Tuple = ()
    inputs: Tuple["LogicalExpression", ...] = ()

    def __post_init__(self):
        if not self.operator:
            raise AlgebraError("operator name must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        for node in self.inputs:
            if not isinstance(node, LogicalExpression):
                raise AlgebraError(
                    f"inputs of {self.operator!r} must be LogicalExpression, "
                    f"got {type(node).__name__}"
                )
        object.__setattr__(
            self, "_hash", hash((self.operator, self.args, self.inputs))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, LogicalExpression):
            return NotImplemented
        if self._hash != other._hash:  # type: ignore[attr-defined]
            return False
        return (
            self.operator == other.operator
            and self.args == other.args
            and self.inputs == other.inputs
        )

    def __getstate__(self):
        # String hashes are randomized per process: never ship a cached
        # hash across a pickle boundary (the parallel driver does).
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        object.__setattr__(
            self, "_hash", hash((self.operator, self.args, self.inputs))
        )

    @property
    def arity(self) -> int:
        return len(self.inputs)

    @property
    def is_leaf(self) -> bool:
        return not self.inputs

    def walk(self) -> Iterator["LogicalExpression"]:
        """Pre-order traversal of the tree."""
        yield self
        for node in self.inputs:
            yield from node.walk()

    def count_nodes(self) -> int:
        """Number of nodes in this tree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        if not self.inputs:
            return 1
        return 1 + max(node.depth() for node in self.inputs)

    def with_inputs(self, inputs: Tuple["LogicalExpression", ...]) -> "LogicalExpression":
        """This node with the same operator and args over new inputs."""
        return LogicalExpression(self.operator, self.args, tuple(inputs))

    def map_leaves(
        self, transform: Callable[["LogicalExpression"], "LogicalExpression"]
    ) -> "LogicalExpression":
        """Rebuild the tree with every leaf replaced by ``transform(leaf)``."""
        if self.is_leaf:
            return transform(self)
        return self.with_inputs(tuple(node.map_leaves(transform) for node in self.inputs))

    def to_sexpr(self) -> str:
        """Compact s-expression rendering, e.g. ``(join [p] (get R) (get S))``."""
        parts = [self.operator]
        if self.args:
            rendered = ", ".join(str(arg) for arg in self.args)
            parts.append(f"[{rendered}]")
        parts.extend(node.to_sexpr() for node in self.inputs)
        return "(" + " ".join(parts) + ")"

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering for humans."""
        pad = "  " * indent
        line = pad + self.operator
        if self.args:
            line += " [" + ", ".join(str(arg) for arg in self.args) + "]"
        lines = [line]
        for node in self.inputs:
            lines.append(node.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_sexpr()


_GROUP_LEAVES: dict = {}


def group_leaf(group_id: int) -> LogicalExpression:
    """A leaf expression referring to memo group ``group_id``.

    Leaves are interned: the same group id always returns the identical
    object, so the rule machinery's binding fingerprints (which contain
    group leaves) hash and compare at pointer speed.  The table is tiny —
    one entry per distinct group id ever referenced — and group ids are
    small consecutive integers, so it is kept for the process lifetime.
    """
    leaf = _GROUP_LEAVES.get(group_id)
    if leaf is None:
        leaf = LogicalExpression(GROUP_LEAF, (group_id,))
        _GROUP_LEAVES[group_id] = leaf
    return leaf


def is_group_leaf(expression: LogicalExpression) -> bool:
    """True when ``expression`` is a memo-group reference leaf."""
    return expression.operator == GROUP_LEAF
