"""Immutable logical-algebra expression trees (the optimizer's input).

"The user queries to be optimized by a generated optimizer are specified
as an algebra expression (tree) of logical operators.  […]  Operators can
have zero or more inputs; the number of inputs is not restricted."
(paper, Section 2.2)

Expressions are frozen and hashable; the memo derives its hash-table keys
from them.  Two special pseudo-operators support the rule machinery:

* ``GROUP_LEAF`` — a leaf that refers to a memo group by id.  Rule rewrite
  results are expressed over such leaves when matching inside the memo.
* no other pseudo-operators exist; plain trees never contain leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Tuple

from repro.errors import AlgebraError

__all__ = ["LogicalExpression", "GROUP_LEAF", "group_leaf", "is_group_leaf"]

GROUP_LEAF = "$group"
"""Operator name of a leaf referring to a memo group (rule-internal)."""


@dataclass(frozen=True)
class LogicalExpression:
    """A node of a logical algebra expression tree.

    ``operator``
        The logical operator's name, as declared in the model
        specification (e.g. ``"join"``).
    ``args``
        Operator arguments as a hashable tuple — e.g. ``(predicate,)``
        for a select, ``(table_name,)`` for a get.  The framework treats
        them opaquely, exactly as the paper treats operator arguments.
    ``inputs``
        Input expressions; empty for leaves.
    """

    operator: str
    args: Tuple = ()
    inputs: Tuple["LogicalExpression", ...] = ()

    def __post_init__(self):
        if not self.operator:
            raise AlgebraError("operator name must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        for node in self.inputs:
            if not isinstance(node, LogicalExpression):
                raise AlgebraError(
                    f"inputs of {self.operator!r} must be LogicalExpression, "
                    f"got {type(node).__name__}"
                )

    @property
    def arity(self) -> int:
        return len(self.inputs)

    @property
    def is_leaf(self) -> bool:
        return not self.inputs

    def walk(self) -> Iterator["LogicalExpression"]:
        """Pre-order traversal of the tree."""
        yield self
        for node in self.inputs:
            yield from node.walk()

    def count_nodes(self) -> int:
        """Number of nodes in this tree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        if not self.inputs:
            return 1
        return 1 + max(node.depth() for node in self.inputs)

    def with_inputs(self, inputs: Tuple["LogicalExpression", ...]) -> "LogicalExpression":
        """This node with the same operator and args over new inputs."""
        return LogicalExpression(self.operator, self.args, tuple(inputs))

    def map_leaves(
        self, transform: Callable[["LogicalExpression"], "LogicalExpression"]
    ) -> "LogicalExpression":
        """Rebuild the tree with every leaf replaced by ``transform(leaf)``."""
        if self.is_leaf:
            return transform(self)
        return self.with_inputs(tuple(node.map_leaves(transform) for node in self.inputs))

    def to_sexpr(self) -> str:
        """Compact s-expression rendering, e.g. ``(join [p] (get R) (get S))``."""
        parts = [self.operator]
        if self.args:
            rendered = ", ".join(str(arg) for arg in self.args)
            parts.append(f"[{rendered}]")
        parts.extend(node.to_sexpr() for node in self.inputs)
        return "(" + " ".join(parts) + ")"

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering for humans."""
        pad = "  " * indent
        line = pad + self.operator
        if self.args:
            line += " [" + ", ".join(str(arg) for arg in self.args) + "]"
        lines = [line]
        for node in self.inputs:
            lines.append(node.pretty(indent + 1))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_sexpr()


def group_leaf(group_id: int) -> LogicalExpression:
    """A leaf expression referring to memo group ``group_id``."""
    return LogicalExpression(GROUP_LEAF, (group_id,))


def is_group_leaf(expression: LogicalExpression) -> bool:
    """True when ``expression`` is a memo-group reference leaf."""
    return expression.operator == GROUP_LEAF
