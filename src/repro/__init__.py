"""repro — a reproduction of the Volcano Optimizer Generator.

Graefe & McKenna, *The Volcano Optimizer Generator: Extensibility and
Efficient Search*, ICDE 1993.

The package is organized like the system the paper describes:

``repro.model``
    What the optimizer implementor writes: the model specification —
    logical operators, algorithms, enforcers, transformation and
    implementation rules, cost ADT, property functions.
``repro.generator``
    The optimizer generator: validate a specification and link it with
    the search engine, or emit standalone optimizer source code.
``repro.search``
    The Volcano search engine: the memo and ``FindBestPlan`` (directed
    dynamic programming).
``repro.models``
    Ready-made specifications: the paper's relational test model and the
    parallel, set-operation, and OODB extensions it sketches.
``repro.exodus`` / ``repro.systemr``
    The comparison optimizers: EXODUS forward chaining over MESH, and
    System R bottom-up dynamic programming.
``repro.executor``
    A Volcano-style iterator execution engine so plans actually run.
``repro.sql`` / ``repro.workloads`` / ``repro.bench``
    A small SQL front-end, the paper's random workloads, and the
    harness that regenerates Figure 4 and the ablations.

Quickstart::

    from repro import (
        Catalog, Schema, TableStatistics, generate_optimizer,
        relational_model, get, join, eq,
    )

    catalog = Catalog()
    catalog.add_table("r", Schema.of("r.k"), TableStatistics(1200, 100))
    catalog.add_table("s", Schema.of("s.k"), TableStatistics(7200, 100))
    optimizer = generate_optimizer(relational_model(), catalog)
    plan = optimizer.optimize(join(get("r"), get("s"), eq("r.k", "s.k")))
    print(plan.plan.pretty())
"""

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import TRUE, col, conjunction_of, eq, lit
from repro.algebra.properties import (
    ANY_PROPS,
    LogicalProperties,
    Partitioning,
    PhysProps,
    sorted_on,
)
from repro.catalog import (
    Catalog,
    load_catalog,
    save_catalog,
    Column,
    ColumnStatistics,
    ColumnType,
    Schema,
    TableStatistics,
)
from repro.errors import (
    BudgetExceededError,
    OptimizationFailedError,
    OptionsError,
    ReproError,
    ServiceError,
)
from repro.dynamic import DynamicPlan, Parameter, optimize_dynamic
from repro.executor import execute_plan
from repro.explain import explain, explain_plan
from repro.exodus import ExodusOptimizer, ExodusOptions, ExodusResult
from repro.generator import (
    compile_and_load,
    generate_optimizer,
    generate_source,
    lint_specification,
)
from repro.lint import (
    Diagnostic,
    LintReport,
    MemoAuditor,
    Severity,
    lint_spec,
)
from repro.model import (
    INFINITE_COST,
    AlgorithmDef,
    AnyPattern,
    Cost,
    CpuIoCost,
    EnforcerApplication,
    EnforcerDef,
    ImplementationRule,
    LogicalOperatorDef,
    ModelSpecification,
    OpPattern,
    ScalarCost,
    TransformationRule,
)
from repro.models import (
    aggregate,
    aggregate_model,
    get,
    join,
    oodb_model,
    parallel_relational_model,
    project,
    relational_model,
    select,
    setops_model,
)
from repro.search import (
    STATIC_PROMISE,
    BudgetReport,
    LearnedPromiseModel,
    OptimizationResult,
    Optimizer,
    PreoptimizedPlan,
    PromiseModel,
    ResourceBudget,
    SearchOptions,
    StaticPromise,
    TaskBasedOptimizer,
    VolcanoOptimizer,
)
from repro.service import (
    BatchResult,
    CacheStats,
    OptimizerService,
    PlanCache,
    PreparedQuery,
    ServedResult,
    ServiceOptions,
    SharingOptions,
)
from repro.sql import NormalizedQuery, normalize_literals, translate
from repro.systemr import SystemROptimizer, SystemROptions, SystemRResult
from repro.workloads import QueryGenerator, SharedWorkload, WorkloadOptions

__version__ = "1.0.0"

__all__ = [
    "LogicalExpression",
    "PhysicalPlan",
    "TRUE",
    "col",
    "conjunction_of",
    "eq",
    "lit",
    "ANY_PROPS",
    "LogicalProperties",
    "Partitioning",
    "PhysProps",
    "sorted_on",
    "Catalog",
    "load_catalog",
    "save_catalog",
    "Column",
    "ColumnStatistics",
    "ColumnType",
    "Schema",
    "TableStatistics",
    "BudgetExceededError",
    "OptimizationFailedError",
    "OptionsError",
    "ReproError",
    "ServiceError",
    "DynamicPlan",
    "Parameter",
    "optimize_dynamic",
    "execute_plan",
    "explain",
    "explain_plan",
    "ExodusOptimizer",
    "ExodusOptions",
    "ExodusResult",
    "compile_and_load",
    "generate_optimizer",
    "generate_source",
    "lint_specification",
    "Diagnostic",
    "LintReport",
    "MemoAuditor",
    "Severity",
    "lint_spec",
    "INFINITE_COST",
    "AlgorithmDef",
    "AnyPattern",
    "Cost",
    "CpuIoCost",
    "EnforcerApplication",
    "EnforcerDef",
    "ImplementationRule",
    "LogicalOperatorDef",
    "ModelSpecification",
    "OpPattern",
    "ScalarCost",
    "TransformationRule",
    "aggregate",
    "aggregate_model",
    "get",
    "join",
    "oodb_model",
    "parallel_relational_model",
    "project",
    "relational_model",
    "select",
    "setops_model",
    "OptimizationResult",
    "Optimizer",
    "PreoptimizedPlan",
    "ResourceBudget",
    "BudgetReport",
    "SearchOptions",
    "TaskBasedOptimizer",
    "VolcanoOptimizer",
    "PromiseModel",
    "StaticPromise",
    "STATIC_PROMISE",
    "LearnedPromiseModel",
    "BatchResult",
    "CacheStats",
    "OptimizerService",
    "PlanCache",
    "PreparedQuery",
    "ServedResult",
    "ServiceOptions",
    "SharingOptions",
    "NormalizedQuery",
    "normalize_literals",
    "translate",
    "SystemROptimizer",
    "SystemROptions",
    "SystemRResult",
    "QueryGenerator",
    "SharedWorkload",
    "WorkloadOptions",
    "__version__",
]
