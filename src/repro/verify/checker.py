"""The independent plan verifier: ``verify_plan``.

Given only the model specification, the input expression, the plan, and
its :class:`~repro.verify.certificate.PlanCertificate`, re-check every
claim the optimizer made — no memo, no engine state:

* **P0xx** — the certificate is well-formed and aligned with the plan;
* **P1xx / P401 / P404** — the transformation chain replays: every step
  is a lawful rule application, and the endpoint is exactly the
  recorded logical frontier (degraded plans without a chain fall back
  to the :mod:`~repro.verify.normalize` normal form — they still run
  every other check, never verifying vacuously);
* **P402 / P403** — the frontier *corresponds* to the plan: walking
  both in lockstep, every algorithm node is produced by its claimed
  implementation rule from the frontier subtree (pattern match,
  condition, arguments), enforcers and ``materialize`` pass the
  frontier through, and every ``scan_intermediate`` resolves to a
  materialized intermediate the certificate defines;
* **P2xx** — re-running ``derive_props`` reproduces each node's
  physical properties, enforcer applications honor their contracts,
  and the root covers the required goal;
* **P3xx** — re-invoking the cost ADT over the claimed logical
  properties reproduces every local cost *exactly*, cumulative costs
  re-add to every node's recorded cost in plan order, and the root
  equals the claimed total.

All P-codes are errors; a plan verifies iff its report is empty.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.catalog.catalog import Catalog
from repro.lint.diagnostics import LintReport
from repro.model.patterns import match_tree
from repro.model.spec import AlgorithmNode, ModelSpecification
from repro.verify.certificate import (
    CERTIFICATE_KINDS,
    KIND_DEGRADED,
    NodeClaim,
    PlanCertificate,
)
from repro.verify.normalize import equivalent

__all__ = ["VerifyReport", "verify_plan"]

# The sharing pass's utility algorithms, by convention shared across the
# bundled models.  The checker treats them structurally (frontier
# passthrough / intermediate reference) but still reproduces their costs
# from the model's own definitions.
_MATERIALIZE = "materialize"
_SCAN_INTERMEDIATE = "scan_intermediate"


class VerifyReport(LintReport):
    """A :class:`~repro.lint.diagnostics.LintReport` over P-codes.

    Every P-code is an error, so :attr:`ok` is simply "no diagnostics".
    """

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _subtree_at(
    tree: LogicalExpression, path: Sequence[int]
) -> Optional[LogicalExpression]:
    node = tree
    for index in path:
        if not isinstance(index, int) or index < 0 or index >= len(node.inputs):
            return None
        node = node.inputs[index]
    return node


def _replace_at(
    tree: LogicalExpression, path: Sequence[int], after: LogicalExpression
) -> LogicalExpression:
    if not path:
        return after
    children = list(tree.inputs)
    children[path[0]] = _replace_at(tree.inputs[path[0]], path[1:], after)
    return tree.with_inputs(tuple(children))


class _Checker:
    def __init__(
        self,
        spec: ModelSpecification,
        report: VerifyReport,
        catalog: Optional[Catalog],
        estimator,
    ):
        from repro.model.context import OptimizerContext

        self.spec = spec
        self.report = report
        self.have_catalog = catalog is not None
        self.context = OptimizerContext(
            spec, catalog if catalog is not None else Catalog(), estimator
        )
        self.transformations = {rule.name: rule for rule in spec.transformations}
        self.implementations = {rule.name: rule for rule in spec.implementations}
        self.certificate: Optional[PlanCertificate] = None
        self.claims: tuple = ()
        self.index = 0

    # -- P0xx: shape ---------------------------------------------------------

    def check_shape(
        self,
        query: LogicalExpression,
        plan: PhysicalPlan,
        certificate: Optional[PlanCertificate],
    ) -> bool:
        if not isinstance(certificate, PlanCertificate):
            self.report.add(
                "P001",
                "certificate",
                "no certificate attached"
                if certificate is None
                else f"expected a PlanCertificate, got {type(certificate).__name__}",
            )
            return False
        if certificate.kind not in CERTIFICATE_KINDS:
            self.report.add(
                "P001", "certificate", f"unknown certificate kind {certificate.kind!r}"
            )
            return False
        if not all(isinstance(claim, NodeClaim) for claim in certificate.claims):
            self.report.add("P001", "certificate", "claims are not NodeClaim objects")
            return False
        if certificate.source != query:
            self.report.add(
                "P003",
                "certificate",
                "the certificate's source expression is not the query being verified",
            )
        node_count = sum(1 for _ in plan.walk())
        if node_count != len(certificate.claims):
            self.report.add(
                "P002",
                "certificate",
                f"the plan has {node_count} node(s) but the certificate "
                f"carries {len(certificate.claims)} claim(s)",
            )
            return False
        self.certificate = certificate
        self.claims = certificate.claims
        return True

    # -- P1xx / P401 / P404: the derivation chain ----------------------------

    def check_chain(self, certificate: PlanCertificate) -> None:
        endpoint = self._replay_chain(certificate)
        if endpoint is None:
            return  # a step was unlawful; P1xx already recorded
        if endpoint == certificate.frontier:
            return  # equivalence proven by replay
        if certificate.kind == KIND_DEGRADED and not certificate.steps:
            # A budget-tripped plan may legitimately carry no chain; the
            # normalizer must then prove the frontier equivalent.
            if not equivalent(certificate.source, certificate.frontier):
                self.report.add(
                    "P404",
                    "certificate",
                    "degraded certificate has no derivation chain and the "
                    "frontier does not share the source's normal form",
                )
            return
        self.report.add(
            "P401",
            "certificate",
            f"replaying {len(certificate.steps)} step(s) from the source "
            "does not produce the recorded frontier",
        )

    def _replay_chain(
        self, certificate: PlanCertificate
    ) -> Optional[LogicalExpression]:
        current = certificate.source
        for number, step in enumerate(certificate.steps):
            subject = f"step {number} ({step.rule})"
            rule = self.transformations.get(step.rule)
            if rule is None:
                self.report.add(
                    "P101", subject, "not a transformation rule of this model"
                )
                return None
            target = _subtree_at(current, step.path)
            if target is None:
                self.report.add(
                    "P102",
                    subject,
                    f"path {tuple(step.path)} does not address a subtree",
                )
                return None
            binding = match_tree(rule.pattern, target)
            if binding is None:
                self.report.add(
                    "P102",
                    subject,
                    f"the rule's pattern does not match the subtree at "
                    f"{tuple(step.path)}",
                )
                return None
            try:
                if not rule.applies(binding, self.context):
                    self.report.add(
                        "P103", subject, "the rule's condition rejects the binding"
                    )
                    return None
                result = rule.rewrite(binding, self.context)
            except Exception as error:
                self.report.add(
                    "P103", subject, f"condition/rewrite raised {error!r}"
                )
                return None
            outputs = (
                [] if result is None else result if isinstance(result, list) else [result]
            )
            if not any(step.after == output for output in outputs):
                self.report.add(
                    "P104",
                    subject,
                    "the step's after-expression is not among the rule's "
                    "rewrite outputs for this binding",
                )
                return None
            current = _replace_at(current, step.path, step.after)
        return current

    # -- the lockstep plan/frontier walk -------------------------------------

    def check_plan(self, plan: PhysicalPlan, certificate: PlanCertificate) -> None:
        self.index = 0
        self._walk(plan, certificate.frontier)
        if plan.cost != certificate.claimed_cost:
            self.report.add(
                "P302",
                "plan root",
                f"plan cost {plan.cost} does not equal the certificate's "
                f"claimed cost {certificate.claimed_cost}",
            )
        try:
            covers = self.spec.props_cover(plan.properties, certificate.required)
        except Exception:
            covers = False
        if not covers:
            self.report.add(
                "P204",
                "plan root",
                f"delivered properties [{plan.properties}] do not cover the "
                f"required goal [{certificate.required}]",
            )

    def _walk(
        self, node: PhysicalPlan, frontier: Optional[LogicalExpression]
    ) -> None:
        claim = self.claims[self.index]
        subject = f"node {self.index} ({node.algorithm})"
        self.index += 1
        if claim.algorithm != node.algorithm:
            self.report.add(
                "P002",
                subject,
                f"the pre-order claim names {claim.algorithm!r}, not the "
                f"plan node's {node.algorithm!r}",
            )
            child_frontiers: List[Optional[LogicalExpression]] = [None] * len(
                node.inputs
            )
        elif node.is_enforcer or claim.enforcer:
            self._check_enforcer(node, claim, subject)
            child_frontiers = [frontier] * len(node.inputs)
        elif node.algorithm == _MATERIALIZE and claim.rule is None:
            self._check_utility_cost(node, claim, subject)
            if len(node.inputs) != 1:
                self.report.add(
                    "P402", subject, "materialize must have exactly one input"
                )
            child_frontiers = [frontier] * len(node.inputs)
        elif node.algorithm == _SCAN_INTERMEDIATE and claim.rule is None:
            self._check_scan(node, claim, frontier, subject)
            child_frontiers = []
        else:
            child_frontiers = self._check_algorithm(node, claim, frontier, subject)

        # P301: the cumulative cost re-adds exactly, in plan order.
        if node.cost is None or claim.local is None:
            self.report.add("P301", subject, "the node or its claim has no cost")
        else:
            total = claim.local
            broken = False
            for child in node.inputs:
                if child.cost is None:
                    broken = True
                    break
                total = total + child.cost
            if broken or node.cost != total:
                self.report.add(
                    "P301",
                    subject,
                    f"recorded cost {node.cost} != claimed local {claim.local} "
                    "plus the inputs' recorded costs",
                )

        self._check_logical_claim(node, claim, frontier, subject)
        for child, sub in zip(node.inputs, child_frontiers):
            self._walk(child, sub)

    # -- per-node checks ------------------------------------------------------

    def _check_algorithm(
        self,
        node: PhysicalPlan,
        claim: NodeClaim,
        frontier: Optional[LogicalExpression],
        subject: str,
    ) -> List[Optional[LogicalExpression]]:
        blanks: List[Optional[LogicalExpression]] = [None] * len(node.inputs)
        algorithm = self.spec.algorithms.get(node.algorithm)
        if algorithm is None:
            self.report.add(
                "P201", subject, "not an algorithm of this model specification"
            )
            return blanks
        cnode = AlgorithmNode(node.args, claim.output, claim.inputs)
        self._check_local_cost(algorithm, cnode, claim, subject)
        try:
            delivered = algorithm.derive_props(
                self.context, cnode, tuple(child.properties for child in node.inputs)
            )
        except Exception as error:
            delivered = None
            self.report.add("P202", subject, f"derive_props raised {error!r}")
        if delivered is not None and delivered != node.properties:
            self.report.add(
                "P202",
                subject,
                f"derive_props yields [{delivered}] but the node records "
                f"[{node.properties}]",
            )
        if frontier is None:
            return blanks
        if claim.rule is None:
            self.report.add(
                "P402", subject, "no implementation rule claimed for the node"
            )
            return blanks
        rule = self.implementations.get(claim.rule)
        if rule is None:
            self.report.add(
                "P402", subject, f"claimed rule {claim.rule!r} is not an "
                "implementation rule of this model",
            )
            return blanks
        if rule.algorithm != node.algorithm:
            self.report.add(
                "P402",
                subject,
                f"rule {rule.name!r} produces {rule.algorithm!r}, not "
                f"{node.algorithm!r}",
            )
            return blanks
        binding = match_tree(rule.pattern, frontier)
        if binding is None:
            self.report.add(
                "P402",
                subject,
                f"rule {rule.name!r} does not match the frontier subtree "
                f"{frontier.to_sexpr()}",
            )
            return blanks
        try:
            applies = rule.applies(binding, self.context)
        except Exception as error:
            applies = False
            self.report.add("P402", subject, f"rule condition raised {error!r}")
        if not applies:
            self.report.add(
                "P402", subject, f"rule {rule.name!r} condition rejects the "
                "frontier subtree",
            )
        try:
            expected_args = (
                tuple(rule.build_args(binding, self.context))
                if rule.build_args is not None
                else frontier.args
            )
        except Exception as error:
            expected_args = None
            self.report.add("P402", subject, f"build_args raised {error!r}")
        if expected_args is not None and expected_args != node.args:
            self.report.add(
                "P402",
                subject,
                f"rule {rule.name!r} yields arguments {expected_args!r}, "
                f"the node carries {node.args!r}",
            )
        leaf_subtrees = [binding.get(name) for name in rule.input_names]
        if len(leaf_subtrees) != len(node.inputs):
            self.report.add(
                "P402",
                subject,
                f"rule {rule.name!r} supplies {len(leaf_subtrees)} input(s) "
                f"but the node has {len(node.inputs)}",
            )
            return blanks
        return leaf_subtrees

    def _check_enforcer(
        self, node: PhysicalPlan, claim: NodeClaim, subject: str
    ) -> None:
        enforcer = self.spec.enforcers.get(node.algorithm)
        if enforcer is None:
            self.report.add(
                "P201", subject, "not an enforcer of this model specification"
            )
            return
        if len(node.inputs) != 1:
            self.report.add(
                "P402", subject, "an enforcer node must have exactly one input"
            )
        if claim.required is None:
            self.report.add(
                "P203", subject, "the claim records no goal for the enforcer"
            )
            return
        try:
            applications = self.spec.enforcer_applications(
                node.algorithm, self.context, claim.required, claim.output
            )
        except Exception as error:
            self.report.add(
                "P203", subject, f"enforcer_applications raised {error!r}"
            )
            return
        application = next(
            (app for app in applications if tuple(app.args) == node.args), None
        )
        if application is None:
            self.report.add(
                "P203",
                subject,
                f"the enforcer offers no application with arguments "
                f"{node.args!r} for goal [{claim.required}]",
            )
        else:
            if application.delivered != node.properties:
                self.report.add(
                    "P203",
                    subject,
                    f"the application delivers [{application.delivered}] but "
                    f"the node records [{node.properties}]",
                )
            if node.inputs and not self.spec.props_cover(
                node.inputs[0].properties, application.relaxed
            ):
                self.report.add(
                    "P203",
                    subject,
                    f"the input's properties [{node.inputs[0].properties}] do "
                    f"not satisfy the relaxed goal [{application.relaxed}]",
                )
        cnode = AlgorithmNode(node.args, claim.output, claim.inputs)
        self._check_local_cost(enforcer, cnode, claim, subject)

    def _check_utility_cost(
        self, node: PhysicalPlan, claim: NodeClaim, subject: str
    ) -> None:
        algorithm = self.spec.algorithms.get(node.algorithm)
        if algorithm is None:
            self.report.add(
                "P201", subject, "not an algorithm of this model specification"
            )
            return
        cnode = AlgorithmNode(node.args, claim.output, claim.inputs)
        self._check_local_cost(algorithm, cnode, claim, subject)

    def _check_scan(
        self,
        node: PhysicalPlan,
        claim: NodeClaim,
        frontier: Optional[LogicalExpression],
        subject: str,
    ) -> None:
        assert self.certificate is not None
        name = node.args[0] if node.args else None
        expected = (
            self.certificate.intermediates.get(name) if name is not None else None
        )
        if expected is None:
            self.report.add(
                "P403",
                subject,
                f"references intermediate {name!r}, which the certificate "
                "does not define",
            )
        elif frontier is not None and expected != frontier:
            self.report.add(
                "P402",
                subject,
                f"intermediate {name!r} materializes {expected.to_sexpr()} "
                f"but the plan scans it where {frontier.to_sexpr()} is needed",
            )
        self._check_utility_cost(node, claim, subject)

    def _check_local_cost(
        self, definition, cnode: AlgorithmNode, claim: NodeClaim, subject: str
    ) -> None:
        if not self.have_catalog:
            return  # scan cost functions consult catalog statistics
        try:
            local = definition.cost(self.context, cnode)
        except Exception as error:
            self.report.add("P303", subject, f"cost function raised {error!r}")
            return
        if local != claim.local:
            self.report.add(
                "P303",
                subject,
                f"the cost ADT reproduces {local}, the claim says {claim.local}",
            )

    def _check_logical_claim(
        self,
        node: PhysicalPlan,
        claim: NodeClaim,
        frontier: Optional[LogicalExpression],
        subject: str,
    ) -> None:
        if not self.have_catalog:
            return
        if claim.rule is None and node.algorithm in (
            _MATERIALIZE,
            _SCAN_INTERMEDIATE,
        ):
            # Sharing's utility nodes are costed over feedback-mirror
            # property estimates, which legitimately differ from a pure
            # catalog derivation; their costs are still reproduced
            # exactly (P303) over the claimed properties.
            return
        target = frontier
        if target is None:
            return
        try:
            derived = self.context.logical_props(target)
        except Exception:
            return  # the catalog cannot derive this subtree independently
        if not derived.consistent_with(claim.output):
            self.report.add(
                "P205",
                subject,
                f"claimed logical properties [{claim.output}] disagree with "
                f"the independent derivation [{derived}]",
            )


def verify_plan(
    spec: ModelSpecification,
    query: LogicalExpression,
    plan: PhysicalPlan,
    certificate: Optional[PlanCertificate],
    *,
    catalog: Optional[Catalog] = None,
    estimator=None,
) -> VerifyReport:
    """Independently re-check a plan's provenance certificate.

    Returns a :class:`VerifyReport`; ``report.ok`` is True iff every
    check passed.  ``catalog`` enables the independent logical-property
    derivation (P205), exact local-cost reproduction (P303), and any
    rule conditions that consult statistics; without one those checks
    are skipped (everything else still runs).
    """
    report = VerifyReport(spec_name=f"{spec.name or '<unnamed>'} plan")
    checker = _Checker(spec, report, catalog, estimator)
    if not checker.check_shape(query, plan, certificate):
        return report
    assert certificate is not None
    checker.check_chain(certificate)
    checker.check_plan(plan, certificate)
    return report
