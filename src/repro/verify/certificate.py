"""The plan-provenance certificate: a machine-checkable derivation record.

A :class:`PlanCertificate` is the optimizer's *evidence* that a physical
plan follows from the model specification: which transformation rules
carried the input expression to the logical form the plan implements
(the *frontier*), which implementation rule or enforcer application
produced every plan node, and which cost terms were claimed along the
way.  :func:`repro.verify.verify_plan` re-checks all of it against the
specification alone — no memo, no engine state — in the spirit of
translation validation: the search may be arbitrarily clever, but the
emitted artifact must carry a proof a much simpler checker accepts.

Certificates are plain frozen dataclasses over the algebra's picklable
value types, so they survive process pools and plan caches unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.properties import LogicalProperties, PhysProps
from repro.model.cost import Cost

__all__ = [
    "KIND_SEARCH",
    "KIND_DEGRADED",
    "KIND_PRODUCER",
    "CERTIFICATE_KINDS",
    "DerivationStep",
    "NodeClaim",
    "PlanCertificate",
]

#: An ordinary winner: full derivation chain plus per-node claims.
KIND_SEARCH = "search"
#: A budget-tripped greedy fallback: claims are complete, but the
#: transformation chain may be absent — equivalence then rests on the
#: checker's normalizer instead of step replay.  Degraded plans must
#: never verify *vacuously*: every property and cost check still runs.
KIND_DEGRADED = "degraded"
#: A materialized shared subplan from the multi-query sharing pass; its
#: source *is* its frontier (the common subexpression it computes).
KIND_PRODUCER = "producer"

CERTIFICATE_KINDS = (KIND_SEARCH, KIND_DEGRADED, KIND_PRODUCER)


@dataclass(frozen=True)
class DerivationStep:
    """One transformation-rule application in the logical derivation.

    Steps rewrite a single working tree, starting from the certificate's
    ``source``: ``path`` addresses a subtree by child indexes from the
    root, ``rule`` names the transformation rule applied there, and
    ``after`` is the replacement subtree.  The checker re-matches the
    rule's pattern at ``path``, re-runs its condition, and demands that
    ``after`` be among the rule's own rewrite outputs — a step is either
    a lawful application or a P1xx violation.
    """

    rule: str
    path: Tuple[int, ...]
    after: LogicalExpression


@dataclass(frozen=True)
class NodeClaim:
    """What the optimizer claimed about one physical plan node.

    Claims are aligned with :meth:`~repro.algebra.plans.PhysicalPlan.walk`
    pre-order (shared subtrees of a rewritten batch plan repeat, once
    per occurrence).  ``rule`` names the implementation rule for
    algorithm nodes (None for enforcers and utility nodes the search
    did not place); ``required`` is the goal vector an enforcer was
    asked to deliver.  ``output``/``inputs`` are the *logical*
    properties the cost function was evaluated over — recording them
    makes cost reproduction exact instead of tolerance-based, while a
    separate consistency check (P205) ties them back to an independent
    derivation over the frontier.
    """

    algorithm: str
    local: Cost
    output: LogicalProperties
    inputs: Tuple[LogicalProperties, ...]
    rule: Optional[str] = None
    enforcer: bool = False
    required: Optional[PhysProps] = None


@dataclass(frozen=True)
class PlanCertificate:
    """The full provenance record attached to one optimized plan.

    ``source``
        The input logical expression the optimization started from.
    ``required``
        The goal's required physical-property vector.
    ``frontier``
        The logical expression the plan structurally implements — the
        endpoint of ``steps`` replayed from ``source``.
    ``steps``
        The transformation-rule chain proving source ⟶ frontier.
    ``claims``
        One :class:`NodeClaim` per plan node, ``walk()`` pre-order.
    ``claimed_cost``
        The total cost the optimizer reported for the plan.
    ``intermediates``
        For plans rewritten by the sharing pass: the logical frontier of
        each materialized intermediate, by name — what every
        ``scan_intermediate`` node must resolve against.
    ``engine``
        The producing engine's class name (informational).
    """

    kind: str
    source: LogicalExpression
    required: PhysProps
    frontier: LogicalExpression
    steps: Tuple[DerivationStep, ...]
    claims: Tuple[NodeClaim, ...]
    claimed_cost: Cost
    intermediates: Mapping[str, LogicalExpression] = field(default_factory=dict)
    engine: str = ""

    def describe(self) -> str:
        """A one-line human summary (kind, chain length, claim count)."""
        return (
            f"<{self.kind} certificate: {len(self.steps)} step(s), "
            f"{len(self.claims)} claim(s), cost {self.claimed_cost}>"
        )
