"""A canonical normal form for logical expressions, for equivalence checks.

The verifier's primary equivalence proof is step replay: the
certificate's transformation chain, re-validated rule application by
rule application.  Degraded (budget-tripped) plans may carry no chain —
the greedy fallback assembles a plan out of whatever the interrupted
search had memoized — so the checker falls back to a *normalizer*: two
expressions with equal normal forms are equivalent under the join
commutativity/associativity family the bundled models share.

The normal form flattens maximal join trees into an unordered multiset
of normalized children plus the multiset of all predicate conjuncts
(exactly the invariant ``join_commute``/``join_associate`` preserve:
they reorder children and re-route conjuncts, never create or drop
either).  Every other operator normalizes generically — operator, args,
ordered normalized children — so the form is total: unknown operators
simply never compare equal unless structurally identical, which is the
conservative direction for a checker.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Tuple

from repro.algebra.expressions import LogicalExpression

__all__ = ["normal_form", "equivalent"]

_JOIN_OPERATORS = frozenset({"join"})


def _multiset(items) -> Tuple[Tuple[Hashable, int], ...]:
    counted = Counter(items)
    return tuple(sorted(counted.items(), key=lambda pair: repr(pair[0])))


def _flatten_join(expression: LogicalExpression, children, conjuncts) -> None:
    """Collect the maximal join tree's leaves and predicate conjuncts."""
    if expression.operator in _JOIN_OPERATORS:
        for predicate in expression.args:
            if hasattr(predicate, "conjuncts"):
                conjuncts.extend(predicate.conjuncts())
            else:
                conjuncts.append(predicate)
        for node in expression.inputs:
            _flatten_join(node, children, conjuncts)
    else:
        children.append(normal_form(expression))


def normal_form(expression: LogicalExpression) -> Hashable:
    """The canonical, hashable normal form of a logical expression."""
    if expression.operator in _JOIN_OPERATORS:
        children: list = []
        conjuncts: list = []
        _flatten_join(expression, children, conjuncts)
        return (
            "join*",
            _multiset(children),
            _multiset(conjuncts),
        )
    return (
        expression.operator,
        expression.args,
        tuple(normal_form(node) for node in expression.inputs),
    )


def equivalent(left: LogicalExpression, right: LogicalExpression) -> bool:
    """Whether the two expressions share a normal form.

    Sound for the bundled transformation families (a ``True`` answer
    means provably equivalent); incomplete in general — rewrites the
    normalizer does not model make it answer ``False``, and the caller
    must then rely on step replay.
    """
    return normal_form(left) == normal_form(right)
