"""``python -m repro.verify`` — the plan-certificate verifier CLI."""

import sys

from repro.verify.cli import main

if __name__ == "__main__":
    sys.exit(main())
