"""Mutation harness: seeded plan corruptions the verifier must reject.

The checker's acceptance tests show clean certificates pass; this
module shows *dirty* ones fail.  Each corruption perturbs a genuinely
optimized (plan, certificate) pair — swapped join inputs, a dropped
enforcer, an understated cost term, a dangling intermediate — and the
harness asserts :func:`repro.verify.verify_plan` rejects every one.
A corruption the verifier misses is a hole in the trust story, so the
CLI (``python -m repro.verify.mutate``) exits non-zero on any miss.

The corruptions are deterministic (no randomness): each one targets a
specific invariant and the P-code family expected to catch it, which
keeps a miss diagnosable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import LogicalExpression
from repro.algebra.plans import PhysicalPlan
from repro.algebra.predicates import eq
from repro.algebra.properties import PhysProps
from repro.verify.certificate import DerivationStep, PlanCertificate

__all__ = ["Corruption", "MutationOutcome", "build_fixture", "run_mutations", "main"]


@dataclass(frozen=True)
class _Fixture:
    """Genuine optimizer artifacts the corruptions perturb.

    ``plan``/``certificate`` come from a single-query search whose goal
    forces an enforcer; ``shared_*`` from the multi-query sharing pass
    (a rewritten consumer reading a materialized intermediate).
    """

    spec: object
    catalog: object
    query: LogicalExpression
    plan: PhysicalPlan
    certificate: PlanCertificate
    shared_catalog: object
    shared_query: LogicalExpression
    shared_plan: PhysicalPlan
    shared_certificate: PlanCertificate


@dataclass(frozen=True)
class Corruption:
    """One seeded defect: how to break the artifacts, and what catches it."""

    name: str
    description: str
    expected_family: str  # "P1xx" / "P2xx" / "P3xx" / "P4xx" / "P0xx"
    #: returns (query, plan, certificate) or (query, plan, certificate,
    #: catalog) when the corruption verifies against a non-default catalog
    apply: Callable[[_Fixture], Tuple]


@dataclass(frozen=True)
class MutationOutcome:
    corruption: Corruption
    detected: bool
    codes: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Fixture construction
# ---------------------------------------------------------------------------


def build_fixture() -> _Fixture:
    """Optimize real queries and keep their certificates for corruption."""
    from repro.catalog import Catalog
    from repro.executor import TableSpec, populate_catalog
    from repro.model.context import OptimizerContext
    from repro.models.relational import get, join, relational_model, select
    from repro.search import (
        SearchOptions,
        SharingOptions,
        VolcanoOptimizer,
        plan_sharing,
    )
    from repro.search.certify import SharingCertifier
    from repro.workloads import QueryGenerator, WorkloadOptions

    spec = relational_model()
    catalog = Catalog()
    populate_catalog(
        catalog,
        [
            TableSpec("r", 1200, key_distinct=10),
            TableSpec("s", 2400, key_distinct=10),
            TableSpec("t", 4800, key_distinct=10),
        ],
        seed=7,
    )
    query = join(
        join(
            select(get("r"), eq("r.v", 1)),
            get("s"),
            eq("r.k", "s.k"),
        ),
        get("t"),
        eq("s.k", "t.k"),
    )
    required = PhysProps(sort_order=("r.k",))
    engine = VolcanoOptimizer(
        spec, catalog, SearchOptions(check_consistency=False, certificates=True)
    )
    result = engine.optimize(query, required)
    assert result.certificate is not None

    workload = QueryGenerator(
        WorkloadOptions(selectivity_range=(0.1, 0.1))
    ).generate_shared(count=8, seed=7, n_tables=5, relations=(2, 4))
    queries = [item.query for item in workload.queries]
    shared_engine = VolcanoOptimizer(
        spec,
        workload.catalog,
        SearchOptions(check_consistency=False, certificates=True),
    )
    results = shared_engine.optimize_batch(
        queries, workload.queries[0].required
    )
    certifier = SharingCertifier(
        spec, OptimizerContext(spec, workload.catalog, None)
    )
    for item in results:
        assert certifier.add_result(item.plan, item.certificate)
    report = plan_sharing(
        results,
        spec,
        workload.catalog,
        SharingOptions(),
        local_costs=certifier.local_costs,
    )
    consumers, _ = certifier.certify(
        report,
        [item.plan for item in results],
        [item.certificate for item in results],
    )
    shared_index = next(
        index
        for index, certificate in enumerate(consumers)
        if certificate is not None and certificate.intermediates
    )
    return _Fixture(
        spec=spec,
        catalog=catalog,
        query=query,
        plan=result.plan,
        certificate=result.certificate,
        shared_catalog=workload.catalog,
        shared_query=queries[shared_index],
        shared_plan=report.plans[shared_index],
        shared_certificate=consumers[shared_index],
    )


# ---------------------------------------------------------------------------
# Tree surgery helpers
# ---------------------------------------------------------------------------


def _edit_first(
    plan: PhysicalPlan,
    want: Callable[[PhysicalPlan], bool],
    edit: Callable[[PhysicalPlan], PhysicalPlan],
) -> PhysicalPlan:
    """Apply ``edit`` to the first (pre-order) node satisfying ``want``."""
    done = [False]

    def visit(node: PhysicalPlan) -> PhysicalPlan:
        if not done[0] and want(node):
            done[0] = True
            return edit(node)
        return dataclasses.replace(
            node, inputs=tuple(visit(child) for child in node.inputs)
        )

    edited = visit(plan)
    if not done[0]:
        raise AssertionError("fixture lacks the node this corruption targets")
    return edited


def _replace_claim(
    certificate: PlanCertificate, index: int, **changes
) -> PlanCertificate:
    claims = list(certificate.claims)
    claims[index] = dataclasses.replace(claims[index], **changes)
    return dataclasses.replace(certificate, claims=tuple(claims))


def _first_claim(certificate: PlanCertificate, want) -> int:
    for index, claim in enumerate(certificate.claims):
        if want(claim):
            return index
    raise AssertionError("fixture certificate lacks the targeted claim")


# ---------------------------------------------------------------------------
# The corruptions
# ---------------------------------------------------------------------------


def _swap_join_inputs(fixture: _Fixture):
    plan = _edit_first(
        fixture.plan,
        lambda node: len(node.inputs) == 2,
        lambda node: dataclasses.replace(
            node, inputs=(node.inputs[1], node.inputs[0])
        ),
    )
    return fixture.query, plan, fixture.certificate


def _drop_enforcer(fixture: _Fixture):
    plan = _edit_first(
        fixture.plan,
        lambda node: node.is_enforcer,
        lambda node: node.inputs[0],
    )
    return fixture.query, plan, fixture.certificate


def _scale_cumulative_cost(fixture: _Fixture):
    doubled = fixture.plan.cost + fixture.plan.cost
    plan = dataclasses.replace(fixture.plan, cost=doubled)
    return fixture.query, plan, fixture.certificate


def _understate_local_cost(fixture: _Fixture):
    index = _first_claim(
        fixture.certificate, lambda claim: claim.local.total() > 0
    )
    claim = fixture.certificate.claims[index]
    certificate = _replace_claim(
        fixture.certificate, index, local=type(claim.local)(0.0)
    )
    return fixture.query, fixture.plan, certificate


def _dangling_intermediate(fixture: _Fixture):
    certificate = dataclasses.replace(
        fixture.shared_certificate, intermediates={}
    )
    return (
        fixture.shared_query,
        fixture.shared_plan,
        certificate,
        fixture.shared_catalog,
    )


def _unknown_rule_step(fixture: _Fixture):
    steps = fixture.certificate.steps
    if steps:
        broken = (dataclasses.replace(steps[0], rule="no_such_rule"),) + steps[1:]
    else:
        broken = (
            DerivationStep(
                rule="no_such_rule", path=(), after=fixture.certificate.frontier
            ),
        )
    certificate = dataclasses.replace(fixture.certificate, steps=broken)
    return fixture.query, fixture.plan, certificate


def _corrupt_step_after(fixture: _Fixture):
    bogus = LogicalExpression("get", ("t", None))
    steps = fixture.certificate.steps
    if steps:
        broken = (dataclasses.replace(steps[0], after=bogus),) + steps[1:]
        certificate = dataclasses.replace(fixture.certificate, steps=broken)
    else:
        # No recorded steps: corrupting the chain means corrupting its
        # endpoint, the frontier, without any step justifying it.
        certificate = dataclasses.replace(fixture.certificate, frontier=bogus)
    return fixture.query, fixture.plan, certificate


def _corrupt_frontier(fixture: _Fixture):
    frontier = fixture.certificate.frontier
    swapped = LogicalExpression(
        frontier.operator, frontier.args, tuple(reversed(frontier.inputs))
    )
    certificate = dataclasses.replace(fixture.certificate, frontier=swapped)
    return fixture.query, fixture.plan, certificate


def _inflate_cardinality(fixture: _Fixture):
    index = _first_claim(
        fixture.certificate,
        lambda claim: claim.rule is not None and claim.output.cardinality > 0,
    )
    claim = fixture.certificate.claims[index]
    inflated = dataclasses.replace(
        claim.output, cardinality=claim.output.cardinality * 100.0
    )
    certificate = _replace_claim(fixture.certificate, index, output=inflated)
    return fixture.query, fixture.plan, certificate


def _drop_enforcer_claim(fixture: _Fixture):
    index = _first_claim(fixture.certificate, lambda claim: claim.enforcer)
    claims = list(fixture.certificate.claims)
    del claims[index]
    certificate = dataclasses.replace(
        fixture.certificate, claims=tuple(claims)
    )
    return fixture.query, fixture.plan, certificate


def _swap_algorithm_name(fixture: _Fixture):
    index = _first_claim(
        fixture.certificate, lambda claim: claim.rule is not None
    )
    certificate = _replace_claim(
        fixture.certificate, index, algorithm="nested_loops_join"
    )
    # Keep the plan honest: the claim now disagrees with the plan node.
    return fixture.query, fixture.plan, certificate


def _corrupt_source(fixture: _Fixture):
    from repro.models.relational import get, join

    bogus = join(get("r"), get("s"), eq("r.k", "s.k"))
    certificate = dataclasses.replace(fixture.certificate, source=bogus)
    return fixture.query, fixture.plan, certificate


def _truncate_claims(fixture: _Fixture):
    certificate = dataclasses.replace(
        fixture.certificate, claims=fixture.certificate.claims[:-1]
    )
    return fixture.query, fixture.plan, certificate


def _inflate_claimed_cost(fixture: _Fixture):
    cost = fixture.certificate.claimed_cost
    certificate = dataclasses.replace(
        fixture.certificate, claimed_cost=cost + cost
    )
    return fixture.query, fixture.plan, certificate


CORRUPTIONS: Tuple[Corruption, ...] = (
    Corruption(
        "swap_join_inputs",
        "exchange a join's build and probe inputs behind its back",
        "P2xx",
        _swap_join_inputs,
    ),
    Corruption(
        "drop_enforcer",
        "splice an enforcer out of the plan, losing its sort guarantee",
        "P0xx",
        _drop_enforcer,
    ),
    Corruption(
        "scale_cumulative_cost",
        "double the root plan's claimed cumulative cost",
        "P3xx",
        _scale_cumulative_cost,
    ),
    Corruption(
        "understate_local_cost",
        "zero out one node's local cost term in the certificate",
        "P3xx",
        _understate_local_cost,
    ),
    Corruption(
        "dangling_intermediate",
        "drop the intermediates table a scan_intermediate claim points into",
        "P4xx",
        _dangling_intermediate,
    ),
    Corruption(
        "unknown_rule_step",
        "attribute a derivation step to a rule the model never declared",
        "P1xx",
        _unknown_rule_step,
    ),
    Corruption(
        "corrupt_step_after",
        "rewrite a derivation step's output tree to an unrelated expression",
        "P1xx",
        _corrupt_step_after,
    ),
    Corruption(
        "corrupt_frontier",
        "swap the certified frontier's inputs without a justifying step",
        "P4xx",
        _corrupt_frontier,
    ),
    Corruption(
        "inflate_cardinality",
        "overstate a claimed output cardinality by two orders of magnitude",
        "P2xx",
        _inflate_cardinality,
    ),
    Corruption(
        "drop_enforcer_claim",
        "delete the enforcer's claim, misaligning claims and plan nodes",
        "P0xx",
        _drop_enforcer_claim,
    ),
    Corruption(
        "swap_algorithm_name",
        "claim a different algorithm than the plan node actually uses",
        "P0xx",
        _swap_algorithm_name,
    ),
    Corruption(
        "corrupt_source",
        "certify against a different source query than the one asked",
        "P0xx",
        _corrupt_source,
    ),
    Corruption(
        "truncate_claims",
        "drop the trailing claim so the walk runs out of certificate",
        "P0xx",
        _truncate_claims,
    ),
    Corruption(
        "inflate_claimed_cost",
        "double the certificate's top-level claimed cost only",
        "P3xx",
        _inflate_claimed_cost,
    ),
)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def run_mutations(
    fixture: Optional[_Fixture] = None,
    corruptions: Sequence[Corruption] = CORRUPTIONS,
) -> List[MutationOutcome]:
    """Apply every corruption and record whether the verifier caught it."""
    from repro.verify import verify_plan

    fixture = fixture if fixture is not None else build_fixture()
    outcomes: List[MutationOutcome] = []
    for corruption in corruptions:
        corrupted = corruption.apply(fixture)
        query, plan, certificate = corrupted[:3]
        catalog = corrupted[3] if len(corrupted) > 3 else fixture.catalog
        report = verify_plan(
            fixture.spec, query, plan, certificate, catalog=catalog
        )
        codes = tuple(
            dict.fromkeys(d.code for d in report.diagnostics)
        )
        outcomes.append(
            MutationOutcome(
                corruption=corruption, detected=not report.ok, codes=codes
            )
        )
    return outcomes


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the harness; exit 1 when any corruption goes undetected."""
    outcomes = run_mutations()
    missed = [outcome for outcome in outcomes if not outcome.detected]
    for outcome in outcomes:
        status = "detected" if outcome.detected else "MISSED"
        codes = ", ".join(outcome.codes) or "-"
        print(
            f"{status:>8}  {outcome.corruption.name:<24} "
            f"[{codes}]  {outcome.corruption.description}"
        )
    print(
        f"{len(outcomes) - len(missed)}/{len(outcomes)} corruption(s) "
        "detected"
    )
    return 1 if missed else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
