"""Plan provenance certificates and the independent verifier.

``repro.verify`` closes the trust gap between the optimizer and its
consumers: engines emit a :class:`PlanCertificate` alongside every
winning plan, and :func:`verify_plan` re-checks the certificate against
the model specification alone — no memo, no engine state.  P-codes
(registered in :mod:`repro.lint.diagnostics` next to the V/M families)
name each way a certificate can fail.

Run ``python -m repro.verify --help`` for the CLI, and see
``docs/plan-verification.md`` for the certificate format and the
full P-code table.
"""

from repro.verify.certificate import (
    CERTIFICATE_KINDS,
    KIND_DEGRADED,
    KIND_PRODUCER,
    KIND_SEARCH,
    DerivationStep,
    NodeClaim,
    PlanCertificate,
)
from repro.verify.checker import VerifyReport, verify_plan
from repro.verify.normalize import equivalent, normal_form

__all__ = [
    "CERTIFICATE_KINDS",
    "KIND_DEGRADED",
    "KIND_PRODUCER",
    "KIND_SEARCH",
    "DerivationStep",
    "NodeClaim",
    "PlanCertificate",
    "VerifyReport",
    "verify_plan",
    "equivalent",
    "normal_form",
]
