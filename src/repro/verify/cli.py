"""Command-line entry point: ``python -m repro.verify``.

Re-optimizes a deterministic workload and independently verifies every
winning plan against its provenance certificate — the release gate for
the optimizer's trust story:

* **golden mode** (``--golden tests/service/golden_plans.json``):
  regenerates the committed 42-query workload, runs every (query,
  engine) pair with certificate recording on, checks each plan is
  byte-identical to its golden snapshot, and verifies each
  certificate.  Any P-diagnostic, plan mismatch, or cost drift fails
  the run.
* **workload mode** (default): a smaller sweep over both memo engines
  plus the multi-query sharing batch — every pre-sharing plan, every
  rewritten consumer, and every materialized producer is verified.

Exit status: 0 when everything verified, 1 on any violation, 2 on
usage or load problems.  ``--strict`` additionally fails plans that
produced no certificate at all (otherwise a warning).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = ["main"]

#: The committed golden workload recipe (tests/service/test_mqo.py).
GOLDEN_RECIPE = dict(count=42, seed=7, n_tables=6, relations=(2, 4))
#: The mqo_sharing bench recipe: eight overlapping five-table queries.
SHARING_RECIPE = dict(count=8, seed=7, n_tables=5, relations=(2, 4))

_COST_TOLERANCE = 1e-9


def _engines():
    from repro.search import TaskBasedOptimizer, VolcanoOptimizer

    return {
        "VolcanoOptimizer": VolcanoOptimizer,
        "TaskBasedOptimizer": TaskBasedOptimizer,
    }


def _workload(recipe: dict):
    from repro.workloads import QueryGenerator, WorkloadOptions

    generator = QueryGenerator(WorkloadOptions(selectivity_range=(0.1, 0.1)))
    return generator.generate_shared(**recipe)


def _make_engine(engine_cls, spec, catalog, kernel=None):
    from repro.search import SearchOptions

    return engine_cls(
        spec,
        catalog,
        SearchOptions(
            check_consistency=False, certificates=True, kernel=kernel
        ),
    )


class _Tally:
    """Failure accounting shared by both modes."""

    def __init__(self, strict: bool):
        self.strict = strict
        self.checked = 0
        self.violations: List[str] = []
        self.warnings: List[str] = []

    def verify(self, spec, query, plan, certificate, catalog, label: str):
        from repro.verify import verify_plan

        self.checked += 1
        if certificate is None:
            self.warnings.append(f"{label}: no certificate produced")
            return
        report = verify_plan(spec, query, plan, certificate, catalog=catalog)
        if not report.ok:
            for diagnostic in report.diagnostics:
                self.violations.append(f"{label}: {diagnostic}")

    def mismatch(self, label: str, detail: str) -> None:
        self.violations.append(f"{label}: {detail}")

    @property
    def failed(self) -> bool:
        return bool(self.violations) or (self.strict and bool(self.warnings))

    def render(self) -> str:
        lines = [
            f"verified {self.checked} plan(s): "
            f"{len(self.violations)} violation(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(f"  VIOLATION {line}" for line in self.violations)
        lines.extend(f"  warning {line}" for line in self.warnings)
        return "\n".join(lines)


def _costs_match(total: float, expected: float) -> bool:
    return abs(total - expected) <= _COST_TOLERANCE * max(
        1.0, abs(total), abs(expected)
    )


def _run_golden(golden_path: Path, tally: _Tally, kernel=None) -> None:
    """42 queries x both engines against the committed snapshots."""
    from repro.models.relational import relational_model

    golden = json.loads(golden_path.read_text())
    spec = relational_model()
    workload = _workload(GOLDEN_RECIPE)
    queries = [item.query for item in workload.queries]
    required = workload.queries[0].required
    for engine_name, engine_cls in _engines().items():
        snapshots = golden.get(engine_name)
        if snapshots is None:
            tally.mismatch(engine_name, "engine missing from the golden file")
            continue
        if len(snapshots) != len(queries):
            tally.mismatch(
                engine_name,
                f"golden file has {len(snapshots)} snapshot(s) for "
                f"{len(queries)} queries",
            )
            continue
        engine = _make_engine(engine_cls, spec, workload.catalog, kernel)
        for index, (query, expected) in enumerate(zip(queries, snapshots)):
            label = f"{engine_name}[{index}]"
            result = engine.optimize(query, required)
            if result.plan.to_sexpr() != expected["plan"]:
                tally.mismatch(label, "plan differs from the golden snapshot")
            if not _costs_match(result.cost.total(), expected["cost"]):
                tally.mismatch(
                    label,
                    f"cost {result.cost.total()!r} differs from golden "
                    f"{expected['cost']!r}",
                )
            tally.verify(
                spec, query, result.plan, result.certificate,
                workload.catalog, label,
            )


def _run_workload(tally: _Tally, kernel=None) -> None:
    """Both engines over the sharing workload, single-query plans only."""
    from repro.models.relational import relational_model

    spec = relational_model()
    workload = _workload(SHARING_RECIPE)
    required = workload.queries[0].required
    for engine_name, engine_cls in _engines().items():
        engine = _make_engine(engine_cls, spec, workload.catalog, kernel)
        for index, item in enumerate(workload.queries):
            result = engine.optimize(item.query, required)
            tally.verify(
                spec, item.query, result.plan, result.certificate,
                workload.catalog, f"{engine_name}[{index}]",
            )


def _run_sharing_batch(tally: _Tally, kernel=None) -> None:
    """The mqo_sharing batch: pre-sharing, consumer, and producer plans."""
    from repro.model.context import OptimizerContext
    from repro.models.relational import relational_model
    from repro.search import SharingOptions, VolcanoOptimizer, plan_sharing
    from repro.search.certify import SharingCertifier

    spec = relational_model()
    workload = _workload(SHARING_RECIPE)
    queries = [item.query for item in workload.queries]
    required = workload.queries[0].required
    engine = _make_engine(VolcanoOptimizer, spec, workload.catalog, kernel)
    results = engine.optimize_batch(queries, required)
    for index, (query, result) in enumerate(zip(queries, results)):
        tally.verify(
            spec, query, result.plan, result.certificate,
            workload.catalog, f"mqo_sharing:pre[{index}]",
        )
    context = OptimizerContext(spec, workload.catalog, None)
    certifier = SharingCertifier(spec, context)
    indexed = all(
        certifier.add_result(result.plan, result.certificate)
        for result in results
    )
    if not indexed:
        tally.mismatch("mqo_sharing", "could not index pre-sharing claims")
        return
    report = plan_sharing(
        results,
        spec,
        workload.catalog,
        SharingOptions(),
        local_costs=certifier.local_costs,
    )
    consumers, producers = certifier.certify(
        report,
        [result.plan for result in results],
        [result.certificate for result in results],
    )
    for index, (query, plan, certificate) in enumerate(
        zip(queries, report.plans, consumers)
    ):
        tally.verify(
            spec, query, plan, certificate,
            workload.catalog, f"mqo_sharing:consumer[{index}]",
        )
    for shared, certificate in zip(report.shared_plans, producers):
        if certificate is None:
            tally.mismatch(
                f"mqo_sharing:producer[{shared.name}]",
                "no producer certificate",
            )
            continue
        tally.verify(
            spec, certificate.source, shared.plan, certificate,
            workload.catalog, f"mqo_sharing:producer[{shared.name}]",
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Independently verify optimizer plans against their "
        "provenance certificates.",
    )
    parser.add_argument(
        "--golden",
        metavar="PATH",
        help="verify every (query, engine) pair against this golden-plan "
        "snapshot file in addition to certificate checks",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail when any plan produced no certificate (otherwise a "
        "warning)",
    )
    parser.add_argument(
        "--kernel",
        choices=("interpreted", "specialized", "compiled"),
        default=None,
        help="run every engine with this specialized-kernel tier "
        "(repro.generator.kernel); plans and certificates must be "
        "byte-identical to interpreted runs",
    )
    parser.add_argument(
        "--skip-batch",
        action="store_true",
        help="skip the multi-query sharing batch verification",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the verifier CLI; returns the process exit status (0/1/2)."""
    parser = _build_parser()
    options = parser.parse_args(argv)
    tally = _Tally(strict=options.strict)

    if options.golden is not None:
        golden_path = Path(options.golden)
        if not golden_path.is_file():
            print(f"error: golden file not found: {golden_path}")
            return 2
        _run_golden(golden_path, tally, options.kernel)
    else:
        _run_workload(tally, options.kernel)
    if not options.skip_batch:
        _run_sharing_batch(tally, options.kernel)

    print(tally.render())
    return 1 if tally.failed else 0
