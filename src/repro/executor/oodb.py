"""Executor support for the OODB model: navigation and assembly.

Follows object references at run time so ``materialize`` plans execute.
Reference convention (matching :mod:`repro.models.oodb`): the input row
holds a reference value in the column whose unqualified name is the
``materialize`` attribute, and it identifies the row of ``ref_table``
whose ``<ref_table>.id`` equals it.

* :class:`PointerChase` resolves references one at a time, charging one
  page read per navigation — random I/O, like the real thing.
* :class:`AssembledNavigate` requires the referenced extent to be
  resident; :class:`Assembly` (the enforcer) makes it so by scanning the
  extent once into an in-memory index that travels with the rows.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ExecutionError
from repro.executor.iterators import Row, _UnaryIterator
from repro.executor.runtime import ExecutionContext

__all__ = ["PointerChase", "Assembly", "AssembledNavigate", "register_oodb"]

_RESIDENT_KEY = "__resident__"
"""Hidden row key carrying assembled extent indexes downstream."""


def _reference_column(row: Row, attribute: str) -> str:
    for name in row:
        if name == attribute or name.endswith(f".{attribute}"):
            return name
    raise ExecutionError(f"no reference column {attribute!r} in row")


def _extent_index(context: ExecutionContext, ref_table: str) -> Dict:
    entry = context.catalog.table(ref_table)
    if not entry.has_rows:
        raise ExecutionError(f"extent {ref_table!r} has no stored objects")
    id_column = f"{ref_table}.id"
    index = {}
    for row in entry.rows:
        if id_column not in row:
            raise ExecutionError(f"extent {ref_table!r} rows lack {id_column!r}")
        index[row[id_column]] = row
    return index


class PointerChase(_UnaryIterator):
    """Follow each row's reference with one random page read."""

    def __init__(self, context, source, attribute: str, ref_table: str):
        super().__init__(context, source)
        self.attribute = attribute
        self.ref_table = ref_table
        self._index: Optional[Dict] = None

    def _do_open(self) -> None:
        super()._do_open()
        # The index stands in for the storage manager's record lookup;
        # I/O is still charged per navigation below.
        self._index = _extent_index(self.context, self.ref_table)

    def _do_next(self) -> Optional[Row]:
        while True:
            row = self.source.next()
            if row is None:
                return None
            reference = row[_reference_column(row, self.attribute)]
            target = self._index.get(reference)
            if target is None:
                continue  # dangling reference: skip the object
            # One random page read per navigated object.
            self.context.stats.pages_read += 1
            self.context.stats.rows_emitted += 1
            combined = {**row, **target}
            combined.pop(_RESIDENT_KEY, None)
            return combined

    @property
    def output_columns(self) -> Tuple[str, ...]:
        ref_schema = self.context.catalog.table(self.ref_table).schema
        return self.source.output_columns + ref_schema.column_names


class Assembly(_UnaryIterator):
    """The assembly enforcer: batch-read an extent into memory.

    Charges one sequential scan of the extent (its page count) once,
    then annotates every passing row with the resident index so a
    downstream :class:`AssembledNavigate` can follow references for
    free.
    """

    def __init__(self, context, source, ref_table: str):
        super().__init__(context, source)
        self.ref_table = ref_table
        self._index: Optional[Dict] = None

    def _do_open(self) -> None:
        super()._do_open()
        self._index = _extent_index(self.context, self.ref_table)
        entry = self.context.catalog.table(self.ref_table)
        self.context.stats.pages_read += entry.statistics.pages(
            self.context.page_size
        )

    def _do_next(self) -> Optional[Row]:
        row = self.source.next()
        if row is None:
            return None
        resident = dict(row.get(_RESIDENT_KEY) or {})
        resident[self.ref_table] = self._index
        annotated = dict(row)
        annotated[_RESIDENT_KEY] = resident
        return annotated


class AssembledNavigate(_UnaryIterator):
    """Follow references through the resident index — no I/O."""

    def __init__(self, context, source, attribute: str, ref_table: str):
        super().__init__(context, source)
        self.attribute = attribute
        self.ref_table = ref_table

    def _do_next(self) -> Optional[Row]:
        while True:
            row = self.source.next()
            if row is None:
                return None
            resident = row.get(_RESIDENT_KEY) or {}
            index = resident.get(self.ref_table)
            if index is None:
                raise ExecutionError(
                    f"extent {self.ref_table!r} is not assembled; the plan "
                    f"is missing an assembly enforcer"
                )
            reference = row[_reference_column(row, self.attribute)]
            target = index.get(reference)
            if target is None:
                continue
            self.context.stats.rows_emitted += 1
            combined = {**row, **target}
            combined[_RESIDENT_KEY] = resident
            return combined

    @property
    def output_columns(self) -> Tuple[str, ...]:
        ref_schema = self.context.catalog.table(self.ref_table).schema
        return self.source.output_columns + ref_schema.column_names


def _strip_resident(rows):
    for row in rows:
        row.pop(_RESIDENT_KEY, None)
    return rows


def execute_oodb_plan(plan, catalog, stats=None):
    """Compile (with the OODB builders) and drain an OODB plan."""
    from repro.executor.compile import PlanCompiler
    from repro.executor.runtime import ExecutionContext

    context = ExecutionContext(catalog, stats)
    compiler = PlanCompiler(catalog)
    register_oodb(compiler)
    iterator = compiler.compile(plan, context)
    return _strip_resident(iterator.drain())


def register_oodb(compiler) -> None:
    """Register the OODB builders on a :class:`PlanCompiler`."""

    def build_pointer_chase(compiler, context, plan, inputs):
        attribute, ref_table = plan.args
        return PointerChase(context, inputs[0], attribute, ref_table)

    def build_navigate(compiler, context, plan, inputs):
        attribute, ref_table = plan.args
        return AssembledNavigate(context, inputs[0], attribute, ref_table)

    def build_assembly(compiler, context, plan, inputs):
        (ref_table,) = plan.args
        return Assembly(context, inputs[0], ref_table)

    compiler.register("pointer_chase", build_pointer_chase)
    compiler.register("assembled_navigate", build_navigate)
    compiler.register("assembly", build_assembly)
