"""Volcano iterator execution engine + synthetic data (S13, S14)."""

from repro.executor.compile import PlanCompiler, execute_plan
from repro.executor.data import TableSpec, generate_table, populate_catalog
from repro.executor.iterators import (
    Exchange,
    FileScan,
    Filter,
    FilterScan,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IntermediateScan,
    Materialize,
    MergeExcept,
    MergeIntersect,
    MergeJoin,
    NestedLoopsJoin,
    Project,
    Sort,
    SortedAggregate,
    UnionAll,
    VolcanoIterator,
)
from repro.executor.runtime import ExecutionContext, ExecutionStats

__all__ = [
    "PlanCompiler",
    "execute_plan",
    "TableSpec",
    "generate_table",
    "populate_catalog",
    "Exchange",
    "FileScan",
    "Filter",
    "FilterScan",
    "HashAggregate",
    "HashDistinct",
    "HashJoin",
    "IntermediateScan",
    "Materialize",
    "MergeExcept",
    "MergeIntersect",
    "MergeJoin",
    "NestedLoopsJoin",
    "Project",
    "Sort",
    "SortedAggregate",
    "UnionAll",
    "VolcanoIterator",
    "ExecutionContext",
    "ExecutionStats",
]
