"""Synthetic data generation: the paper's test relations.

"The test relations contained 1,200 to 7,200 records of 100 bytes."
(paper, Section 4.2)

Tables have an integer join-key column ``k``, an integer attribute
``v``, and a string padding column sized so each record is exactly
``row_width`` bytes.  Statistics are computed from the *actual* data, so
the optimizer's estimates are honest inputs, and the executor can verify
them (DESIGN.md invariant 8).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import Column, ColumnType, Schema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import WorkloadError

__all__ = ["TableSpec", "generate_table", "populate_catalog"]

PAPER_MIN_ROWS = 1200
PAPER_MAX_ROWS = 7200
PAPER_ROW_WIDTH = 100


class TableSpec:
    """Shape of one synthetic table."""

    def __init__(
        self,
        name: str,
        rows: int,
        key_distinct: Optional[int] = None,
        value_distinct: int = 20,
        row_width: int = PAPER_ROW_WIDTH,
    ):
        if rows < 0:
            raise WorkloadError(f"table {name!r}: negative row count")
        if row_width < 8:
            raise WorkloadError(f"table {name!r}: row width below 8 bytes")
        self.name = name
        self.rows = rows
        self.key_distinct = key_distinct if key_distinct is not None else max(1, rows // 10)
        self.value_distinct = value_distinct
        self.row_width = row_width


def generate_table(
    spec: TableSpec, seed: int
) -> Tuple[Schema, TableStatistics, List[Dict[str, object]]]:
    """Deterministically generate one table's schema, statistics, and rows."""
    rng = random.Random(f"{seed}:{spec.name}")
    key_column = f"{spec.name}.k"
    value_column = f"{spec.name}.v"
    pad_column = f"{spec.name}.pad"
    pad_width = max(1, spec.row_width - 8)  # two 4-byte integers + padding
    schema = Schema(
        (
            Column(key_column, ColumnType.INTEGER),
            Column(value_column, ColumnType.INTEGER),
            Column(pad_column, ColumnType.STRING, width=pad_width),
        )
    )
    rows: List[Dict[str, object]] = []
    pad = "x" * pad_width
    for _ in range(spec.rows):
        rows.append(
            {
                key_column: rng.randrange(spec.key_distinct),
                value_column: rng.randrange(spec.value_distinct),
                pad_column: pad,
            }
        )
    statistics = TableStatistics(
        row_count=spec.rows,
        row_width=spec.row_width,
        columns={
            key_column: _column_stats(rows, key_column),
            value_column: _column_stats(rows, value_column),
        },
    )
    return schema, statistics, rows


def _column_stats(rows: List[Dict[str, object]], column: str) -> ColumnStatistics:
    values = [row[column] for row in rows]
    if not values:
        return ColumnStatistics(0)
    return ColumnStatistics(
        distinct_values=len(set(values)),
        min_value=min(values),
        max_value=max(values),
    )


def populate_catalog(
    catalog: Catalog, specs: Sequence[TableSpec], seed: int = 0
) -> List[TableEntry]:
    """Generate and register every table in ``specs``."""
    entries = []
    for spec in specs:
        schema, statistics, rows = generate_table(spec, seed)
        entries.append(catalog.add_table(spec.name, schema, statistics, rows))
    return entries
